"""Batched k-hop subgraph sampling: extraction, caching and NMCDR equivalence.

The headline guarantee is gated here: with full neighbourhood coverage
(``num_hops`` at least the model's exactness depth, or at least the graph
diameter, and no fanout cap) sampled training reproduces the full-graph
losses *and parameter gradients* at float64 tolerance.  The remaining tests
cover the extraction edge cases: empty batch domains, isolated nodes,
overlap-user remapping in the cross-domain stages and cache-key behaviour
when different batches induce the same subgraph.
"""

import numpy as np
import pytest

from repro.baselines import build_model
from repro.core import (
    CDRTrainer,
    NMCDR,
    NMCDRConfig,
    TrainerConfig,
    build_task,
)
from repro.data import load_scenario
from repro.data.dataloader import Batch, InteractionDataLoader
from repro.graph import (
    InteractionGraph,
    SubgraphCache,
    induced_subgraph,
    sample_khop_nodes,
)


def small_task(scale=0.3, seed=13):
    return build_task(
        load_scenario("cloth_sport", scale=scale, seed=seed),
        head_threshold=7,
    )


def first_batches(task, batch_size=64):
    loader_a = InteractionDataLoader(
        task.domain("a").split, batch_size=batch_size, rng=np.random.default_rng(5)
    )
    loader_b = InteractionDataLoader(
        task.domain("b").split, batch_size=batch_size, rng=np.random.default_rng(6)
    )
    return next(iter(loader_a)), next(iter(loader_b))


def max_grad_difference(model_a, model_b):
    worst = 0.0
    for param_a, param_b in zip(model_a.parameters(), model_b.parameters()):
        grad_a = np.zeros_like(
            param_a.data,
        ) if param_a.grad is None else np.asarray(param_a.grad)
        grad_b = np.zeros_like(
            param_b.data,
        ) if param_b.grad is None else np.asarray(param_b.grad)
        worst = max(worst, float(np.max(np.abs(grad_a - grad_b))))
    return worst


def toy_graph():
    # users 0-4, items 0-3; user 4 is isolated, item 3 only touches user 3.
    return InteractionGraph(
        5,
        4,
        [0, 0, 1, 2, 3],
        [0, 1, 1, 2, 3],
    )


class TestKhopExtraction:
    def test_one_hop_covers_neighbour_items_only(self):
        users, items = sample_khop_nodes(toy_graph(), [0], [], num_hops=1)
        assert users.tolist() == [0]  # user 1 is two hops away (via item 1)
        assert items.tolist() == [0, 1]

    def test_two_hops_reach_co_interacting_users(self):
        users, items = sample_khop_nodes(toy_graph(), [0], [], num_hops=2)
        assert users.tolist() == [0, 1]
        assert items.tolist() == [0, 1]

    def test_hops_expand_until_component_is_covered(self):
        graph = toy_graph()
        users, items = sample_khop_nodes(graph, [0], [], num_hops=4)
        # User 0's connected component is {u0, u1} x {i0, i1}.
        assert users.tolist() == [0, 1]
        assert items.tolist() == [0, 1]
        users, items = sample_khop_nodes(graph, [2], [], num_hops=4)
        assert users.tolist() == [2]
        assert items.tolist() == [2]

    def test_isolated_seed_user_is_kept(self):
        users, items = sample_khop_nodes(toy_graph(), [4], [], num_hops=2)
        assert users.tolist() == [4]
        assert items.tolist() == []
        subgraph = induced_subgraph(toy_graph(), users, items)
        # A dummy all-zero item column is padded so the local graph exists.
        assert subgraph.graph.num_users == 1
        assert subgraph.graph.num_edges == 0

    def test_fanout_caps_per_node_expansion(self):
        rng = np.random.default_rng(0)
        users = rng.integers(0, 40, size=300)
        items = rng.integers(0, 30, size=300)
        graph = InteractionGraph(40, 30, users, items)
        full_users, full_items = sample_khop_nodes(graph, [0, 1], [], num_hops=1)
        capped_users, capped_items = sample_khop_nodes(
            graph,
            [0, 1],
            [],
            num_hops=1,
            fanout=2,
        )
        assert capped_items.size <= 2 * 2  # at most fanout items per seed user
        assert capped_items.size <= full_items.size
        assert np.isin(capped_items, full_items).all()
        # deterministic in the seed signature
        again_users, again_items = sample_khop_nodes(
            graph,
            [0, 1],
            [],
            num_hops=1,
            fanout=2,
        )
        assert np.array_equal(capped_items, again_items)
        assert np.array_equal(capped_users, again_users)

    def dense_graph(self, seed=0, num_users=50, num_items=40, num_edges=600):
        rng = np.random.default_rng(seed)
        users = rng.integers(0, num_users, size=num_edges)
        items = rng.integers(0, num_items, size=num_edges)
        return InteractionGraph(num_users, num_items, users, items)

    def test_fanout_reservoir_is_frontier_independent(self):
        """A node's capped neighbour draw must not depend on which other
        nodes share the frontier — the per-node reservoir contract."""
        graph = self.dense_graph()
        _, alone = sample_khop_nodes(graph, [3], [], num_hops=1, fanout=3)
        _, crowded = sample_khop_nodes(
            graph, [3, 7, 11, 19], [], num_hops=1, fanout=3
        )
        assert np.isin(alone, crowded).all()

    def test_fanout_expansion_distributes_over_seed_unions(self):
        """khop(S ∪ B) == khop(S) ∪ khop(B) under a fanout cap — the
        identity the incremental plan schedule's delta expansion relies on
        (pre-reservoir, whole-frontier rng draws violated it)."""
        graph = self.dense_graph(seed=1)
        static_seeds = np.array([0, 2, 4, 6, 8])
        batch_seeds = np.array([1, 4, 9, 13])
        batch_items = np.array([5, 17])
        for num_hops in (1, 2):
            joint = sample_khop_nodes(
                graph,
                np.union1d(static_seeds, batch_seeds),
                batch_items,
                num_hops=num_hops,
                fanout=3,
            )
            static = sample_khop_nodes(
                graph, static_seeds, [], num_hops=num_hops, fanout=3
            )
            delta = sample_khop_nodes(
                graph, batch_seeds, batch_items, num_hops=num_hops, fanout=3
            )
            np.testing.assert_array_equal(joint[0], np.union1d(static[0], delta[0]))
            np.testing.assert_array_equal(joint[1], np.union1d(static[1], delta[1]))

    def test_fanout_reservoir_subsets_nest_across_caps(self):
        graph = self.dense_graph(seed=2)
        _, small = sample_khop_nodes(graph, [5], [], num_hops=1, fanout=2)
        _, large = sample_khop_nodes(graph, [5], [], num_hops=1, fanout=4)
        assert np.isin(small, large).all()

    def test_induced_subgraph_keeps_all_edges_between_included_nodes(self):
        graph = toy_graph()
        subgraph = induced_subgraph(graph, np.array([0, 1]), np.array([0, 1]))
        assert subgraph.graph.num_edges == 3  # (0,0), (0,1), (1,1)
        assert subgraph.local_users([1]).tolist() == [1]
        assert subgraph.local_items([1]).tolist() == [1]
        with pytest.raises(KeyError):
            subgraph.local_users([3])

    def test_out_of_range_seeds_rejected(self):
        with pytest.raises(ValueError):
            sample_khop_nodes(toy_graph(), [99], [], num_hops=1)
        with pytest.raises(ValueError):
            sample_khop_nodes(toy_graph(), [0], [], num_hops=0)


class TestSubgraphCache:
    def test_same_node_set_hits_regardless_of_order_and_multiplicity(self):
        cache = SubgraphCache()
        graph = toy_graph()
        first = cache.get(graph, [1, 0, 0], [0], num_hops=1)
        second = cache.get(graph, [0, 1], [0, 0, 0], num_hops=1)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_key_covers_hops_and_fanout(self):
        cache = SubgraphCache()
        graph = toy_graph()
        a = cache.get(graph, [0], [], num_hops=1)
        b = cache.get(graph, [0], [], num_hops=2)
        c = cache.get(graph, [0], [], num_hops=1, fanout=1)
        assert a is not b and a is not c
        assert cache.misses == 3

    def test_different_batches_inducing_same_subgraph_share_operators(self):
        cache = SubgraphCache()
        graph = toy_graph()
        first = cache.get(graph, [0, 1], [0], num_hops=1)
        operator = first.graph.user_aggregation_matrix()
        second = cache.get(graph, [1, 0], [0], num_hops=1)
        # PR 1's operator memoisation rides along with the cached subgraph.
        assert second.graph.user_aggregation_matrix() is operator

    def test_lru_eviction(self):
        cache = SubgraphCache(max_entries=2)
        graph = toy_graph()
        cache.get(graph, [0], [], num_hops=1)
        cache.get(graph, [1], [], num_hops=1)
        cache.get(graph, [2], [], num_hops=1)
        assert len(cache) == 2


@pytest.mark.slow
class TestNMCDREquivalence:
    @pytest.mark.parametrize(
        "config_kwargs",
        [
            {},
            {"num_matching_layers": 2},
            {"num_encoder_layers": 2},
            {"max_matching_neighbors": None},
            {"gnn_kernel": "gcn"},
            {"gnn_kernel": "gat"},
            # Degree/attention-normalised kernels without the complementing
            # stage's extra hop: exactness must come from the kernel-aware
            # depth resolution (+1 for far-endpoint normalisation).
            {"gnn_kernel": "gcn", "use_complementing": False},
            {"gnn_kernel": "gat", "use_complementing": False},
            {"gnn_kernel": "gcn", "num_encoder_layers": 2, "use_complementing": False},
            {"use_complementing": False},
            {"use_inter_matching": False},
        ],
    )
    def test_sampled_loss_and_grads_match_full_graph(self, config_kwargs):
        config = NMCDRConfig(embedding_dim=16, seed=3, **config_kwargs)
        task = small_task()
        model_full = NMCDR(task, config)
        model_sampled = NMCDR(task, config)
        model_sampled.configure_subgraph_sampling(True)  # exactness depth, no fanout
        batch_a, batch_b = first_batches(task)

        loss_full = model_full.compute_batch_loss({"a": batch_a, "b": batch_b})
        loss_sampled = model_sampled.compute_batch_loss({"a": batch_a, "b": batch_b})
        assert abs(loss_full.item() - loss_sampled.item()) < 1e-10

        loss_full.backward()
        loss_sampled.backward()
        assert max_grad_difference(model_full, model_sampled) < 1e-10

    def test_num_hops_at_graph_diameter_matches_too(self):
        config = NMCDRConfig(embedding_dim=16, seed=3)
        task = small_task()
        diameter_bound = max(
            task.domain(key).train_graph.num_users + task.domain(key).train_graph.num_items
            for key in ("a", "b")
        )
        model_full = NMCDR(task, config)
        model_sampled = NMCDR(task, config)
        model_sampled.configure_subgraph_sampling(True, num_hops=diameter_bound)
        batch_a, batch_b = first_batches(task)
        loss_full = model_full.compute_batch_loss({"a": batch_a, "b": batch_b})
        loss_sampled = model_sampled.compute_batch_loss({"a": batch_a, "b": batch_b})
        assert abs(loss_full.item() - loss_sampled.item()) < 1e-10
        loss_full.backward()
        loss_sampled.backward()
        assert max_grad_difference(model_full, model_sampled) < 1e-10

    def test_empty_batch_domain(self):
        config = NMCDRConfig(embedding_dim=16, seed=3)
        task = small_task()
        model_full = NMCDR(task, config)
        model_sampled = NMCDR(task, config)
        model_sampled.configure_subgraph_sampling(True)
        batch_a, _ = first_batches(task)
        loss_full = model_full.compute_batch_loss({"a": batch_a, "b": None})
        loss_sampled = model_sampled.compute_batch_loss({"a": batch_a, "b": None})
        assert abs(loss_full.item() - loss_sampled.item()) < 1e-10

    def test_empty_batch_domain_without_inter_matching_skips_other_domain(self):
        config = NMCDRConfig(embedding_dim=16, seed=3, use_inter_matching=False)
        task = small_task()
        model = NMCDR(task, config)
        model.configure_subgraph_sampling(True)
        batch_a, _ = first_batches(task)
        loss = model.compute_batch_loss({"a": batch_a, "b": None})
        assert np.isfinite(loss.item())
        # Domain b contributed nothing, so its subgraph cache stayed cold
        # when no intra pools pulled it in either.
        reference = NMCDR(task, config)
        full_loss = reference.compute_batch_loss({"a": batch_a, "b": None})
        assert abs(loss.item() - full_loss.item()) < 1e-10

    def test_overlap_partner_rows_match_full_forward(self):
        """Cross-domain remapping: u_g3 of overlapped batch users is exact."""
        config = NMCDRConfig(embedding_dim=16, seed=3, max_matching_neighbors=None)
        task = small_task()
        model_full = NMCDR(task, config)
        model_sampled = NMCDR(task, config)
        model_sampled.configure_subgraph_sampling(True)

        overlap_a = task.overlap_indices("a")[:8]
        items_a = np.array(
            [task.domain("a").train_graph.user_neighbors(int(u))[0] for u in overlap_a]
        )
        batch = Batch(
            users=overlap_a.astype(np.int64),
            items=items_a.astype(np.int64),
            labels=np.ones(overlap_a.size),
        )
        reps_full = model_full.forward_representations()

        from repro.core import build_subgraph_plan

        plan = build_subgraph_plan(
            task,
            config,
            {"a": batch, "b": None},
            model_sampled._sampler,
            model_sampled._subgraph_settings,
            model_sampled._subgraph_caches,
        )
        reps_sampled = model_sampled.forward_representations(plan)
        local = plan.domain("a").batch_users
        for stage in ("user_g2", "user_g3", "user_g4"):
            full_rows = reps_full["a"][stage].data[batch.users]
            sampled_rows = reps_sampled["a"][stage].data[local]
            assert np.allclose(full_rows, sampled_rows, atol=1e-12), stage

    def test_trainer_switch_trains_identically(self):
        task = small_task()

        def fit(sampled):
            model = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3))
            trainer = CDRTrainer(
                model,
                task,
                TrainerConfig(
                    num_epochs=2, batch_size=128, seed=11, sampled_subgraph_training=sampled
                ),
            )
            history = trainer.fit()
            return history.epoch_losses

        assert np.allclose(fit(False), fit(True), atol=1e-10)

    def test_fanout_mode_is_finite_and_bounded(self):
        """With a fanout cap the loss is approximate but well-defined."""
        task = small_task(scale=1.0)
        model = NMCDR(
            task,
            NMCDRConfig(embedding_dim=16, seed=3, max_matching_neighbors=8),
        )
        model.configure_subgraph_sampling(True, num_hops=1, fanout=4)
        batch_a, batch_b = first_batches(task, batch_size=32)
        loss = model.compute_batch_loss({"a": batch_a, "b": batch_b})
        assert np.isfinite(loss.item())
        loss.backward()
        subgraph = list(model._subgraph_caches["a"]._entries.values())[-1]
        assert subgraph.num_users < task.domain("a").train_graph.num_users

    def test_evaluation_stays_full_graph(self):
        task = small_task()
        model = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3))
        reference = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3))
        model.configure_subgraph_sampling(True, num_hops=1, fanout=2)
        users = np.arange(10)
        items = np.arange(10)
        assert np.allclose(
            model.score("a", users, items), reference.score("a", users, items), atol=0
        )


@pytest.mark.slow
class TestGraphBaselineEquivalence:
    @pytest.mark.parametrize("name", ["GA-DTCDR", "HeroGraph"])
    def test_sampled_training_matches_full_graph(self, name):
        task = small_task()
        batch_a, batch_b = first_batches(task)
        model_full = build_model(name, task, embedding_dim=16, seed=3)
        model_sampled = build_model(name, task, embedding_dim=16, seed=3)
        model_sampled.configure_subgraph_sampling(True)
        loss_full = model_full.compute_batch_loss({"a": batch_a, "b": batch_b})
        loss_sampled = model_sampled.compute_batch_loss({"a": batch_a, "b": batch_b})
        assert abs(loss_full.item() - loss_sampled.item()) < 1e-10
        loss_full.backward()
        loss_sampled.backward()
        assert max_grad_difference(model_full, model_sampled) < 1e-10
