"""The shared-memory exchange plane: wire format, lifecycle, equivalence.

Unit level, the :mod:`repro.core.exchange` pieces are exercised directly —
pack/unpack round trips over nested container trees, in-place reply
staging, overflow fallback plus grow-request handshake, double buffering,
generation-counted regrow with lazy worker re-attach, and table layouts.

Executor level, the headline gates of the plane ride here:

* **Transport equivalence** — pool-sharded (and plain sharded) training
  over the plane is *bit-identical* to the pickled-pipe protocol, eager
  and traced, under the float64 default dtype.
* **Zero pickled data-plane bytes** — in steady state every data-plane
  payload crosses shared memory; the pipes carry control headers only
  (structural assert on the executor's comms counters, independent of
  machine speed).
* **Leak-free teardown** — closing the executor (or dropping it) leaves
  no ``repro-xp-*`` segment behind in ``/dev/shm``.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.core import CDRTrainer, NMCDR, NMCDRConfig, TrainerConfig, build_task
from repro.core.exchange import (
    PIPE_HEADER,
    SHM_HEADER,
    ExchangeClient,
    ExchangePlane,
    tree_array_bytes,
)
from repro.data import load_scenario
from repro.data.dataloader import Batch


@pytest.fixture(scope="module")
def task():
    return build_task(
        load_scenario("cloth_sport", scale=0.3, seed=13),
        head_threshold=7,
    )


def build_nmcdr(task, seed=3):
    return NMCDR(task, NMCDRConfig(embedding_dim=16, seed=seed))


def shm_segments(prefix="repro-xp-"):
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover — non-Linux fallback
        return []
    return [name for name in os.listdir(shm_dir) if name.startswith(prefix)]


@pytest.fixture()
def plane():
    plane = ExchangePlane(n_shards=2)
    plane.open(dispatch_bytes=1 << 12, reply_bytes=1 << 12)
    client = ExchangeClient()
    yield plane, client
    client.close()
    plane.close()


def begin(plane, client, step, *, reply_bound=None, force_regrow=False):
    plane.begin_step(step, reply_bound=reply_bound, force_regrow=force_regrow)
    client.begin_step(
        {
            "slot": step % 2,
            "reply": plane.descriptor("w2p0"),
            "tables": None,
        }
    )


def assert_tree_equal(actual, expected):
    if isinstance(expected, np.ndarray):
        assert isinstance(actual, np.ndarray)
        assert actual.dtype == expected.dtype
        np.testing.assert_array_equal(actual, expected)
    elif isinstance(expected, dict):
        assert list(actual) == list(expected)
        for key in expected:
            assert_tree_equal(actual[key], expected[key])
    elif isinstance(expected, (tuple, list)):
        assert type(actual) is type(expected) and len(actual) == len(expected)
        for a, e in zip(actual, expected):
            assert_tree_equal(a, e)
    elif dataclasses.is_dataclass(expected):
        assert type(actual) is type(expected)
        for f in dataclasses.fields(expected):
            assert_tree_equal(getattr(actual, f.name), getattr(expected, f.name))
    else:
        assert actual == expected


# ----------------------------------------------------------------------
# wire format: pack/unpack round trips
# ----------------------------------------------------------------------
class TestPackUnpack:
    def payload(self):
        rng = np.random.default_rng(0)
        return {
            "batch": Batch(
                users=np.arange(7, dtype=np.int64),
                items=rng.integers(0, 50, size=7),
                labels=rng.random(7),
            ),
            "nested": (
                [np.float32(rng.random((3, 4))), None, "tag"],
                {"empty": np.empty((0, 8)), "scalar": 3},
            ),
        }

    def test_dispatch_roundtrip_views_and_copies(self, plane):
        plane, client = plane
        payload = self.payload()
        begin(plane, client, 0)
        header = plane.pack("p2w0", payload, "dispatch")
        assert header[0] == SHM_HEADER
        for copy in (False, True):
            out = client.unpack(header, copy=copy)
            assert_tree_equal(out, payload)
            assert out["batch"].users.flags["OWNDATA"] is copy

    def test_tree_array_bytes_counts_only_arrays(self):
        payload = self.payload()
        expected = (
            payload["batch"].users.nbytes
            + payload["batch"].items.nbytes
            + payload["batch"].labels.nbytes
            + payload["nested"][0][0].nbytes
        )
        assert tree_array_bytes(payload) == expected

    def test_reply_roundtrip_with_inplace_staging(self, plane):
        plane, client = plane
        begin(plane, client, 0)
        staged = client.alloc_reply((16, 8), np.float64)
        staged[...] = np.arange(128, dtype=np.float64).reshape(16, 8)
        loose = np.full(5, 2.5)
        header = client.pack_reply({"staged": staged, "loose": loose})
        assert header[0] == SHM_HEADER
        out = plane.unpack(header, "loss")
        np.testing.assert_array_equal(out["staged"], staged)
        np.testing.assert_array_equal(out["loose"], loose)
        # The staged array was referenced in place: the parent view aliases
        # the very bytes the worker wrote (no second copy).
        staged[0, 0] = -1.0
        assert out["staged"][0, 0] == -1.0

    def test_double_buffer_keeps_previous_step_readable(self, plane):
        plane, client = plane
        even = {"x": np.arange(10)}
        begin(plane, client, 0)
        header_even = plane.pack("p2w0", even, "dispatch")
        begin(plane, client, 1)
        plane.pack("p2w0", {"x": np.arange(10) * -1}, "dispatch")
        np.testing.assert_array_equal(
            client.unpack(header_even, copy=False)["x"], even["x"]
        )


# ----------------------------------------------------------------------
# growth: overflow fallback, grow requests, generations, re-attach
# ----------------------------------------------------------------------
class TestGrowth:
    def test_reply_overflow_falls_back_to_pipe_and_requests_grow(self, plane):
        plane, client = plane
        begin(plane, client, 0)
        big = np.ones(1 << 12, dtype=np.float64)  # 8x the reply slot
        header = client.pack_reply({"big": big})
        assert header[0] == PIPE_HEADER
        request = client.take_grow_request()
        assert request and request["w2p0"] >= big.nbytes
        # The fallback still delivers the payload, and is metered as such.
        out = plane.unpack(header, "loss")
        np.testing.assert_array_equal(out["big"], big)
        assert plane.stats.pipe_fallbacks == 1
        assert plane.stats.fallback_data_bytes == big.nbytes

        # Honored at the next begin_step: new generation, new name, and the
        # same payload now fits in shared memory.
        old_name = plane.descriptor("w2p0")[1]
        plane.request_grow(request)
        begin(plane, client, 1)
        descriptor = plane.descriptor("w2p0")
        assert descriptor[1] != old_name
        assert descriptor[2] == 1  # generation bumped
        assert plane.stats.grows == 1
        header = client.pack_reply({"big": big})
        assert header[0] == SHM_HEADER
        np.testing.assert_array_equal(plane.unpack(header, "loss")["big"], big)

    def test_alloc_reply_overflow_returns_heap_array(self, plane):
        plane, client = plane
        begin(plane, client, 0)
        staged = client.alloc_reply((1 << 12,), np.float64)
        assert staged.flags["OWNDATA"]  # heap fallback, not a slot view
        assert client.grow_request

    def test_parent_dispatch_overflow_grows_in_place(self, plane):
        plane, client = plane
        begin(plane, client, 0)
        big = {"x": np.ones(1 << 12, dtype=np.float64)}
        header = plane.pack("p2w0", big, "dispatch")
        assert header[0] == SHM_HEADER
        assert plane.stats.grows == 1
        np.testing.assert_array_equal(client.unpack(header)["x"], big["x"])

    def test_forced_regrow_replaces_every_region(self, plane):
        plane, client = plane
        begin(plane, client, 0)
        names = {rid: plane.descriptor(rid)[1] for rid in plane.regions}
        begin(plane, client, 1, force_regrow=True)
        for rid, old_name in names.items():
            descriptor = plane.descriptor(rid)
            assert descriptor[1] != old_name
            assert descriptor[2] == 1
        assert plane.stats.forced_regrows == 1
        # Old segments were unlinked immediately; only the new ones remain.
        payload = {"x": np.arange(5)}
        header = plane.pack("p2w0", payload, "dispatch")
        np.testing.assert_array_equal(client.unpack(header)["x"], payload["x"])

    def test_client_reattaches_only_on_name_change(self, plane):
        plane, client = plane
        begin(plane, client, 0)
        header = plane.pack("p2w0", {"x": np.arange(3)}, "dispatch")
        client.unpack(header)
        first = client._attached["p2w0"]
        client.unpack(header)
        assert client._attached["p2w0"] is first  # cached mapping reused
        begin(plane, client, 1, force_regrow=True)
        header = plane.pack("p2w0", {"x": np.arange(3)}, "dispatch")
        client.unpack(header)
        assert client._attached["p2w0"] is not first


# ----------------------------------------------------------------------
# table regions
# ----------------------------------------------------------------------
class TestTables:
    def test_layout_views_and_capacity_hint(self, plane):
        plane, client = plane
        plane.ensure_tables(
            {"a": 10, "b": 4}, dim=8, dtype_str="<f8", capacity_hint={"a": 32, "b": 32}
        )
        name = plane.descriptor("tables")[1]
        # Steps within the committed capacity never regrow the regions.
        plane.ensure_tables({"a": 32, "b": 1}, dim=8, dtype_str="<f8")
        assert plane.descriptor("tables")[1] == name

        plane.begin_step(0)
        env = plane.tables_env()
        client.begin_step(
            {"slot": 0, "reply": plane.descriptor("w2p0"), "tables": env}
        )
        for which in ("tables", "summed"):
            parent = plane.table_view("a", 10, which=which)
            parent[...] = np.arange(80, dtype=np.float64).reshape(10, 8)
            worker = client.table_view("a", 10, which=which)
            np.testing.assert_array_equal(worker, parent)
            worker[3, 3] = -5.0  # both sides alias the same slot bytes
            assert parent[3, 3] == -5.0

    def test_outgrowing_capacity_bumps_generation(self, plane):
        plane, _ = plane
        plane.ensure_tables({"a": 4}, dim=8, dtype_str="<f8")
        name = plane.descriptor("tables")[1]
        plane.ensure_tables({"a": 4096}, dim=8, dtype_str="<f8")
        descriptor = plane.descriptor("tables")
        assert descriptor[1] != name and descriptor[2] == 1


# ----------------------------------------------------------------------
# lifecycle: nothing outlives the plane
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_close_unlinks_every_segment(self):
        before = set(shm_segments())
        plane = ExchangePlane(n_shards=3)
        plane.open()
        plane.ensure_tables({"a": 64}, dim=16, dtype_str="<f8")
        created = set(shm_segments()) - before
        assert len(created) == 2 * 3 + 1 + 2  # p2w/w2p per shard, bcast, tables pair
        plane.close()
        assert set(shm_segments()) & created == set()

    def test_dropped_plane_is_finalized(self):
        before = set(shm_segments())
        plane = ExchangePlane(n_shards=1)
        plane.open()
        created = set(shm_segments()) - before
        assert created
        del plane  # weakref.finalize must fire without an explicit close()
        assert set(shm_segments()) & created == set()


# ----------------------------------------------------------------------
# executor-level equivalence and the zero-pickled-bytes gate
# ----------------------------------------------------------------------
def fit_trainer(task, **config_overrides):
    config = TrainerConfig(
        num_epochs=2,
        batch_size=128,
        seed=11,
        eval_every=1,
        num_eval_negatives=20,
        executor="sharded",
        n_shards=2,
        **config_overrides,
    )
    trainer = CDRTrainer(build_nmcdr(task), task, config)
    history = trainer.fit()
    return trainer, history


class TestExecutorEquivalence:
    @pytest.mark.parametrize("traced", [False, True], ids=["eager", "traced"])
    def test_pool_sharded_plane_bit_identical_to_pickled(self, task, traced):
        shm, shm_history = fit_trainer(
            task, pool_sharding=True, traced_steps=traced, shm_exchange=True
        )
        piped, piped_history = fit_trainer(
            task, pool_sharding=True, traced_steps=traced, shm_exchange=False
        )
        assert shm_history.epoch_losses == piped_history.epoch_losses
        assert shm_history.validation_metrics == piped_history.validation_metrics
        shm_params = shm.model.state_dict()
        piped_params = piped.model.state_dict()
        for name in piped_params:
            assert np.array_equal(shm_params[name], piped_params[name]), name

        # Structural steady-state gate: with the plane on, every data-plane
        # payload crossed shared memory; with it off, none did.
        stats = shm._executor.comms_stats
        assert stats.pipe_fallbacks == 0
        assert stats.fallback_data_bytes == 0
        assert stats.total("pipe_bytes") == 0
        assert stats.total("shm_bytes") > 0
        for round_name in ("dispatch", "gather", "broadcast", "loss", "scatter"):
            assert stats.rounds[round_name]["messages"] > 0, round_name
        legacy = piped._executor.comms_stats
        assert legacy.total("shm_bytes") == 0
        assert legacy.total("pipe_bytes") > 0

    def test_plain_sharded_plane_bit_identical_to_pickled(self, task):
        shm, shm_history = fit_trainer(task, shm_exchange=True)
        piped, piped_history = fit_trainer(task, shm_exchange=False)
        assert shm_history.epoch_losses == piped_history.epoch_losses
        assert shm_history.validation_metrics == piped_history.validation_metrics
        stats = shm._executor.comms_stats
        assert stats.total("pipe_bytes") == 0
        assert stats.fallback_data_bytes == 0

    def test_run_to_run_bit_reproducible_over_plane(self, task):
        _, first = fit_trainer(task, pool_sharding=True, shm_exchange=True)
        _, second = fit_trainer(task, pool_sharding=True, shm_exchange=True)
        assert first.epoch_losses == second.epoch_losses
        assert first.validation_metrics == second.validation_metrics

    def test_executor_teardown_leaves_no_segments(self, task):
        before = set(shm_segments())
        _, _ = fit_trainer(task, pool_sharding=True, shm_exchange=True)
        assert set(shm_segments()) <= before
