"""Deterministic checkpoint/resume: bit-identity gates, schema, atomicity.

The headline guarantee gated here: a training run killed at any checkpoint
boundary and resumed from the file replays the remainder of the run
**bit-identically** under the float64 default dtype — epoch losses,
validation metrics and final parameters all match an uninterrupted run
exactly, for the serial executor and both sharded executors.

The unit surface covers the schema-versioning satellite: a version
mismatch, a truncated payload, a flipped byte or a mismatched config all
raise :class:`CheckpointError` loudly — a checkpoint never restores a
partial state.
"""

import json
import zipfile

import numpy as np
import pytest

from repro.core import CDRTrainer, NMCDR, NMCDRConfig, TrainerConfig, build_task, faults
from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointCallback,
    CheckpointError,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
)
from repro.data import load_scenario, preprocess_scenario


@pytest.fixture(scope="module")
def task():
    dataset = preprocess_scenario(
        load_scenario("cloth_sport", scale=0.3, seed=3), min_interactions=3
    )
    return build_task(dataset, head_threshold=5)


def make_trainer(task, **overrides):
    settings = dict(
        num_epochs=3,
        batch_size=64,
        seed=0,
        eval_every=1,
        num_eval_negatives=20,
    )
    settings.update(overrides)
    config = TrainerConfig(**settings)
    model = NMCDR(
        task,
        NMCDRConfig(embedding_dim=8, max_matching_neighbors=8, head_threshold=5, seed=0),
    )
    return CDRTrainer(model, task, config)


def assert_resume_bit_identical(task, tmp_path, pick, **overrides):
    """Train once uninterrupted, once checkpointed, once resumed; compare.

    ``pick`` selects the checkpoint to resume from out of the full retained
    sequence (``checkpoint_keep=0`` keeps everything).
    """
    reference = make_trainer(task, **overrides)
    history_ref = reference.fit()
    params_ref = reference.model.state_dict()

    checkpoint_overrides = dict(
        overrides,
        checkpoint_dir=str(tmp_path),
        checkpoint_every=0,
        checkpoint_every_steps=10,
        checkpoint_keep=0,
    )
    first = make_trainer(task, **checkpoint_overrides)
    history_first = first.fit()
    assert history_first.epoch_losses == history_ref.epoch_losses

    checkpoints = list_checkpoints(tmp_path)
    assert checkpoints, "no checkpoints written"
    path = pick(checkpoints)

    resumed = make_trainer(task, **checkpoint_overrides)
    history = resumed.fit(resume_from=str(path))

    assert history.resumed_from == str(path)
    assert history.epoch_losses == history_ref.epoch_losses
    assert history.validation_metrics == history_ref.validation_metrics
    params = resumed.model.state_dict()
    assert set(params) == set(params_ref)
    for name in params_ref:
        assert np.array_equal(params_ref[name], params[name]), name
    return history


def mid_epoch(checkpoints):
    """A checkpoint whose resume position lies strictly inside an epoch."""
    for path in checkpoints:
        if load_checkpoint(path).resume_state.steps_into_epoch > 0:
            return path
    raise AssertionError("no mid-epoch checkpoint was written")


# ----------------------------------------------------------------------
# the resume gate: killed-and-resumed runs are bit-identical
# ----------------------------------------------------------------------
class TestResumeBitIdentity:
    def test_serial_epoch_boundary(self, task, tmp_path):
        reference = make_trainer(task)
        history_ref = reference.fit()

        trainer = make_trainer(
            task, checkpoint_dir=str(tmp_path), checkpoint_every=1, checkpoint_keep=0
        )
        trainer.fit()
        checkpoints = list_checkpoints(tmp_path)
        assert len(checkpoints) == 3  # one per epoch

        resumed = make_trainer(
            task, checkpoint_dir=str(tmp_path), checkpoint_every=1, checkpoint_keep=0
        )
        history = resumed.fit(resume_from=str(checkpoints[0]))
        assert history.epoch_losses == history_ref.epoch_losses
        assert history.validation_metrics == history_ref.validation_metrics

    def test_serial_mid_epoch(self, task, tmp_path):
        history = assert_resume_bit_identical(task, tmp_path, mid_epoch)
        assert history.checkpoints_written > 0

    @pytest.mark.slow
    def test_sharded(self, task, tmp_path):
        assert_resume_bit_identical(
            task, tmp_path, mid_epoch, executor="sharded", n_shards=2
        )

    @pytest.mark.slow
    def test_pool_sharded(self, task, tmp_path):
        assert_resume_bit_identical(
            task,
            tmp_path,
            mid_epoch,
            executor="sharded",
            n_shards=2,
            pool_sharding=True,
        )

    def test_resume_from_directory_resolves_newest(self, task, tmp_path):
        reference = make_trainer(task)
        history_ref = reference.fit()

        trainer = make_trainer(
            task, checkpoint_dir=str(tmp_path), checkpoint_every=1, checkpoint_keep=0
        )
        trainer.fit()
        newest = latest_checkpoint(tmp_path)
        assert newest == list_checkpoints(tmp_path)[-1]

        resumed = make_trainer(
            task, checkpoint_dir=str(tmp_path), checkpoint_every=1, checkpoint_keep=0
        )
        history = resumed.fit(resume_from=str(tmp_path))
        # The newest checkpoint covers the whole run: nothing is retrained,
        # and the restored history matches the original bit-for-bit.
        assert history.resumed_from == str(newest)
        assert history.epoch_losses == history_ref.epoch_losses
        assert history.validation_metrics == history_ref.validation_metrics

    def test_resume_from_empty_directory_raises(self, task, tmp_path):
        trainer = make_trainer(task)
        with pytest.raises(CheckpointError, match="no checkpoint found"):
            trainer.fit(resume_from=str(tmp_path))


# ----------------------------------------------------------------------
# retention, cadence and config validation
# ----------------------------------------------------------------------
class TestCadenceAndRetention:
    def test_retention_keeps_last_k(self, task, tmp_path):
        trainer = make_trainer(
            task, checkpoint_dir=str(tmp_path), checkpoint_every=1, checkpoint_keep=2
        )
        trainer.fit()
        checkpoints = list_checkpoints(tmp_path)
        assert len(checkpoints) == 2
        # The survivors are the two newest epoch boundaries.
        assert [c.resume_state.next_epoch for c in map(load_checkpoint, checkpoints)] == [2, 3]

    def test_step_cadence(self, task, tmp_path):
        trainer = make_trainer(
            task,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=0,
            checkpoint_every_steps=5,
            checkpoint_keep=0,
        )
        history = trainer.fit()
        checkpoints = list_checkpoints(tmp_path)
        assert history.checkpoints_written == len(checkpoints)
        assert history.last_checkpoint == str(checkpoints[-1])
        steps = [load_checkpoint(path).resume_state.total_steps for path in checkpoints]
        assert steps == sorted(steps)
        assert all(step % 5 == 0 for step in steps)

    def test_checkpoint_dir_without_cadence_rejected(self):
        with pytest.raises(ValueError, match="checkpoint"):
            TrainerConfig(checkpoint_dir="/tmp/x", checkpoint_every=0, checkpoint_every_steps=0)

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValueError):
            TrainerConfig(checkpoint_every=-1)
        with pytest.raises(ValueError):
            TrainerConfig(checkpoint_every_steps=-1)

    def test_callback_installed_only_with_directory(self, task, tmp_path):
        plain = make_trainer(task).build_engine()
        assert not any(isinstance(c, CheckpointCallback) for c in plain.callbacks)
        enabled = make_trainer(task, checkpoint_dir=str(tmp_path)).build_engine()
        assert any(isinstance(c, CheckpointCallback) for c in enabled.callbacks)


# ----------------------------------------------------------------------
# schema versioning and corruption (satellite S4)
# ----------------------------------------------------------------------
def write_one_checkpoint(task, tmp_path):
    trainer = make_trainer(
        task, num_epochs=1, checkpoint_dir=str(tmp_path), checkpoint_every=1
    )
    trainer.fit()
    path = latest_checkpoint(tmp_path)
    assert path is not None
    return path


def rewrite_meta(path, mutate):
    """Round-trip the npz, applying ``mutate`` to the decoded meta dict."""
    with np.load(path) as payload:
        arrays = {name: payload[name] for name in payload.files}
    meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
    mutate(meta)
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(path, **arrays)


class TestSchemaAndCorruption:
    def test_version_mismatch_raises(self, task, tmp_path):
        path = write_one_checkpoint(task, tmp_path)
        rewrite_meta(path, lambda meta: meta.update(format_version=CHECKPOINT_VERSION + 1))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_truncated_payload_raises(self, task, tmp_path):
        path = write_one_checkpoint(task, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupted"):
            load_checkpoint(path)

    def test_flipped_bytes_fail_digest_check(self, task, tmp_path):
        intact = write_one_checkpoint(task, tmp_path / "intact")
        faults.configure(faults.parse_spec("checkpoint_corrupt"))
        try:
            trainer = make_trainer(
                task,
                num_epochs=1,
                checkpoint_dir=str(tmp_path / "corrupt"),
                checkpoint_every=1,
            )
            trainer.fit()
        finally:
            faults.clear()
        corrupted = latest_checkpoint(tmp_path / "corrupt")
        # Depending on where the flipped bytes land, either the zip CRC or
        # the payload digest catches it — both are loud CheckpointErrors.
        with pytest.raises(CheckpointError, match="corrupted|integrity"):
            load_checkpoint(corrupted)
        # The run from the intact directory still loads.
        assert load_checkpoint(intact).resume_state.next_epoch == 1

    def test_not_a_zipfile_raises(self, tmp_path):
        path = tmp_path / "ckpt-epoch00001-step000000001.npz"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError, match="truncated or corrupted"):
            load_checkpoint(path)

    def test_missing_meta_raises(self, task, tmp_path):
        path = write_one_checkpoint(task, tmp_path)
        with np.load(path) as payload:
            arrays = {n: payload[n] for n in payload.files if n != "meta"}
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_config_mismatch_raises(self, task, tmp_path):
        path = write_one_checkpoint(task, tmp_path)
        trainer = make_trainer(task, learning_rate=0.123)
        with pytest.raises(CheckpointError, match="config"):
            trainer.fit(resume_from=str(path))

    def test_volatile_config_fields_do_not_block_resume(self, task, tmp_path):
        # Checkpointing/supervision knobs and verbosity may change between
        # the writing run and the resuming run without breaking determinism.
        path = write_one_checkpoint(task, tmp_path)
        trainer = make_trainer(
            task,
            num_epochs=1,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=2,
            checkpoint_keep=1,
            verbose=True,
        )
        trainer.fit(resume_from=str(path))

    def test_checkpoint_is_a_valid_zip_with_digest(self, task, tmp_path):
        path = write_one_checkpoint(task, tmp_path)
        assert zipfile.is_zipfile(path)
        checkpoint = load_checkpoint(path)
        assert checkpoint.meta["format_version"] == CHECKPOINT_VERSION
        assert checkpoint.meta["digest"]
        assert checkpoint.resume_state.next_epoch == 1
        assert checkpoint.resume_state.steps_into_epoch == 0


# ----------------------------------------------------------------------
# atomicity: a crash during the write never destroys the previous file
# ----------------------------------------------------------------------
class TestWriteAtomicity:
    def test_crash_before_rename_preserves_previous(self, task, tmp_path):
        first = write_one_checkpoint(task, tmp_path)
        reference = load_checkpoint(first)

        faults.configure(faults.parse_spec("checkpoint_crash"))
        try:
            trainer = make_trainer(
                task, num_epochs=1, checkpoint_dir=str(tmp_path), checkpoint_every=1
            )
            with pytest.raises(CheckpointError, match="injected checkpoint-write crash"):
                trainer.fit()
        finally:
            faults.clear()

        # No partial file appeared and the previous checkpoint is intact.
        assert list_checkpoints(tmp_path) == [first]
        assert not list(tmp_path.glob("*.tmp*"))
        survivor = load_checkpoint(first)
        assert survivor.meta["digest"] == reference.meta["digest"]
