"""End-to-end tests of the NMCDR model, ablation variants, trainer and stability analysis."""

import numpy as np
import pytest

from repro.core import (
    CDRTrainer,
    NMCDR,
    TrainerConfig,
    VARIANT_NAMES,
    build_variant,
    empirical_prediction_deviation,
    spectral_norm,
    stability_report,
    theoretical_stability_bound,
    variant_config,
)
from repro.data.dataloader import Batch


class TestForwardPipeline:
    def test_stage_representations_present_and_shaped(self, tiny_task, tiny_nmcdr_config):
        model = NMCDR(tiny_task, tiny_nmcdr_config)
        reps = model.forward_representations()
        for key in ("a", "b"):
            num_users = tiny_task.domain(key).num_users
            for stage in ("user_g0", "user_g1", "user_g2", "user_g3", "user_g4"):
                assert reps[key][stage].shape == (num_users, tiny_nmcdr_config.embedding_dim)
            assert reps[key]["items"].shape[0] == tiny_task.domain(key).num_items

    def test_stages_change_representations(self, tiny_task, tiny_nmcdr_config):
        model = NMCDR(tiny_task, tiny_nmcdr_config)
        reps = model.forward_representations()["a"]
        assert not np.allclose(reps["user_g1"].data, reps["user_g2"].data)
        assert not np.allclose(reps["user_g2"].data, reps["user_g3"].data)
        assert not np.allclose(reps["user_g3"].data, reps["user_g4"].data)

    def test_ablation_flags_skip_stages(self, tiny_task, tiny_nmcdr_config):
        config = tiny_nmcdr_config.variant(
            use_intra_matching=False, use_inter_matching=False, use_complementing=False
        )
        model = NMCDR(tiny_task, config)
        reps = model.forward_representations()["a"]
        assert np.allclose(reps["user_g1"].data, reps["user_g2"].data)
        assert np.allclose(reps["user_g2"].data, reps["user_g3"].data)
        assert np.allclose(reps["user_g3"].data, reps["user_g4"].data)

    def test_batch_loss_is_finite_and_backpropagates(self, tiny_task, tiny_nmcdr_config):
        model = NMCDR(tiny_task, tiny_nmcdr_config)
        batch = Batch(
            users=np.array([0, 1, 2]), items=np.array([0, 1, 2]), labels=np.array([1.0, 0.0, 1.0])
        )
        loss = model.compute_batch_loss({"a": batch, "b": None})
        assert np.isfinite(loss.item())
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert len(grads) > 0

    def test_companion_ablation_reduces_loss_terms(self, tiny_task, tiny_nmcdr_config):
        batch = Batch(users=np.array([0, 1]), items=np.array([0, 1]), labels=np.array([1.0, 0.0]))
        full = NMCDR(tiny_task, tiny_nmcdr_config)
        no_sup = NMCDR(tiny_task, tiny_nmcdr_config.variant(use_companion=False))
        full_loss = full.compute_batch_loss({"a": batch})
        no_sup_loss = no_sup.compute_batch_loss({"a": batch})
        # with identical seeds the companion version adds four extra BCE terms
        assert full_loss.item() > no_sup_loss.item()

    def test_empty_batches_rejected(self, tiny_task, tiny_nmcdr_config):
        model = NMCDR(tiny_task, tiny_nmcdr_config)
        with pytest.raises(ValueError):
            model.compute_batch_loss({"a": None, "b": None})

    def test_score_interface(self, trained_nmcdr, tiny_task):
        users = np.array([0, 1, 2, 3])
        items = np.array([0, 1, 0, 1])
        scores = trained_nmcdr.score("a", users, items)
        assert scores.shape == (4,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_score_is_deterministic_from_cache(self, trained_nmcdr):
        users = np.array([0, 1, 2])
        items = np.array([1, 2, 3])
        first = trained_nmcdr.score("a", users, items)
        second = trained_nmcdr.score("a", users, items)
        assert np.allclose(first, second)

    def test_invalidate_cache_forces_refresh(self, tiny_task, tiny_nmcdr_config):
        model = NMCDR(tiny_task, tiny_nmcdr_config)
        model.prepare_for_evaluation()
        assert model._cache is not None
        model.invalidate_cache()
        assert model._cache is None

    def test_unknown_domain_key(self, tiny_task, tiny_nmcdr_config):
        model = NMCDR(tiny_task, tiny_nmcdr_config)
        with pytest.raises(KeyError):
            model._params("z")


class TestVariants:
    def test_variant_names(self):
        assert set(VARIANT_NAMES) == {"full", "w/o-Igm", "w/o-Cgm", "w/o-Inc", "w/o-Sup"}

    def test_variant_config_flags(self):
        assert not variant_config("w/o-Igm").use_intra_matching
        assert not variant_config("w/o-Cgm").use_inter_matching
        assert not variant_config("w/o-Inc").use_complementing
        assert not variant_config("w/o-Sup").use_companion
        assert variant_config("full").use_intra_matching

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            variant_config("w/o-Everything")

    def test_build_variant(self, tiny_task):
        model = build_variant("w/o-Cgm", tiny_task)
        assert isinstance(model, NMCDR)
        assert not model.config.use_inter_matching


class TestTrainer:
    def test_loss_decreases_over_training(self, tiny_task, tiny_nmcdr_config):
        model = NMCDR(tiny_task, tiny_nmcdr_config)
        trainer = CDRTrainer(
            model, tiny_task, TrainerConfig(num_epochs=4, batch_size=256, num_eval_negatives=20)
        )
        history = trainer.fit()
        assert len(history.epoch_losses) == 4
        assert history.epoch_losses[-1] < history.epoch_losses[0]
        assert history.train_seconds_per_batch > 0

    def test_trained_model_beats_random_ranking(self, trained_nmcdr, tiny_task):
        trainer = CDRTrainer(
            trained_nmcdr, tiny_task, TrainerConfig(num_epochs=1, num_eval_negatives=30)
        )
        metrics = trainer.evaluate(subset="test")
        chance_hr = 10.0 / 31.0
        assert metrics["a"]["hr@10"] > chance_hr
        assert metrics["b"]["hr@10"] > chance_hr

    def test_early_stopping_restores_best_state(self, tiny_task, tiny_nmcdr_config):
        model = NMCDR(tiny_task, tiny_nmcdr_config)
        trainer = CDRTrainer(
            model,
            tiny_task,
            TrainerConfig(
                num_epochs=3,
                eval_every=1,
                early_stopping_patience=1,
                num_eval_negatives=20,
                batch_size=512,
            ),
        )
        history = trainer.fit()
        assert history.best_epoch >= 0
        assert history.best_state is not None
        assert len(history.validation_metrics) >= 1

    def test_evaluate_returns_both_domains(self, trained_nmcdr, tiny_task):
        trainer = CDRTrainer(trained_nmcdr, tiny_task, TrainerConfig(num_epochs=1, num_eval_negatives=15))
        metrics = trainer.evaluate()
        assert set(metrics) == {"a", "b"}
        for domain_metrics in metrics.values():
            assert {"hr@10", "ndcg@10", "mrr"} <= set(domain_metrics)


class TestStability:
    def test_spectral_norm(self):
        matrix = np.diag([3.0, 1.0])
        assert spectral_norm(matrix) == pytest.approx(3.0)
        assert spectral_norm(np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_theoretical_bound_positive(self, trained_nmcdr):
        bound = theoretical_stability_bound(trained_nmcdr, "a")
        assert bound > 0
        assert np.isfinite(bound)

    def test_empirical_deviation_scales_with_perturbation(self, trained_nmcdr):
        small = empirical_prediction_deviation(
            trained_nmcdr, "a", perturbation_scale=0.01, rng=np.random.default_rng(0)
        )
        large = empirical_prediction_deviation(
            trained_nmcdr, "a", perturbation_scale=0.5, rng=np.random.default_rng(0)
        )
        assert large["mean_deviation"] >= small["mean_deviation"]

    def test_perturbation_restores_weights(self, trained_nmcdr):
        params = trained_nmcdr._params("a")
        before = params.user_embedding.weight.data.copy()
        empirical_prediction_deviation(trained_nmcdr, "a", rng=np.random.default_rng(1))
        assert np.allclose(before, params.user_embedding.weight.data)

    def test_stability_report_fields(self, trained_nmcdr):
        report = stability_report(trained_nmcdr, "a", rng=np.random.default_rng(2))
        as_dict = report.as_dict()
        assert {"bound_coefficient", "mean_deviation", "max_deviation"} <= set(as_dict)
        assert report.theoretical_bound_coefficient > 0
