"""Unit tests for the online A/B simulator internals (policies, world calibration)."""

import numpy as np
import pytest

from repro.experiments.online_ab import (
    DEFAULT_ONLINE_DOMAINS,
    OnlineDomainSpec,
    _ModelPolicy,
    _PopularityPolicy,
    build_online_world,
)
from repro.nn import ModelCapabilities
from repro.serve import Scorer


@pytest.fixture(scope="module")
def world():
    return build_online_world(
        (
            OnlineDomainSpec("Loan", 100, 30, base_cvr=0.10),
            OnlineDomainSpec("Fund", 80, 25, base_cvr=0.06),
            OnlineDomainSpec("Account", 60, 20, base_cvr=0.02),
        ),
        overlap_fraction=0.3,
        seed=5,
    )


class TestWorld:
    def test_domains_and_latents_present(self, world):
        assert set(world.domains) == {"Loan", "Fund", "Account"}
        for name, domain in world.domains.items():
            assert world.user_latents[name].shape[0] == domain.num_users
            assert world.item_latents[name].shape[0] == domain.num_items

    def test_partial_overlap_with_anchor(self, world):
        anchor_ids = set(world.domains["Loan"].global_user_ids.tolist())
        fund_ids = set(world.domains["Fund"].global_user_ids.tolist())
        shared = anchor_ids & fund_ids
        assert 0 < len(shared) < len(fund_ids)

    def test_conversion_probability_calibration(self, world):
        """Average conversion probability sits near the domain's base CVR."""
        rng = np.random.default_rng(0)
        for spec in world.specs:
            domain = world.domains[spec.name]
            probabilities = [
                world.conversion_probability(
                    spec.name,
                    int(rng.integers(0, domain.num_users)),
                    int(rng.integers(0, domain.num_items)),
                )
                for _ in range(300)
            ]
            mean_probability = float(np.mean(probabilities))
            assert 0.3 * spec.base_cvr < mean_probability < 2.5 * spec.base_cvr

    def test_probabilities_bounded(self, world):
        for user in range(5):
            for item in range(5):
                probability = world.conversion_probability("Loan", user, item)
                assert 0.0 <= probability <= 0.95

    def test_item_popularity_shape(self, world):
        popularity = world.item_popularity("Fund")
        assert popularity.shape == (world.domains["Fund"].num_items,)
        assert popularity.sum() == world.domains["Fund"].num_interactions

    def test_default_domains_match_paper_control_rates(self):
        names = {spec.name: spec.base_cvr for spec in DEFAULT_ONLINE_DOMAINS}
        assert names["Loan"] == pytest.approx(0.105)
        assert names["Fund"] == pytest.approx(0.061)
        assert names["Account"] == pytest.approx(0.019)


class TestPolicies:
    def test_popularity_policy_picks_most_popular(self):
        popularity = np.array([1.0, 50.0, 3.0, 2.0])
        policy = _PopularityPolicy(popularity)
        assert policy.choose(user=0, slate=np.array([0, 2, 3])) == 2
        assert policy.choose(user=0, slate=np.array([1, 3])) == 1

    def test_model_policy_picks_highest_score(self):
        class FakeModel:
            def capabilities(self):
                return ModelCapabilities()  # no encode/match split: delegation path

            def prepare_for_evaluation(self):
                pass

            def score(self, domain_key, users, items):
                return np.asarray(items, dtype=float)  # larger item id = higher score

        policy = _ModelPolicy(Scorer(FakeModel()), "a")
        assert policy.choose(user=3, slate=np.array([4, 9, 1])) == 9

    def test_model_policy_breaks_ties_like_argmax(self):
        """Duplicate slate items score equal; the first occurrence must win."""

        class FakeModel:
            def capabilities(self):
                return ModelCapabilities()

            def prepare_for_evaluation(self):
                pass

            def score(self, domain_key, users, items):
                return np.where(np.asarray(items) == 7, 1.0, 0.0)

        policy = _ModelPolicy(Scorer(FakeModel()), "a")
        slate = np.array([2, 7, 5, 7])
        scores = FakeModel().score("a", None, slate)
        assert policy.choose(user=0, slate=slate) == int(slate[np.argmax(scores)])
