"""Serving-tier tests: protocol adoption, store invariants, scorer exactness.

The load-bearing guarantees gated here:

* store-backed top-K answers are bit-identical (float64) to full-model
  rescoring, including cold-start users routed through the matching module;
* an incremental refresh after a parameter update produces bit-identical
  tables to a full rebuild from the same rng snapshot, and a head-only
  update refreshes without any forward;
* stale reads beyond the configured bound raise instead of serving old rows;
* the capability protocol replaced every ``hasattr`` probe in core/serve;
* ``load_checkpoint(..., params_only=True)`` loads moment-stripped archives
  that a full load correctly rejects;
* the ``repro serve`` CLI answers a request file exactly (the CI smoke).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import build_model
from repro.core import CDRTrainer, NMCDR, NMCDRConfig, TrainerConfig, build_task
from repro.core.checkpoint import (
    CheckpointError,
    ResumeState,
    _payload_digest,
    generator_state,
    load_checkpoint,
    save_checkpoint,
    set_generator_state,
)
from repro.core.engine import TrainingHistory
from repro.data.schema import CDRDataset, DomainData
from repro.nn import ModelCapabilities, Module, Parameter
from repro.optim import Adam
from repro.serve import (
    RepresentationStore,
    ScoreRequest,
    Scorer,
    StaleRepresentationError,
    StoreError,
    component_digests,
    exact_top_k,
)
from repro.tensor.trace import model_rng_sources

STAGES = ("user_g1", "user_g3", "user_g4", "items")


def _train_nmcdr(task, num_epochs=2, seed=0):
    model = NMCDR(
        task,
        NMCDRConfig(embedding_dim=16, max_matching_neighbors=32, head_threshold=5, seed=seed),
    )
    CDRTrainer(
        model,
        task,
        TrainerConfig(num_epochs=num_epochs, batch_size=256, num_eval_negatives=30, seed=seed),
    ).fit()
    return model


def _reference_model(model, task, rng_states):
    """A clone scoring through the evaluation cache under the given rng states."""
    reference = NMCDR(task, model.config)
    reference.load_state_dict(model.state_dict())
    for rng, state in zip(model_rng_sources(reference), rng_states):
        set_generator_state(rng, state)
    reference.prepare_for_evaluation()
    return reference


@pytest.fixture(scope="module")
def served(tiny_task):
    """(model, store, scorer, reference) built from one trained NMCDR."""
    model = _train_nmcdr(tiny_task)
    states = [generator_state(rng) for rng in model_rng_sources(model)]
    store = RepresentationStore.build(model, tiny_task, params_version=3)
    scorer = Scorer(model, store)
    reference = _reference_model(model, tiny_task, states)
    return model, store, scorer, reference


# ----------------------------------------------------------------------
# capability protocol
# ----------------------------------------------------------------------
class TestCapabilityProtocol:
    def test_nmcdr_declares_every_capability(self, tiny_task):
        caps = NMCDR(tiny_task, NMCDRConfig(embedding_dim=8)).capabilities()
        assert caps == ModelCapabilities(
            encode_match_split=True,
            sharding=True,
            matching_pools=True,
            pool_exchange=True,
            subgraph_sampling=True,
        )

    def test_module_default_declares_nothing(self):
        assert Module().capabilities() == ModelCapabilities()

    @pytest.mark.parametrize(
        "name, sharding, subgraph",
        [("PLE", True, False), ("GA-DTCDR", True, True), ("BPR", False, False)],
    )
    def test_baselines_declare_from_their_mixins(self, tiny_task, name, sharding, subgraph):
        caps = build_model(name, tiny_task, embedding_dim=8, seed=0).capabilities()
        assert caps.encode_match_split is False
        assert caps.sharding is sharding
        assert caps.subgraph_sampling is subgraph

    def test_no_protocol_probes_left_in_core_or_serve(self):
        """The api_redesign contract: consumers branch on capabilities()."""
        import repro

        root = Path(repro.__file__).parent
        probed = (
            "encode_representations",
            "match_representations",
            "sample_step_pools",
            "plan_pool_exchange",
            "configure_subgraph_sampling",
            "on_epoch_start",
            "score_pairs",
        )
        offenders = []
        for package in ("core", "serve"):
            for source_file in (root / package).rglob("*.py"):
                source = source_file.read_text()
                for method in probed:
                    for probe in (f'hasattr(model, "{method}"', f'getattr(model, "{method}"'):
                        if probe in source:
                            offenders.append(f"{source_file.name}: {probe}")
        assert offenders == []


# ----------------------------------------------------------------------
# exact top-K
# ----------------------------------------------------------------------
class TestExactTopK:
    def test_matches_stable_full_sort(self, rng):
        scores = rng.normal(size=500)
        scores[rng.integers(0, 500, size=60)] = 1.5  # force ties
        full = np.argsort(-scores, kind="stable")
        for k in (1, 7, 499, 500):
            assert np.array_equal(exact_top_k(scores, k), full[:k])

    def test_tie_break_matches_argmax(self):
        scores = np.array([0.2, 0.9, 0.9, 0.1])
        assert exact_top_k(scores, 1)[0] == np.argmax(scores)

    def test_degenerate_k(self):
        scores = np.array([3.0, 1.0])
        assert exact_top_k(scores, 0).size == 0
        assert np.array_equal(exact_top_k(scores, 10), np.array([0, 1]))


# ----------------------------------------------------------------------
# store-backed scoring exactness
# ----------------------------------------------------------------------
class TestScorerExactness:
    def test_top_k_bit_identical_to_full_rescoring(self, served):
        _model, store, scorer, reference = served
        requests = [
            ScoreRequest("a", 0, k=1),
            ScoreRequest("a", 5, k=10),
            ScoreRequest("b", 2, k=store.tables["b"].num_items),  # full catalogue
            ScoreRequest("b", 7, k=4, candidates=np.array([3, 11, 3, 0, 11])),
        ]
        responses = scorer.score_batch(requests)
        for request, response in zip(requests, responses):
            candidates = (
                request.candidates
                if request.candidates is not None
                else np.arange(store.tables[request.domain].num_items)
            )
            scores = reference.score(
                request.domain,
                np.full(candidates.shape[0], request.user, dtype=np.int64),
                candidates,
            )
            top = exact_top_k(scores, request.k)
            assert np.array_equal(response.items, candidates[top])
            assert response.scores.tolist() == scores[top].tolist()  # float64 exact
            assert response.generation == store.generation
            assert response.params_version == 3

    def test_delegation_path_matches_model_score(self, tiny_task):
        model = build_model("PLE", tiny_task, embedding_dim=8, seed=0)
        scorer = Scorer.from_model(model, tiny_task, micro_batch_size=7)
        assert scorer.store is None
        candidates = np.arange(tiny_task.domain("a").num_items)
        response = scorer.score(ScoreRequest("a", 1, k=5))
        scores = model.score("a", np.full(candidates.shape[0], 1), candidates)
        top = exact_top_k(scores, 5)
        assert np.array_equal(response.items, candidates[top])
        assert response.scores.tolist() == scores[top].tolist()
        assert response.cold_start is False

    def test_store_requires_split_capability(self, tiny_task):
        model = build_model("PLE", tiny_task, embedding_dim=8, seed=0)
        with pytest.raises(TypeError, match="encode_match_split"):
            RepresentationStore.build(model, tiny_task)
        with pytest.raises(ValueError, match="without a store"):
            Scorer(model, RepresentationStore.__new__(RepresentationStore))

    def test_micro_batching_is_invisible(self, served):
        _model, _store, scorer, _reference = served
        tiny = Scorer(scorer.model, scorer.store, micro_batch_size=3)
        request = ScoreRequest("a", 4, k=9)
        assert tiny.score(request).scores.tolist() == scorer.score(request).scores.tolist()


# ----------------------------------------------------------------------
# cold-start routing
# ----------------------------------------------------------------------
class TestColdStart:
    @pytest.fixture(scope="class")
    def cold_setup(self, tiny_dataset):
        """A task where one overlapping user has zero domain-b interactions."""
        domain_b = tiny_dataset.domain_b
        overlap_globals = np.intersect1d(
            tiny_dataset.domain_a.global_user_ids, domain_b.global_user_ids
        )
        cold_user = int(np.where(domain_b.global_user_ids == overlap_globals[0])[0][0])
        keep = domain_b.users != cold_user
        stripped = DomainData(
            name=domain_b.name,
            num_users=domain_b.num_users,
            num_items=domain_b.num_items,
            users=domain_b.users[keep],
            items=domain_b.items[keep],
            timestamps=domain_b.timestamps[keep],
            global_user_ids=domain_b.global_user_ids,
        )
        dataset = CDRDataset(
            name="tiny_cold", domain_a=tiny_dataset.domain_a, domain_b=stripped
        )
        task = build_task(dataset, head_threshold=5)
        model = _train_nmcdr(task, num_epochs=1)
        states = [generator_state(rng) for rng in model_rng_sources(model)]
        store = RepresentationStore.build(model, task, params_version=0)
        reference = _reference_model(model, task, states)
        return task, model, store, reference, cold_user

    def test_cold_user_served_from_matching_module(self, cold_setup):
        _task, model, store, reference, cold_user = cold_setup
        table = store.tables["b"]
        assert not table.warm[cold_user]
        assert table.warm.sum() > 0  # the rest of the roster stayed warm
        # The serving row IS the matching-module output, and the
        # complementing stage is the identity on the edge-less user.
        assert np.array_equal(table.user_row(cold_user), table.user_g3[cold_user])
        assert np.array_equal(table.user_g4[cold_user], table.user_g3[cold_user])

        scorer = Scorer(model, store)
        response = scorer.score(ScoreRequest("b", cold_user, k=5))
        assert response.cold_start is True

        candidates = np.arange(table.num_items)
        scores = reference.score(
            "b", np.full(candidates.shape[0], cold_user, dtype=np.int64), candidates
        )
        top = exact_top_k(scores, 5)
        assert np.array_equal(response.items, candidates[top])
        assert response.scores.tolist() == scores[top].tolist()

    def test_warm_user_not_flagged(self, cold_setup):
        _task, model, store, _reference, _cold_user = cold_setup
        warm_user = int(np.flatnonzero(store.tables["b"].warm)[0])
        response = Scorer(model, store).score(ScoreRequest("b", warm_user, k=3))
        assert response.cold_start is False


# ----------------------------------------------------------------------
# refresh invariants
# ----------------------------------------------------------------------
class TestRefresh:
    @pytest.fixture()
    def fresh(self, tiny_task, served):
        """A private model+store copy (refresh tests mutate parameters)."""
        source, _store, _scorer, _reference = served
        model = NMCDR(tiny_task, source.config)
        model.load_state_dict(source.state_dict())
        store = RepresentationStore.build(model, tiny_task, params_version=0)
        return model, store

    @staticmethod
    def _assert_tables_equal(store, other):
        for key in ("a", "b"):
            for stage in STAGES:
                assert np.array_equal(
                    getattr(store.tables[key], stage), getattr(other.tables[key], stage)
                ), f"{key}/{stage} diverged"

    def test_refresh_after_optimizer_step_matches_full_rebuild(self, tiny_task, fresh):
        model, store = fresh
        snapshot = store.meta["rng_sources"]
        CDRTrainer(
            model,
            tiny_task,
            TrainerConfig(num_epochs=1, batch_size=256, num_eval_negatives=30, seed=9),
        ).fit()
        stats = store.refresh(model, params_version=1)
        assert stats["recomputed_match"] is True
        assert set(stats["recomputed_encode"]) == {"a", "b"}
        rebuilt = RepresentationStore.build(
            model, tiny_task, params_version=1, rng_states=snapshot
        )
        self._assert_tables_equal(store, rebuilt)
        assert store.generation == 2 and store.params_version == 1

    def test_single_component_refreshes_are_incremental_and_exact(self, tiny_task, fresh):
        model, store = fresh
        snapshot = store.meta["rng_sources"]

        model.domain_a_params.encoder.parameters()[0].data += 0.01
        stats = store.refresh(model)
        assert stats["recomputed_encode"] == ["a"]  # domain b's encode reused
        self._assert_tables_equal(
            store,
            RepresentationStore.build(model, tiny_task, rng_states=snapshot),
        )

        model.domain_b_params.inter_layers[0].parameters()[0].data += 0.01
        stats = store.refresh(model)
        assert stats["recomputed_encode"] == [] and stats["recomputed_match"] is True
        self._assert_tables_equal(
            store,
            RepresentationStore.build(model, tiny_task, rng_states=snapshot),
        )

    def test_head_only_update_skips_the_forward(self, tiny_task, fresh):
        model, store = fresh
        before = {
            key: {stage: getattr(store.tables[key], stage).copy() for stage in STAGES}
            for key in ("a", "b")
        }
        model.domain_a_params.prediction.parameters()[0].data += 0.05
        stats = store.refresh(model, params_version=1)
        assert stats["changed"] == ["head_a"]
        assert stats["recomputed_match"] is False and stats["recomputed_encode"] == []
        for key in ("a", "b"):
            for stage in STAGES:
                assert np.array_equal(getattr(store.tables[key], stage), before[key][stage])
        # ... and scoring through the store still matches full rescoring.
        states = store.meta["rng_sources"]
        reference = _reference_model(model, tiny_task, states)
        response = Scorer(model, store).score(ScoreRequest("a", 1, k=6))
        candidates = np.arange(store.tables["a"].num_items)
        scores = reference.score("a", np.full(candidates.shape[0], 1), candidates)
        top = exact_top_k(scores, 6)
        assert response.scores.tolist() == scores[top].tolist()

    def test_noop_refresh_changes_nothing_but_the_generation(self, fresh):
        model, store = fresh
        stats = store.refresh(model)
        assert stats["changed"] == [] and stats["recomputed_match"] is False
        assert store.generation == 2

    def test_refresh_leaves_live_rng_untouched(self, fresh):
        model, store = fresh
        model.domain_a_params.encoder.parameters()[0].data += 0.01
        before = [generator_state(rng) for rng in model_rng_sources(model)]
        store.refresh(model)
        after = [generator_state(rng) for rng in model_rng_sources(model)]
        assert before == after

    def test_component_digests_partition_every_parameter(self, fresh):
        model, _store = fresh
        digests = component_digests(model)
        assert set(digests) == {"encode_a", "encode_b", "match", "head_a", "head_b"}


# ----------------------------------------------------------------------
# staleness + persistence
# ----------------------------------------------------------------------
class TestStoreLifecycle:
    def test_stale_reads_raise_beyond_the_bound(self, tiny_task, served):
        model, _store, _scorer, _reference = served
        store = RepresentationStore.build(
            model, tiny_task, params_version=10, max_staleness=2
        )
        store.domain("a", current_version=12)  # at the bound: fine
        scorer = Scorer(model, store)
        scorer.score_batch([ScoreRequest("a", 0, k=1)], current_version=12)
        with pytest.raises(StaleRepresentationError, match="staleness bound"):
            store.domain("a", current_version=13)
        with pytest.raises(StaleRepresentationError):
            scorer.score_batch([ScoreRequest("a", 0, k=1)], current_version=13)

    def test_save_load_round_trip(self, served, tmp_path):
        _model, store, _scorer, _reference = served
        store.save(tmp_path)
        loaded = RepresentationStore.load(tmp_path)
        assert loaded.generation == store.generation
        assert loaded.params_version == store.params_version
        for key in ("a", "b"):
            for stage in (*STAGES, "warm"):
                assert np.array_equal(
                    getattr(loaded.tables[key], stage), getattr(store.tables[key], stage)
                )

    def test_corrupted_archive_is_rejected(self, served, tmp_path):
        _model, store, _scorer, _reference = served
        path = store.save(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreError):
            RepresentationStore.load(tmp_path)

    def test_missing_store_is_a_clear_error(self, tmp_path):
        with pytest.raises(StoreError, match="not found"):
            RepresentationStore.load(tmp_path)


# ----------------------------------------------------------------------
# params-only checkpoint loading
# ----------------------------------------------------------------------
class _ToyModel(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.arange(6, dtype=np.float64).reshape(2, 3))
        self.bias = Parameter(np.ones(3))


def _write_toy_checkpoint(directory):
    model = _ToyModel()
    optimizer = Adam(model.parameters(), lr=1e-3)
    return save_checkpoint(
        directory,
        model=model,
        optimizer=optimizer,
        history=TrainingHistory(),
        position=ResumeState(next_epoch=1, steps_into_epoch=0, total_steps=4),
        loader_rng_states={},
        model_rng_states=[],
        config_fingerprint={},
    )


def _strip_adam_payload(path):
    """Deployment-style strip: drop the moment arrays, recompute the digest."""
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        arrays = {
            name: archive[name]
            for name in archive.files
            if name != "meta" and not name.startswith(("adam_m::", "adam_v::"))
        }
    meta["digest"] = _payload_digest(arrays)
    payload = dict(arrays)
    payload["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(open(path, "wb"), **payload)


class TestParamsOnlyLoading:
    def test_full_load_still_returns_moments(self, tmp_path):
        path = _write_toy_checkpoint(tmp_path)
        loaded = load_checkpoint(path)
        assert len(loaded.adam_m) == 2 and len(loaded.adam_v) == 2

    def test_params_only_skips_moments(self, tmp_path):
        path = _write_toy_checkpoint(tmp_path)
        loaded = load_checkpoint(path, params_only=True)
        assert loaded.adam_m == [] and loaded.adam_v == []
        fresh = _ToyModel()
        fresh.weight.data[:] = 0.0
        fresh.load_state_dict(loaded.parameters)
        assert np.array_equal(fresh.weight.data, np.arange(6, dtype=np.float64).reshape(2, 3))

    def test_stripped_archive_loads_params_only_and_rejects_full(self, tmp_path):
        path = _write_toy_checkpoint(tmp_path)
        _strip_adam_payload(path)
        loaded = load_checkpoint(path, params_only=True)
        assert set(loaded.parameters) == {"weight", "bias"}
        with pytest.raises(CheckpointError, match="incomplete"):
            load_checkpoint(path)

    def test_params_only_still_verifies_the_digest(self, tmp_path):
        path = _write_toy_checkpoint(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError):
            load_checkpoint(path, params_only=True)


# ----------------------------------------------------------------------
# CLI smoke: train a tiny checkpoint, serve a request file, verify exact
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_one_shot_request_file_is_exact(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        run_dir = tmp_path / "run"
        rc = cli_main(
            [
                "train",
                "--scenario", "cloth_sport",
                "--scale", "0.3",
                "--epochs", "1",
                "--embedding-dim", "16",
                "--negatives", "10",
                "--seed", "0",
                "--checkpoint-dir", str(run_dir),
                "--checkpoint-every", "1",
            ]
        )
        assert rc == 0
        capsys.readouterr()

        requests = [
            {"domain": "a", "user": 0, "k": 5},
            {"domain": "b", "user": 3},
            {"domain": "a", "user": 2, "k": 3, "candidates": [9, 1, 9, 4]},
        ]
        request_file = tmp_path / "requests.jsonl"
        request_file.write_text("\n".join(json.dumps(r) for r in requests) + "\n")
        store_dir = tmp_path / "store"
        # --verify recomputes every answer against full-model rescoring and
        # raises on any divergence: the exactness assertion of this smoke.
        rc = cli_main(
            [
                "serve",
                "--checkpoint-dir", str(run_dir),
                "--requests", str(request_file),
                "--topk", "4",
                "--store-dir", str(store_dir),
                "--verify",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines() if line.strip()]
        assert len(responses) == len(requests)
        assert responses[0]["user"] == 0 and len(responses[0]["items"]) == 5
        assert len(responses[1]["items"]) == 4  # --topk default applied
        assert len(responses[2]["items"]) == 3
        for response in responses:
            assert set(response) >= {
                "domain", "user", "items", "scores", "cold_start",
                "generation", "params_version",
            }
            assert response["scores"] == sorted(response["scores"], reverse=True)
        # the store was persisted and round-trips
        assert RepresentationStore.load(store_dir).generation == 1
