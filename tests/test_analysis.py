"""Tests for the analysis utilities: t-SNE, alignment scores, efficiency."""

import numpy as np
import pytest

from repro.analysis import (
    head_tail_alignment,
    measure_efficiency,
    pairwise_squared_distances,
    stagewise_alignment,
    tsne,
    tsne_projection,
)


class TestPairwiseDistances:
    def test_matches_direct_computation(self, rng):
        points = rng.normal(size=(10, 4))
        distances = pairwise_squared_distances(points)
        direct = np.array(
            [[np.sum((a - b) ** 2) for b in points] for a in points]
        )
        assert np.allclose(distances, direct, atol=1e-8)

    def test_diagonal_zero_and_symmetry(self, rng):
        distances = pairwise_squared_distances(rng.normal(size=(8, 3)))
        assert np.allclose(np.diag(distances), 0.0)
        assert np.allclose(distances, distances.T)


class TestTSNE:
    def test_output_shape(self, rng):
        points = rng.normal(size=(30, 10))
        embedding = tsne(points, num_iterations=50, rng=rng)
        assert embedding.shape == (30, 2)
        assert np.all(np.isfinite(embedding))

    def test_separates_well_separated_clusters(self, rng):
        cluster_a = rng.normal(size=(20, 5))
        cluster_b = rng.normal(size=(20, 5)) + 25.0
        embedding = tsne(np.vstack([cluster_a, cluster_b]), num_iterations=200, rng=rng)
        centroid_a = embedding[:20].mean(axis=0)
        centroid_b = embedding[20:].mean(axis=0)
        within = np.mean(np.linalg.norm(embedding[:20] - centroid_a, axis=1))
        between = np.linalg.norm(centroid_a - centroid_b)
        assert between > within

    def test_too_few_samples(self, rng):
        with pytest.raises(ValueError):
            tsne(rng.normal(size=(3, 4)))

    def test_wrong_dimensionality(self, rng):
        with pytest.raises(ValueError):
            tsne(rng.normal(size=(10,)))


class TestAlignment:
    def test_identical_distributions_have_low_scores(self, rng):
        embeddings = rng.normal(size=(60, 8))
        scores = head_tail_alignment(
            embeddings,
            np.arange(30),
            np.arange(30, 60),
            stage="x",
        )
        assert scores.centroid_distance < 0.5
        assert scores.mmd < 0.1

    def test_shifted_distributions_have_higher_scores(self, rng):
        aligned = rng.normal(size=(60, 8))
        shifted = aligned.copy()
        shifted[30:] += 5.0
        low = head_tail_alignment(aligned, np.arange(30), np.arange(30, 60))
        high = head_tail_alignment(shifted, np.arange(30), np.arange(30, 60))
        assert high.centroid_distance > low.centroid_distance
        assert high.mmd > low.mmd

    def test_empty_group_rejected(self, rng):
        with pytest.raises(ValueError):
            head_tail_alignment(rng.normal(size=(10, 4)), np.arange(10), np.array([]))

    def test_stagewise_alignment_on_trained_model(self, trained_nmcdr):
        scores = stagewise_alignment(trained_nmcdr, "a", rng=np.random.default_rng(0))
        assert [score.stage for score in scores] == ["user_g1", "user_g3", "user_g4"]
        for score in scores:
            assert np.isfinite(score.mmd)
            assert np.isfinite(score.centroid_distance)

    def test_tsne_projection_output(self, trained_nmcdr):
        projection = tsne_projection(
            trained_nmcdr, "a", stage="user_g4", max_users=40, rng=np.random.default_rng(0)
        )
        assert projection["coordinates"].shape[1] == 2
        assert projection["coordinates"].shape[0] == projection["is_head"].shape[0]

    def test_tsne_projection_unknown_stage(self, trained_nmcdr):
        with pytest.raises(KeyError):
            tsne_projection(trained_nmcdr, "a", stage="user_g9")


class TestEfficiency:
    def test_measure_efficiency_fields(self, tiny_task):
        from repro.baselines import LRModel

        model = LRModel(tiny_task, embedding_dim=8)
        report = measure_efficiency(
            model,
            tiny_task,
            batch_size=64,
            num_train_batches=2,
            num_test_batches=2,
        )
        assert report.num_parameters == model.num_parameters()
        assert report.train_seconds_per_batch > 0
        assert report.test_seconds_per_batch > 0
        assert report.model_name == "LR"
        assert "parameters" in report.as_dict()

    def test_nmcdr_efficiency(self, tiny_task, tiny_nmcdr_config):
        from repro.core import NMCDR

        model = NMCDR(tiny_task, tiny_nmcdr_config)
        report = measure_efficiency(
            model,
            tiny_task,
            batch_size=64,
            num_train_batches=2,
            num_test_batches=2,
        )
        assert report.num_parameters > 0
        assert np.isfinite(report.train_seconds_per_batch)
