"""Tests for the optimisers, gradient clipping and LR schedulers."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, Adam, ExponentialLR, StepLR, clip_grad_norm
from repro.tensor import Tensor


def quadratic_loss(parameter):
    """Simple convex objective ||p - 3||^2 used to check convergence."""
    diff = parameter - Tensor(np.full(parameter.shape, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_single_step_matches_formula(self):
        parameter = Parameter(np.array([1.0]))
        parameter.grad = np.array([0.5])
        SGD([parameter], lr=0.1).step()
        assert parameter.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_momentum_accumulates(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = SGD([parameter], lr=1.0, momentum=0.9)
        parameter.grad = np.array([1.0])
        optimizer.step()
        first = parameter.data[0]
        parameter.grad = np.array([1.0])
        optimizer.step()
        # second step is larger because velocity accumulated
        assert (first - parameter.data[0]) > abs(first)

    def test_weight_decay(self):
        parameter = Parameter(np.array([2.0]))
        parameter.grad = np.array([0.0])
        SGD([parameter], lr=0.1, weight_decay=0.5).step()
        assert parameter.data[0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)

    def test_skips_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0]))
        SGD([parameter], lr=0.1).step()
        assert parameter.data[0] == 1.0

    def test_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(3))
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss = quadratic_loss(parameter)
            loss.backward()
            optimizer.step()
        assert np.allclose(parameter.data, 3.0, atol=1e-2)

    def test_invalid_arguments(self):
        parameter = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([parameter], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([parameter], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_faster_than_sgd_on_quadratic(self):
        parameter = Parameter(np.zeros(3))
        optimizer = Adam([parameter], lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(parameter).backward()
            optimizer.step()
        assert np.allclose(parameter.data, 3.0, atol=5e-2)

    def test_first_step_magnitude_close_to_lr(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = Adam([parameter], lr=0.01)
        parameter.grad = np.array([123.0])
        optimizer.step()
        # bias-corrected Adam's first update is ~lr regardless of gradient scale
        assert abs(parameter.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.2, 0.9))

    def test_zero_grad_clears_all(self):
        parameters = [Parameter(np.zeros(2)), Parameter(np.zeros(3))]
        for parameter in parameters:
            parameter.grad = np.ones_like(parameter.data)
        optimizer = Adam(parameters)
        optimizer.zero_grad()
        assert all(parameter.grad is None for parameter in parameters)


class TestGradClipping:
    def test_no_clip_below_threshold(self):
        parameter = Parameter(np.zeros(4))
        parameter.grad = np.full(4, 0.1)
        norm = clip_grad_norm([parameter], max_norm=10.0)
        assert norm == pytest.approx(0.2)
        assert np.allclose(parameter.grad, 0.1)

    def test_clips_to_max_norm(self):
        parameter = Parameter(np.zeros(4))
        parameter.grad = np.full(4, 10.0)
        clip_grad_norm([parameter], max_norm=1.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0, rel=1e-6)

    def test_handles_empty(self):
        assert clip_grad_norm([], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        parameter = Parameter(np.zeros(2))
        parameter.grad = np.ones(2)
        with pytest.raises(ValueError):
            clip_grad_norm([parameter], max_norm=0.0)


class TestSchedulers:
    def test_step_lr(self):
        parameter = Parameter(np.zeros(1))
        optimizer = Adam([parameter], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        parameter = Parameter(np.zeros(1))
        optimizer = SGD([parameter], lr=1.0)
        scheduler = ExponentialLR(optimizer, gamma=0.5)
        scheduler.step()
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.25)

    def test_step_lr_invalid(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)
