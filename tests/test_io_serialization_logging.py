"""Tests for dataset persistence, model checkpointing and logging utilities."""

import time

import numpy as np
import pytest

from repro.data import load_dataset, load_scenario, save_dataset
from repro.logging_utils import ExperimentLogger, Timer
from repro.nn import Checkpoint, Linear, MLP, load_module, save_module
from repro.tensor import Tensor


class TestDatasetIO:
    def test_roundtrip(self, tmp_path):
        dataset = load_scenario("phone_elec", scale=0.2, seed=4)
        path = save_dataset(dataset, tmp_path / "phone_elec")
        assert path.suffix == ".npz"
        restored = load_dataset(path)
        assert restored.name == dataset.name
        assert restored.domain_a.name == dataset.domain_a.name
        assert np.array_equal(restored.domain_a.users, dataset.domain_a.users)
        assert np.array_equal(restored.domain_b.items, dataset.domain_b.items)
        assert restored.num_overlapping == dataset.num_overlapping

    def test_load_without_extension(self, tmp_path):
        dataset = load_scenario("loan_fund", scale=0.15, seed=2)
        save_dataset(dataset, tmp_path / "loan_fund")
        restored = load_dataset(tmp_path / "loan_fund")
        assert restored.domain_a.num_interactions == dataset.domain_a.num_interactions

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope.npz")

    def test_roundtrip_preserves_statistics(self, tmp_path):
        dataset = load_scenario("cloth_sport", scale=0.2, seed=8)
        restored = load_dataset(save_dataset(dataset, tmp_path / "ds"))
        assert restored.domain_a.density == pytest.approx(dataset.domain_a.density)
        assert restored.domain_b.num_users == dataset.domain_b.num_users


class TestModuleSerialization:
    def test_roundtrip(self, tmp_path):
        source = MLP([4, 8, 1], rng=np.random.default_rng(0))
        target = MLP([4, 8, 1], rng=np.random.default_rng(1))
        path = save_module(source, tmp_path / "mlp", metadata={"epoch": 3})
        metadata = load_module(target, path)
        assert metadata["epoch"] == 3
        x = Tensor(np.random.default_rng(2).normal(size=(5, 4)))
        assert np.allclose(source(x).data, target(x).data)

    def test_strict_mismatch(self, tmp_path):
        source = Linear(3, 2)
        other = Linear(5, 2)
        path = save_module(source, tmp_path / "linear")
        with pytest.raises((KeyError, ValueError)):
            load_module(other, path)

    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_module(Linear(2, 2), tmp_path / "missing")

    def test_checkpoint_tracks_best(self, tmp_path):
        model = Linear(2, 2, rng=np.random.default_rng(0))
        checkpoint = Checkpoint(tmp_path / "best", higher_is_better=True)
        assert checkpoint.update(model, 0.5)
        best_weights = model.weight.data.copy()
        model.weight.data = model.weight.data + 1.0
        assert not checkpoint.update(model, 0.4)  # worse score: not saved
        assert checkpoint.update(model, 0.9)
        # restore the score-0.9 weights
        model.weight.data = np.zeros_like(model.weight.data)
        metadata = checkpoint.restore(model)
        assert metadata["score"] == pytest.approx(0.9)
        assert not np.allclose(model.weight.data, best_weights)

    def test_checkpoint_lower_is_better(self, tmp_path):
        model = Linear(2, 2)
        checkpoint = Checkpoint(tmp_path / "loss", higher_is_better=False)
        assert checkpoint.update(model, 1.0)
        assert not checkpoint.update(model, 2.0)
        assert checkpoint.update(model, 0.5)


class TestTimer:
    def test_accumulates_sections(self):
        timer = Timer()
        with timer.section("work"):
            time.sleep(0.01)
        with timer.section("work"):
            time.sleep(0.01)
        assert timer.count("work") == 2
        assert timer.total("work") >= 0.02
        assert timer.mean("work") >= 0.01
        assert "work" in timer.summary()

    def test_unknown_section_is_zero(self):
        timer = Timer()
        assert timer.total("missing") == 0.0
        assert timer.mean("missing") == 0.0

    def test_exception_still_recorded(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            with timer.section("boom"):
                raise RuntimeError("x")
        assert timer.count("boom") == 1


class TestExperimentLogger:
    def test_log_and_serialise(self, tmp_path):
        logger = ExperimentLogger("unit-test")
        logger.log("start", scenario="cloth_sport")
        logger.log_metrics("NMCDR", {"a": {"ndcg@10": 0.25}, "b": {"hr@10": 0.4}})
        payload = logger.to_json(tmp_path / "log.json")
        assert "unit-test" in payload
        assert (tmp_path / "log.json").exists()
        assert len(logger.records) == 2
        assert logger.records[1]["a/ndcg@10"] == pytest.approx(0.25)

    def test_verbose_prints(self, capsys):
        logger = ExperimentLogger("loud", verbose=True)
        logger.log("event", value=1)
        captured = capsys.readouterr()
        assert "loud" in captured.out and "event" in captured.out
