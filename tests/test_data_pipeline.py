"""DataPipeline tests: serial semantics, prefetch determinism, failure paths.

The prefetch worker's contracts are the interesting part: the batch stream
must be byte-identical to the serial pipeline under a fixed seed (the
deterministic rng handoff), mid-epoch producer exceptions must surface on the
consuming thread with their original traceback instead of hanging the queue,
and no worker thread may outlive the pipeline — whether training finished,
stopped early or blew up.
"""

import threading
import traceback

import numpy as np
import pytest

from repro.core import CDRTrainer, NMCDR, TrainerConfig
from repro.data.dataloader import InteractionDataLoader
from repro.data.pipeline import (
    PrefetchDataPipeline,
    SerialDataPipeline,
    build_pipeline,
)

WORKER_NAME = "repro-data-prefetch"


def make_loaders(task, batch_size=64, seed=9):
    rng = np.random.default_rng(seed)
    return {
        key: InteractionDataLoader(
            task.domain(key).split,
            batch_size=batch_size,
            rng=np.random.default_rng(rng.integers(0, 2**32 - 1)),
        )
        for key in ("a", "b")
    }


def collect_epochs(pipeline, num_epochs):
    epochs = []
    with pipeline:
        for epoch in range(num_epochs):
            epochs.append(list(pipeline.epoch(epoch)))
    return epochs


def assert_same_stream(left, right):
    assert len(left) == len(right)
    for steps_a, steps_b in zip(left, right):
        assert len(steps_a) == len(steps_b)
        for step_a, step_b in zip(steps_a, steps_b):
            assert step_a.keys() == step_b.keys()
            for key in step_a:
                np.testing.assert_array_equal(step_a[key].users, step_b[key].users)
                np.testing.assert_array_equal(step_a[key].items, step_b[key].items)
                np.testing.assert_array_equal(step_a[key].labels, step_b[key].labels)


def live_workers():
    return [t for t in threading.enumerate() if t.name == WORKER_NAME and t.is_alive()]


class TestSerialPipeline:
    def test_replicates_ziplongest_step_structure(self, tiny_task):
        loaders = make_loaders(tiny_task)
        lengths = {key: len(loader) for key, loader in loaders.items()}
        assert lengths["a"] != lengths["b"], "fixture should exercise unequal loaders"
        pipeline = SerialDataPipeline(loaders)
        steps = list(pipeline.epoch(0))
        assert len(steps) == max(lengths.values())
        # The trailing steps only carry the longer domain.
        longer = max(lengths, key=lengths.get)
        for step in steps[min(lengths.values()) :]:
            assert set(step) == {longer}
        assert pipeline.stats.steps == len(steps)
        assert pipeline.stats.prep_seconds > 0
        assert pipeline.stats.wait_seconds == pipeline.stats.prep_seconds

    def test_steps_per_epoch_upper_bound(self, tiny_task):
        loaders = make_loaders(tiny_task)
        pipeline = SerialDataPipeline(loaders)
        assert pipeline.steps_per_epoch == max(len(loader) for loader in loaders.values())


class TestPrefetchDeterminism:
    def test_prefetched_stream_identical_to_serial(self, tiny_task):
        serial = SerialDataPipeline(make_loaders(tiny_task))
        prefetched = PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=3, depth=1)
        assert_same_stream(collect_epochs(serial, 3), collect_epochs(prefetched, 3))

    def test_deeper_buffering_still_identical(self, tiny_task):
        serial = SerialDataPipeline(make_loaders(tiny_task))
        prefetched = PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=4, depth=3)
        assert_same_stream(collect_epochs(serial, 4), collect_epochs(prefetched, 4))

    def test_factory_selects_implementation(self, tiny_task):
        loaders = make_loaders(tiny_task)
        assert isinstance(build_pipeline(loaders, 2, 0), SerialDataPipeline)
        pipeline = build_pipeline(loaders, 2, 2)
        assert isinstance(pipeline, PrefetchDataPipeline)
        assert pipeline.depth == 2
        pipeline.close()
        with pytest.raises(ValueError):
            build_pipeline(loaders, 2, -1)


class TestPrefetchLifecycle:
    def test_worker_dead_after_full_consumption(self, tiny_task):
        pipeline = PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=2, depth=1)
        collect_epochs(pipeline, 2)
        assert not live_workers()

    def test_worker_dead_after_abandoned_epoch(self, tiny_task):
        pipeline = PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=5, depth=1)
        iterator = pipeline.epoch(0)
        next(iterator)  # consume a single step, then walk away mid-epoch
        pipeline.close()
        assert not live_workers()

    def test_close_is_idempotent(self, tiny_task):
        pipeline = PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=2, depth=1)
        next(pipeline.epoch(0))
        pipeline.close()
        pipeline.close()
        assert not live_workers()

    def test_close_before_start_and_after_exhaustion(self, tiny_task):
        never_started = PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=2)
        never_started.close()
        never_started.close()
        pipeline = PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=1, depth=1)
        collect_epochs(pipeline, 1)
        pipeline.close()
        pipeline.close()
        assert not live_workers()

    def test_abandoned_pipeline_releases_worker_on_gc(self, tiny_task):
        """The weakref finalizer stops the thread when close() never ran.

        This is the safety net for the sharded path: an executor crash
        mid-epoch unwinds the trainer without necessarily reaching close(),
        and the worker must not keep spinning against the full queue.
        """
        import gc
        import time as time_module

        pipeline = PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=8, depth=1)
        iterator = pipeline.epoch(0)
        next(iterator)
        assert live_workers()
        del iterator, pipeline
        gc.collect()
        deadline = time_module.monotonic() + 5.0
        while live_workers() and time_module.monotonic() < deadline:
            time_module.sleep(0.02)
        assert not live_workers()

    def test_prep_time_counts_only_consumed_epochs(self, tiny_task):
        """Lookahead prep for epochs an early stop never trains is excluded."""
        pipeline = PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=4, depth=3)
        with pipeline:
            list(pipeline.epoch(0))
            after_one = pipeline.stats.prep_seconds
            assert after_one > 0
            list(pipeline.epoch(1))
            assert pipeline.stats.prep_seconds > after_one
        # Worker very likely pre-built epochs 2-3 before close; their prep
        # must not have leaked into the stats.
        assert pipeline.stats.epochs_started == 2

    def test_closed_pipeline_fails_fast(self, tiny_task):
        pipeline = PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=3, depth=1)
        next(pipeline.epoch(0))
        pipeline.close()
        with pytest.raises(RuntimeError, match="closed"):
            next(pipeline.epoch(1))

    def test_epochs_must_be_consumed_in_order(self, tiny_task):
        pipeline = PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=3, depth=1)
        with pipeline:
            with pytest.raises(RuntimeError, match="in order"):
                next(pipeline.epoch(2))
        with pytest.raises(IndexError):
            next(PrefetchDataPipeline(make_loaders(tiny_task), num_epochs=1).epoch(5))


class ExplodingLoader:
    """Loader whose iteration fails mid-epoch, like a bad index would."""

    def __init__(self, loader, explode_at=1):
        self.loader = loader
        self.explode_at = explode_at

    def __len__(self):
        return len(self.loader)

    def __iter__(self):
        for index, batch in enumerate(self.loader):
            if index == self.explode_at:
                raise IndexError("training example user index out of range [0, 7)")
            yield batch


class TestExceptionPropagation:
    def test_worker_exception_reaches_consumer_with_traceback(self, tiny_task):
        loaders = make_loaders(tiny_task)
        loaders["a"] = ExplodingLoader(loaders["a"])
        pipeline = PrefetchDataPipeline(loaders, num_epochs=2, depth=1)
        with pytest.raises(IndexError, match="out of range") as excinfo:
            collect_epochs(pipeline, 2)
        # The original producer frame survives the thread handoff.
        frames = traceback.format_tb(excinfo.value.__traceback__)
        assert any("ExplodingLoader" in frame or "__iter__" in frame for frame in frames)
        assert not live_workers()

    def test_invalid_examples_surface_through_trainer_fit(self, tiny_task, tiny_nmcdr_config):
        """End to end: a poisoned split fails fast instead of hanging the queue."""
        model = NMCDR(tiny_task, tiny_nmcdr_config)
        trainer = CDRTrainer(
            model,
            tiny_task,
            TrainerConfig(num_epochs=2, batch_size=64, prefetch_epochs=1, eval_every=0),
        )
        trainer._loaders["b"] = ExplodingLoader(trainer._loaders["b"], explode_at=0)
        with pytest.raises(IndexError, match="out of range"):
            trainer.fit()
        assert not live_workers()


class TestTrainerThreadHygiene:
    def test_no_live_worker_after_fit_returns(self, tiny_task, tiny_nmcdr_config):
        model = NMCDR(tiny_task, tiny_nmcdr_config)
        trainer = CDRTrainer(
            model,
            tiny_task,
            TrainerConfig(num_epochs=2, batch_size=128, prefetch_epochs=1, eval_every=0),
        )
        history = trainer.fit()
        assert history.num_batches > 0
        assert not live_workers()

    def test_no_live_worker_after_fit_raises(self, tiny_task, tiny_nmcdr_config):
        model = NMCDR(tiny_task, tiny_nmcdr_config)
        trainer = CDRTrainer(
            model,
            tiny_task,
            TrainerConfig(num_epochs=3, batch_size=128, prefetch_epochs=1, eval_every=0),
        )

        def explode(batches):
            raise KeyboardInterrupt

        model.compute_batch_loss = explode
        with pytest.raises(KeyboardInterrupt):
            trainer.fit()
        assert not live_workers()
