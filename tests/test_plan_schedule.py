"""PlanSchedule and CSR-native extraction: structural equivalence and reuse.

The schedule's contract is *byte* equivalence: for the same sampler state and
batch sequence, the incremental builder must return plans whose every index
array matches :func:`build_subgraph_plan`'s, because the trainer-level
bit-exactness guarantee (scheduled == per-step == full-graph at exactness
depth) rides on it.  The extraction tests pin the CSR-native path — both its
dense (edge-mask) and sparse (row-gather) regimes — to the scipy reference.
"""

import numpy as np
import pytest

from repro.core import NMCDR, NMCDRConfig, build_task
from repro.core.subgraph_plan import build_subgraph_plan
from repro.data import load_scenario
from repro.data.dataloader import InteractionDataLoader
from repro.graph import InteractionGraph, SubgraphCache
from repro.graph.sampling import (
    induced_subgraph,
    induced_subgraph_scipy,
    sample_khop_nodes,
)


def small_task(scale=0.3, seed=13):
    return build_task(
        load_scenario("cloth_sport", scale=scale, seed=seed),
        head_threshold=7,
    )


def batch_stream(task, num_steps, batch_size=64):
    iterators = [
        iter(
            InteractionDataLoader(
                task.domain(key).split,
                batch_size=batch_size,
                rng=np.random.default_rng(index + 5),
            )
        )
        for index, key in enumerate(("a", "b"))
    ]
    steps = []
    for _ in range(num_steps):
        steps.append(
            {key: next(iterator, None) for key, iterator in zip(("a", "b"), iterators)}
        )
    return steps


def assert_plans_identical(left, right):
    for key in ("a", "b"):
        plan_a, plan_b = left.domain(key), right.domain(key)
        assert plan_a.active == plan_b.active
        if not plan_a.active:
            continue
        np.testing.assert_array_equal(
            plan_a.subgraph.user_ids,
            plan_b.subgraph.user_ids,
        )
        np.testing.assert_array_equal(
            plan_a.subgraph.item_ids,
            plan_b.subgraph.item_ids,
        )
        assert plan_a.subgraph.graph.num_edges == plan_b.subgraph.graph.num_edges
        np.testing.assert_array_equal(
            plan_a.subgraph.graph.user_indices, plan_b.subgraph.graph.user_indices
        )
        np.testing.assert_array_equal(plan_a.batch_users, plan_b.batch_users)
        np.testing.assert_array_equal(plan_a.batch_items, plan_b.batch_items)
        np.testing.assert_array_equal(plan_a.overlap_own, plan_b.overlap_own)
        np.testing.assert_array_equal(plan_a.overlap_other, plan_b.overlap_other)
        for (
            head_a,
            tail_a,
        ), (head_b, tail_b) in zip(plan_a.intra_pools, plan_b.intra_pools):
            np.testing.assert_array_equal(head_a, head_b)
            np.testing.assert_array_equal(tail_a, tail_b)
        for pool_a, pool_b in zip(plan_a.inter_pools, plan_b.inter_pools):
            np.testing.assert_array_equal(pool_a, pool_b)


class TestScheduleEquivalence:
    @pytest.mark.parametrize(
        "config_kwargs",
        [
            {},
            {"max_matching_neighbors": None},
            {"num_matching_layers": 2},
            {"gnn_kernel": "gcn"},
            {"use_inter_matching": False},
        ],
    )
    def test_plans_byte_identical_to_per_step(self, config_kwargs):
        task = small_task()
        config = NMCDRConfig(embedding_dim=16, seed=3, **config_kwargs)
        per_step = NMCDR(task, config)
        scheduled = NMCDR(task, config)
        per_step.configure_subgraph_sampling(True)
        scheduled.configure_subgraph_sampling(True, scheduled=True)
        for batches in batch_stream(task, 5):
            reference = build_subgraph_plan(
                task,
                config,
                batches,
                per_step._sampler,
                per_step._subgraph_settings,
                per_step._subgraph_caches,
            )
            incremental = scheduled.plan_schedule.plan_for(batches)
            assert_plans_identical(reference, incremental)

    def test_fanout_mode_plans_identical_too(self):
        task = small_task()
        config = NMCDRConfig(embedding_dim=16, seed=3)
        per_step = NMCDR(task, config)
        scheduled = NMCDR(task, config)
        per_step.configure_subgraph_sampling(True, num_hops=1, fanout=4)
        scheduled.configure_subgraph_sampling(
            True,
            num_hops=1,
            fanout=4,
            scheduled=True,
        )
        for batches in batch_stream(task, 4):
            reference = build_subgraph_plan(
                task,
                config,
                batches,
                per_step._sampler,
                per_step._subgraph_settings,
                per_step._subgraph_caches,
            )
            incremental = scheduled.plan_schedule.plan_for(batches)
            assert_plans_identical(reference, incremental)

    def test_fanout_mode_delta_expands_instead_of_falling_back(self):
        """With signature-stable per-node reservoirs, capped expansion
        distributes over seed unions, so stable pools delta-expand under a
        fanout cap instead of triggering the historical full-expansion
        fallback — and the plans stay byte-identical to per-step building."""
        task = small_task()
        config = NMCDRConfig(embedding_dim=16, seed=3, max_matching_neighbors=None)
        per_step = NMCDR(task, config)
        scheduled = NMCDR(task, config)
        per_step.configure_subgraph_sampling(True, num_hops=1, fanout=4)
        scheduled.configure_subgraph_sampling(
            True,
            num_hops=1,
            fanout=4,
            scheduled=True,
        )
        for batches in batch_stream(task, 4):
            reference = build_subgraph_plan(
                task,
                config,
                batches,
                per_step._sampler,
                per_step._subgraph_settings,
                per_step._subgraph_caches,
            )
            incremental = scheduled.plan_schedule.plan_for(batches)
            assert_plans_identical(reference, incremental)
        stats = scheduled.plan_schedule.stats
        assert stats.delta_expansions == 3  # steps after the first reuse
        assert stats.full_expansions == 1

    def test_none_batch_domain_matches_per_step(self):
        """A ``None`` batch follows per-step semantics exactly (the partner
        closure may still activate the other domain)."""
        task = small_task()
        config = NMCDRConfig(embedding_dim=16, seed=3, use_inter_matching=False,
                             use_intra_matching=False)
        per_step = NMCDR(task, config)
        scheduled = NMCDR(task, config)
        per_step.configure_subgraph_sampling(True)
        scheduled.configure_subgraph_sampling(True, scheduled=True)
        (batches,) = batch_stream(task, 1)
        step = {"a": batches["a"], "b": None}
        reference = build_subgraph_plan(
            task,
            config,
            step,
            per_step._sampler,
            per_step._subgraph_settings,
            per_step._subgraph_caches,
        )
        incremental = scheduled.plan_schedule.plan_for(step)
        assert incremental.domain("a").active
        assert_plans_identical(reference, incremental)


class TestScheduleReuse:
    def test_deterministic_pools_take_delta_path(self):
        task = small_task()
        config = NMCDRConfig(embedding_dim=16, seed=3, max_matching_neighbors=None)
        model = NMCDR(task, config)
        model.configure_subgraph_sampling(True, scheduled=True)
        schedule = model.plan_schedule
        for batches in batch_stream(task, 4):
            schedule.plan_for(batches)
        assert schedule.stats.plans_built == 4
        # The first step builds the static closure; every later one reuses it
        # and expands only the batch delta.
        assert schedule.stats.static_closure_reuses == 3
        assert schedule.stats.delta_expansions >= 2
        assert schedule.stats.full_expansions <= 2

    def test_random_pools_fall_back_to_full_expansion(self):
        task = small_task()
        config = NMCDRConfig(embedding_dim=16, seed=3, max_matching_neighbors=8)
        model = NMCDR(task, config)
        model.configure_subgraph_sampling(True, scheduled=True)
        schedule = model.plan_schedule
        for batches in batch_stream(task, 3):
            schedule.plan_for(batches)
        assert schedule.stats.full_expansions == 3
        assert schedule.stats.delta_expansions == 0

    def test_epoch_hook_counts_epochs(self):
        task = small_task()
        model = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3))
        model.configure_subgraph_sampling(True, scheduled=True)
        model.on_epoch_start(0)
        model.on_epoch_start(1)
        assert model.plan_schedule.stats.epochs == 2
        # Models without a schedule ignore the hook.
        plain = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3))
        plain.on_epoch_start(0)


class TestNodeKeyedCache:
    def test_get_by_nodes_shares_entry_for_equal_sets(self):
        graph = InteractionGraph(6, 5, [0, 1, 2, 3], [0, 1, 2, 3])
        cache = SubgraphCache()
        users = np.array([0, 1, 2], dtype=np.int64)
        items = np.array([0, 1], dtype=np.int64)
        first = cache.get_by_nodes(graph, users, items, num_hops=1)
        second = cache.get_by_nodes(graph, users.copy(), items.copy(), num_hops=1)
        assert first is second
        assert cache.node_hits == 1

    def test_identity_fast_path(self):
        graph = InteractionGraph(6, 5, [0, 1, 2, 3], [0, 1, 2, 3])
        cache = SubgraphCache()
        users = np.array([0, 1], dtype=np.int64)
        items = np.array([0], dtype=np.int64)
        first = cache.get_by_nodes(graph, users, items, num_hops=1)
        again = cache.get_by_nodes(graph, users, items, num_hops=1)
        assert first is again

    def test_seed_path_reuses_node_entry(self):
        """Different seeds expanding to the same nodes share one subgraph."""
        graph = InteractionGraph(4, 3, [0, 0, 1], [0, 1, 1])
        cache = SubgraphCache()
        wide = cache.get(graph, [0, 1], [], num_hops=1)
        # Seeding from the items reaches the same node set one hop out.
        alt = cache.get(graph, [], [0, 1], num_hops=1)
        assert wide is alt
        assert cache.misses == 2 and cache.node_hits == 1


class TestCSRNativeExtraction:
    @pytest.mark.parametrize("num_seeds", [2, 10, 40])
    def test_matches_scipy_reference(self, num_seeds, rng):
        users = rng.integers(0, 50, size=400)
        items = rng.integers(0, 40, size=400)
        graph = InteractionGraph(50, 40, users, items)
        seed_users = np.unique(rng.integers(0, 50, size=num_seeds))
        node_users, node_items = sample_khop_nodes(graph, seed_users, [], num_hops=2)
        fast = induced_subgraph(graph, node_users, node_items)
        reference = induced_subgraph_scipy(graph, node_users, node_items)
        assert fast.graph.num_edges == reference.graph.num_edges
        np.testing.assert_array_equal(
            fast.graph.user_indices,
            reference.graph.user_indices,
        )
        np.testing.assert_array_equal(
            fast.graph.item_indices,
            reference.graph.item_indices,
        )
        # The propagation operators agree too (same CSR content).
        np.testing.assert_allclose(
            fast.graph.user_aggregation_matrix().toarray(),
            reference.graph.user_aggregation_matrix().toarray(),
        )

    def test_sparse_regime_uses_row_gather(self, rng):
        """Tiny subgraph of a big graph: the gather path, still exact."""
        users = rng.integers(0, 400, size=3000)
        items = rng.integers(0, 300, size=3000)
        graph = InteractionGraph(400, 300, users, items)
        node_users = np.arange(3, dtype=np.int64)
        node_items = np.unique(
            np.concatenate([graph.user_neighbors(int(u)) for u in node_users])
        )
        fast = induced_subgraph(graph, node_users, node_items)
        reference = induced_subgraph_scipy(graph, node_users, node_items)
        assert fast.graph.num_edges == reference.graph.num_edges
        np.testing.assert_array_equal(
            fast.graph.item_indices,
            reference.graph.item_indices,
        )

    def test_isolated_seed_padding_preserved(self):
        graph = InteractionGraph(5, 4, [0, 0, 1, 2, 3], [0, 1, 1, 2, 3])
        subgraph = induced_subgraph(graph, np.array([4]), np.array([], dtype=np.int64))
        assert subgraph.graph.num_users == 1
        assert subgraph.graph.num_items == 1  # dummy all-zero column
        assert subgraph.graph.num_edges == 0

    def test_from_csr_validates_structure(self):
        with pytest.raises(ValueError, match="indptr"):
            InteractionGraph.from_csr(2, 2, np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError, match="item index"):
            InteractionGraph.from_csr(
                1, 2, np.array([0, 1]), np.array([5])
            )
        graph = InteractionGraph.from_csr(
            2, 3, np.array([0, 2, 3]), np.array([0, 2, 1])
        )
        assert graph.num_edges == 3
        assert graph.user_neighbors(0).tolist() == [0, 2]
