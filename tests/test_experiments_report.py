"""Tests for the bench-report aggregation module."""

from pathlib import Path

import pytest

from repro.experiments.report import (
    REPORT_ORDER,
    build_markdown_report,
    collect_reports,
    write_markdown_report,
)


@pytest.fixture()
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "table1_statistics.txt").write_text("users items ratings\n")
    (directory / "table9_ablation.txt").write_text("full beats variants\n")
    (directory / "custom_extra.txt").write_text("extra experiment\n")
    return directory


class TestCollect:
    def test_collect_reads_all_files(self, results_dir):
        reports = collect_reports(results_dir)
        assert set(reports) == {"table1_statistics", "table9_ablation", "custom_extra"}
        assert reports["table1_statistics"].startswith("users")

    def test_missing_directory_returns_empty(self, tmp_path):
        assert collect_reports(tmp_path / "does_not_exist") == {}


class TestMarkdown:
    def test_sections_in_paper_order(self, results_dir):
        markdown = build_markdown_report(results_dir)
        table1_position = markdown.index("Table I — dataset statistics")
        table9_position = markdown.index("Table IX — component ablation")
        assert table1_position < table9_position
        # unknown reports are appended at the end
        assert markdown.index("custom_extra") > table9_position
        assert "```" in markdown

    def test_empty_results_message(self, tmp_path):
        markdown = build_markdown_report(tmp_path / "empty")
        assert "No bench reports found" in markdown

    def test_write_markdown_report(self, results_dir, tmp_path):
        output = write_markdown_report(
            results_dir,
            tmp_path / "report.md",
            title="Demo",
        )
        assert output.exists()
        content = output.read_text()
        assert content.startswith("# Demo")

    def test_report_order_covers_all_benches(self):
        names = {name for name, _ in REPORT_ORDER}
        bench_dir = Path(__file__).parent.parent / "benchmarks"
        bench_files = {
            path.stem.replace("test_bench_", "") for path in bench_dir.glob("test_bench_*.py")
        }
        # every bench writes a report whose stem appears in REPORT_ORDER
        assert bench_files <= names
