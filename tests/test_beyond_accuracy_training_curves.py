"""Tests for the beyond-accuracy metrics and training-curve analysis."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_history,
    convergence_epoch,
    moving_average,
    relative_improvement,
)
from repro.core.trainer import TrainingHistory
from repro.metrics import (
    average_popularity_lift,
    beyond_accuracy_report,
    catalog_coverage,
    gini_concentration,
    intra_list_overlap,
    top_k_from_scores,
)


class TestTopK:
    def test_selects_highest_scoring_candidates(self):
        scores = np.array([[0.1, 0.9, 0.5], [0.7, 0.2, 0.3]])
        candidates = np.array([[10, 11, 12], [20, 21, 22]])
        top = top_k_from_scores(scores, candidates, k=2)
        assert top[0].tolist() == [11, 12]
        assert top[1].tolist() == [20, 22]

    def test_validation(self):
        scores = np.ones((2, 3))
        candidates = np.ones((2, 3), dtype=int)
        with pytest.raises(ValueError):
            top_k_from_scores(scores, candidates, k=0)
        with pytest.raises(ValueError):
            top_k_from_scores(scores, candidates, k=4)
        with pytest.raises(ValueError):
            top_k_from_scores(scores, np.ones((3, 3), dtype=int), k=1)


class TestCoverageAndConcentration:
    def test_full_coverage(self):
        recommendations = np.array([[0, 1], [2, 3]])
        assert catalog_coverage(recommendations, num_items=4) == 1.0

    def test_partial_coverage(self):
        recommendations = np.array([[0, 0], [0, 1]])
        assert catalog_coverage(recommendations, num_items=4) == pytest.approx(0.5)

    def test_gini_extremes(self):
        concentrated = np.zeros((10, 5), dtype=int)  # always item 0
        assert gini_concentration(concentrated, num_items=50) > 0.9
        even = np.arange(50).reshape(10, 5)
        assert gini_concentration(even, num_items=50) == pytest.approx(0.0, abs=1e-9)

    def test_gini_monotonicity(self):
        even = np.arange(20).reshape(4, 5)
        skewed = np.zeros((4, 5), dtype=int)
        skewed[0] = np.arange(5)
        assert gini_concentration(skewed, 20) > gini_concentration(even, 20)

    def test_validation(self):
        with pytest.raises(ValueError):
            catalog_coverage(np.array([[0]]), num_items=0)
        with pytest.raises(ValueError):
            gini_concentration(np.array([[0]]), num_items=0)


class TestPopularityAndOverlap:
    def test_popularity_lift(self):
        popularity = np.array([100.0, 1.0, 1.0, 1.0])
        popular_recs = np.zeros((5, 2), dtype=int)
        niche_recs = np.full((5, 2), 3, dtype=int)
        assert average_popularity_lift(popular_recs, popularity) > 1.0
        assert average_popularity_lift(niche_recs, popularity) < 1.0

    def test_intra_list_overlap_bounds(self):
        identical = np.tile(np.arange(5), (10, 1))
        disjoint = np.arange(50).reshape(10, 5)
        assert intra_list_overlap(identical) == pytest.approx(1.0)
        assert intra_list_overlap(disjoint) == pytest.approx(0.0)
        assert intra_list_overlap(identical[:1]) == 0.0

    def test_report_keys(self):
        recommendations = np.array([[0, 1], [1, 2]])
        report = beyond_accuracy_report(
            recommendations,
            num_items=5,
            item_popularity=np.ones(5),
        )
        assert {"catalog_coverage", "gini_concentration", "intra_list_overlap", "popularity_lift"} == set(
            report
        )

    def test_report_on_real_model(self, trained_nmcdr, tiny_task):
        from repro.metrics import RankingEvaluator

        evaluator = RankingEvaluator(
            tiny_task.domain_a.split, "a", num_negatives=20, rng=np.random.default_rng(0)
        )
        scores = evaluator.score_matrix(trained_nmcdr)
        top = top_k_from_scores(scores, evaluator.candidates, k=5)
        report = beyond_accuracy_report(top, num_items=tiny_task.domain_a.num_items)
        assert 0.0 < report["catalog_coverage"] <= 1.0
        assert 0.0 <= report["gini_concentration"] <= 1.0


class TestTrainingCurves:
    def test_moving_average(self):
        smoothed = moving_average([4.0, 2.0, 0.0], window=2)
        assert smoothed == [4.0, 3.0, 1.0]
        with pytest.raises(ValueError):
            moving_average([1.0], window=0)

    def test_convergence_epoch(self):
        losses = [10.0, 5.0, 4.9, 4.89, 4.888]
        assert convergence_epoch(losses, tolerance=0.05) == 2
        assert convergence_epoch([5.0, 4.0, 3.0], tolerance=0.0001) == 2
        with pytest.raises(ValueError):
            convergence_epoch([])

    def test_relative_improvement(self):
        assert relative_improvement([2.0, 1.0]) == pytest.approx(0.5)
        assert relative_improvement([0.0, 0.0]) == 0.0

    def test_analyze_history(self):
        history = TrainingHistory(
            epoch_losses=[3.0, 2.0, 1.5],
            train_seconds_per_batch=0.01,
        )
        report = analyze_history(history, tolerance=0.1)
        assert report.num_epochs == 3
        assert report.initial_loss == 3.0
        assert report.final_loss == 1.5
        assert report.total_relative_improvement == pytest.approx(0.5)
        assert "convergence_epoch" in report.as_dict()

    def test_analyze_empty_history(self):
        with pytest.raises(ValueError):
            analyze_history(TrainingHistory())

    def test_analyze_real_training_run(self, tiny_task, tiny_nmcdr_config):
        from repro.core import CDRTrainer, NMCDR, TrainerConfig

        model = NMCDR(tiny_task, tiny_nmcdr_config)
        history = CDRTrainer(
            model, tiny_task, TrainerConfig(num_epochs=3, num_eval_negatives=10)
        ).fit()
        report = analyze_history(history)
        assert report.total_relative_improvement > 0
        assert 0 <= report.convergence_epoch < report.num_epochs
