"""Shared fixtures for the test suite.

The heavier fixtures (a small synthetic scenario, its task bundle and a
briefly trained NMCDR model) are session-scoped so the many tests that need
them do not pay the setup cost repeatedly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CDRTrainer, NMCDR, NMCDRConfig, TrainerConfig, build_task
from repro.data import load_scenario, preprocess_scenario


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small preprocessed Cloth–Sport style scenario."""
    dataset = load_scenario("cloth_sport", scale=0.3, seed=3)
    return preprocess_scenario(dataset, min_interactions=3)


@pytest.fixture(scope="session")
def tiny_task(tiny_dataset):
    """Task bundle (splits, graphs, overlap) built from the tiny dataset."""
    return build_task(tiny_dataset, head_threshold=5)


@pytest.fixture(scope="session")
def tiny_nmcdr_config():
    return NMCDRConfig(
        embedding_dim=16,
        max_matching_neighbors=32,
        head_threshold=5,
        seed=0,
    )


@pytest.fixture(scope="session")
def trained_nmcdr(tiny_task, tiny_nmcdr_config):
    """An NMCDR model trained for a couple of epochs on the tiny task."""
    model = NMCDR(tiny_task, tiny_nmcdr_config)
    trainer = CDRTrainer(
        model,
        tiny_task,
        TrainerConfig(num_epochs=2, batch_size=256, num_eval_negatives=30, seed=0),
    )
    trainer.fit()
    model.prepare_for_evaluation()
    return model


@pytest.fixture()
def rng():
    """Fresh deterministic generator for individual tests."""
    return np.random.default_rng(12345)
