"""Tests for leave-one-out splitting, negative sampling and the data loader."""

import numpy as np
import pytest

from repro.data import (
    DomainData,
    InteractionDataLoader,
    NegativeSampler,
    build_ranking_candidates,
    build_training_examples,
    leave_one_out_split,
)


def make_domain(num_users=5, num_items=20, interactions_per_user=6, seed=0):
    rng = np.random.default_rng(seed)
    users, items, times = [], [], []
    for user in range(num_users):
        chosen = rng.choice(num_items, size=interactions_per_user, replace=False)
        users.extend([user] * interactions_per_user)
        items.extend(chosen.tolist())
        times.extend(np.arange(interactions_per_user).tolist())
    return DomainData(
        name="toy",
        num_users=num_users,
        num_items=num_items,
        users=np.array(users),
        items=np.array(items),
        timestamps=np.array(times, dtype=float),
        global_user_ids=np.arange(num_users),
    )


class TestLeaveOneOut:
    def test_counts(self):
        domain = make_domain()
        split = leave_one_out_split(domain)
        assert split.num_eval_users == 5
        assert split.valid_users.shape == (5,)
        assert split.num_train == domain.num_interactions - 2 * 5

    def test_test_item_is_most_recent(self):
        domain = make_domain(num_users=1, interactions_per_user=4)
        split = leave_one_out_split(domain)
        # timestamps are 0..3, so the test item is the one with timestamp 3
        latest_item = domain.items[np.argmax(domain.timestamps)]
        assert split.test_items[0] == latest_item

    def test_no_leakage_between_splits(self):
        domain = make_domain()
        split = leave_one_out_split(domain)
        for user, test_item in zip(split.test_users, split.test_items):
            train_items_of_user = split.train_items[split.train_users == user]
            assert test_item not in train_items_of_user

    def test_users_with_too_few_interactions_are_train_only(self):
        domain = DomainData(
            name="toy",
            num_users=2,
            num_items=5,
            users=np.array([0, 0, 0, 1, 1]),
            items=np.array([0, 1, 2, 3, 4]),
            timestamps=np.arange(5, dtype=float),
            global_user_ids=np.arange(2),
        )
        split = leave_one_out_split(domain, min_eval_interactions=3)
        assert 1 not in split.test_users
        assert np.sum(split.train_users == 1) == 2

    def test_train_domain_view(self):
        domain = make_domain()
        split = leave_one_out_split(domain)
        train_view = split.train_domain()
        assert train_view.num_interactions == split.num_train
        assert train_view.num_users == domain.num_users


class TestNegativeSampler:
    def test_negatives_not_interacted(self):
        domain = make_domain()
        sampler = NegativeSampler(domain, rng=np.random.default_rng(0))
        for user in range(domain.num_users):
            negatives = sampler.sample_for_user(user, 5)
            assert len(set(negatives.tolist()) & sampler.interacted(user)) == 0
            assert negatives.size == 5
            assert len(set(negatives.tolist())) == 5

    def test_small_catalogue_returns_all_unseen(self):
        domain = DomainData(
            name="toy",
            num_users=1,
            num_items=4,
            users=np.array([0, 0]),
            items=np.array([0, 1]),
            timestamps=np.arange(2, dtype=float),
            global_user_ids=np.arange(1),
        )
        sampler = NegativeSampler(domain)
        negatives = sampler.sample_for_user(0, 10)
        assert set(negatives.tolist()) == {2, 3}

    def test_errors(self):
        domain = DomainData(
            name="toy",
            num_users=1,
            num_items=2,
            users=np.array([0, 0]),
            items=np.array([0, 1]),
            timestamps=np.arange(2, dtype=float),
            global_user_ids=np.arange(1),
        )
        sampler = NegativeSampler(domain)
        with pytest.raises(ValueError):
            sampler.sample_for_user(0, 1)

    def test_sample_pairs_shape(self):
        domain = make_domain()
        sampler = NegativeSampler(domain, rng=np.random.default_rng(0))
        out = sampler.sample_pairs(np.array([0, 1, 2]), negatives_per_positive=2)
        assert out.shape == (3, 2)


class TestVectorizedNegativeSampler:
    """Distribution / determinism coverage of the rejection sampler and its
    exact fallback (near-saturated users)."""

    def _assert_valid(self, sampler, users, out):
        for user, row in zip(users, out):
            assert len(set(row.tolist()) & sampler.interacted(int(user))) == 0
            assert len(set(row.tolist())) == row.size

    def test_vectorized_rows_are_unseen_and_distinct(self):
        domain = make_domain(num_users=8, num_items=30, interactions_per_user=6)
        sampler = NegativeSampler(domain, rng=np.random.default_rng(1))
        users = np.repeat(np.arange(8), 5)
        out = sampler.sample_pairs(users, negatives_per_positive=3, vectorized=True)
        assert out.shape == (40, 3)
        self._assert_valid(sampler, users, out)
        # rows come back sorted, matching the legacy per-user convention
        assert np.all(out[:, 1:] > out[:, :-1])

    def test_exact_fallback_rows_are_unseen_and_distinct(self):
        # 16 of 20 items seen -> far past the saturation threshold.
        domain = make_domain(
            num_users=3,
            num_items=20,
            interactions_per_user=16,
            seed=2,
        )
        sampler = NegativeSampler(domain, rng=np.random.default_rng(3))
        users = np.repeat(np.arange(3), 20)
        out = sampler.sample_pairs(users, negatives_per_positive=2, vectorized=True)
        self._assert_valid(sampler, users, out)

    def test_both_paths_are_deterministic_under_a_seed(self):
        for interactions in (6, 16):
            domain = make_domain(
                num_users=4,
                num_items=20,
                interactions_per_user=interactions,
            )
            users = np.repeat(np.arange(4), 8)
            draws = [
                NegativeSampler(domain, rng=np.random.default_rng(7)).sample_pairs(
                    users, negatives_per_positive=2, vectorized=True
                )
                for _ in range(2)
            ]
            assert np.array_equal(draws[0], draws[1])

    def test_vectorized_distribution_is_uniform_over_unseen(self):
        domain = make_domain(num_users=2, num_items=25, interactions_per_user=5, seed=4)
        sampler = NegativeSampler(domain, rng=np.random.default_rng(5))
        users = np.zeros(4000, dtype=np.int64)
        out = sampler.sample_pairs(users, negatives_per_positive=1, vectorized=True)
        counts = np.bincount(out.ravel(), minlength=domain.num_items)
        unseen = np.setdiff1d(
            np.arange(domain.num_items),
            sorted(sampler.interacted(0)),
        )
        assert counts[list(sampler.interacted(0))].sum() == 0
        expected = len(users) / unseen.size
        assert np.all(np.abs(counts[unseen] - expected) < 5 * np.sqrt(expected))

    def test_fallback_distribution_is_uniform_over_unseen(self):
        domain = make_domain(
            num_users=1,
            num_items=20,
            interactions_per_user=15,
            seed=6,
        )
        sampler = NegativeSampler(domain, rng=np.random.default_rng(8))
        users = np.zeros(3000, dtype=np.int64)
        out = sampler.sample_pairs(users, negatives_per_positive=1, vectorized=True)
        counts = np.bincount(out.ravel(), minlength=domain.num_items)
        unseen = np.setdiff1d(
            np.arange(domain.num_items),
            sorted(sampler.interacted(0)),
        )
        assert counts[list(sampler.interacted(0))].sum() == 0
        expected = len(users) / unseen.size
        assert np.all(np.abs(counts[unseen] - expected) < 5 * np.sqrt(expected))

    def test_legacy_path_still_matches_per_user_draws(self):
        domain = make_domain()
        users = np.array([0, 1, 2, 3])
        legacy = NegativeSampler(domain, rng=np.random.default_rng(9)).sample_pairs(
            users, negatives_per_positive=2, vectorized=False
        )
        reference = NegativeSampler(domain, rng=np.random.default_rng(9))
        expected = np.stack([reference.sample_for_user(int(u), 2) for u in users])
        assert np.array_equal(legacy, expected)

    def test_saturated_user_raises(self):
        domain = DomainData(
            name="toy",
            num_users=1,
            num_items=2,
            users=np.array([0, 0]),
            items=np.array([0, 1]),
            timestamps=np.arange(2, dtype=float),
            global_user_ids=np.arange(1),
        )
        sampler = NegativeSampler(domain)
        with pytest.raises(ValueError):
            sampler.sample_pairs(
                np.array([0]),
                negatives_per_positive=1,
                vectorized=True,
            )


class TestRankingCandidates:
    def test_shapes_and_positive_first(self):
        domain = make_domain(num_items=40)
        split = leave_one_out_split(domain)
        users, candidates = build_ranking_candidates(
            split,
            num_negatives=10,
            rng=np.random.default_rng(0),
        )
        assert candidates.shape == (split.num_eval_users, 11)
        assert np.array_equal(candidates[:, 0], split.test_items)

    def test_negatives_exclude_all_interactions(self):
        domain = make_domain(num_items=40)
        split = leave_one_out_split(domain)
        users, candidates = build_ranking_candidates(
            split,
            num_negatives=10,
            rng=np.random.default_rng(0),
        )
        sampler = NegativeSampler(domain)
        for user, row in zip(users, candidates):
            assert len(set(row[1:].tolist()) & sampler.interacted(int(user))) == 0

    def test_clamps_to_available_items(self):
        domain = make_domain(num_items=10, interactions_per_user=6)
        split = leave_one_out_split(domain)
        _, candidates = build_ranking_candidates(split, num_negatives=199)
        assert candidates.shape[1] <= 10

    def test_valid_subset(self):
        domain = make_domain()
        split = leave_one_out_split(domain)
        users, candidates = build_ranking_candidates(
            split,
            num_negatives=5,
            subset="valid",
        )
        assert np.array_equal(candidates[:, 0], split.valid_items)
        with pytest.raises(ValueError):
            build_ranking_candidates(split, subset="train")


class TestDataLoader:
    def test_training_examples_balance(self):
        domain = make_domain()
        split = leave_one_out_split(domain)
        users, items, labels = build_training_examples(split, negatives_per_positive=1)
        assert labels.mean() == pytest.approx(0.5)
        assert users.shape == items.shape == labels.shape

    def test_loader_covers_all_examples(self):
        domain = make_domain()
        split = leave_one_out_split(domain)
        loader = InteractionDataLoader(
            split,
            batch_size=7,
            rng=np.random.default_rng(0),
        )
        total = sum(len(batch) for batch in loader)
        assert total == split.num_train * 2
        assert len(loader) == int(np.ceil(total / 7))

    def test_labels_are_binary(self):
        domain = make_domain()
        split = leave_one_out_split(domain)
        loader = InteractionDataLoader(
            split,
            batch_size=16,
            rng=np.random.default_rng(0),
        )
        for batch in loader:
            assert set(np.unique(batch.labels)).issubset({0.0, 1.0})

    def test_invalid_arguments(self):
        domain = make_domain()
        split = leave_one_out_split(domain)
        with pytest.raises(ValueError):
            InteractionDataLoader(split, batch_size=0)
        with pytest.raises(ValueError):
            InteractionDataLoader(split, negatives_per_positive=0)

    def test_negative_resampling_changes_between_epochs(self):
        domain = make_domain()
        split = leave_one_out_split(domain)
        loader = InteractionDataLoader(
            split,
            batch_size=1000,
            rng=np.random.default_rng(0),
        )
        first = np.sort(np.concatenate([batch.items for batch in loader]))
        second = np.sort(np.concatenate([batch.items for batch in loader]))
        assert not np.array_equal(first, second)
