"""Tests for the experiment harness (runner, sweeps, ablation, online A/B, reporting)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentSettings,
    OnlineDomainSpec,
    build_online_world,
    format_comparison_table,
    format_key_values,
    format_metric_rows,
    format_overlap_table,
    paper_reference,
    prepare_dataset,
    run_ablation,
    run_head_threshold_sweep,
    run_matching_neighbors_sweep,
    run_online_ab,
    run_overlap_sweep,
    run_scenario,
)

FAST = ExperimentSettings(
    scenario="cloth_sport",
    scale=0.25,
    num_epochs=2,
    num_eval_negatives=20,
    embedding_dim=8,
    batch_size=256,
)


class TestRunner:
    def test_prepare_dataset_applies_manipulations(self):
        settings = ExperimentSettings(
            scenario="cloth_sport", scale=0.25, overlap_ratio=0.1, density_ratio=0.8
        )
        dataset = prepare_dataset(settings)
        full = prepare_dataset(ExperimentSettings(scenario="cloth_sport", scale=0.25))
        assert dataset.num_overlapping < full.num_overlapping
        assert dataset.domain_a.num_interactions <= full.domain_a.num_interactions

    def test_run_scenario_results_structure(self):
        result = run_scenario(FAST, ["LR", "NMCDR"])
        assert set(result.results) == {"LR", "NMCDR"}
        for model_result in result.results.values():
            assert 0.0 <= model_result.metric("a", "hr@10") <= 1.0
            assert model_result.num_parameters > 0
            assert model_result.wall_clock_seconds > 0
        assert result.best_model("a") in {"LR", "NMCDR"}
        improvement = result.improvement_over_best_baseline("a")
        assert np.isfinite(improvement) or improvement == float("inf")

    def test_improvement_requires_nmcdr(self):
        result = run_scenario(FAST, ["LR"])
        with pytest.raises(KeyError):
            result.improvement_over_best_baseline("a")

    def test_settings_validation_passthrough(self):
        config = FAST.trainer_config()
        assert config.num_epochs == FAST.num_epochs
        nmcdr_config = FAST.nmcdr_config()
        assert nmcdr_config.embedding_dim == FAST.embedding_dim


class TestSweeps:
    def test_overlap_sweep_structure(self):
        sweep = run_overlap_sweep(
            "cloth_sport",
            model_names=("LR", "NMCDR"),
            overlap_ratios=(0.1, 0.9),
            settings=FAST,
        )
        assert len(sweep.per_ratio) == 2
        series = sweep.series("NMCDR", "a")
        assert len(series) == 2
        assert 0.0 <= sweep.nmcdr_win_fraction("a") <= 1.0
        table = sweep.format_table("a")
        assert "NMCDR" in table and "Ku=" in table

    def test_ablation_structure(self):
        ablation = run_ablation(
            "cloth_sport",
            overlap_ratio=0.5,
            settings=FAST,
            model_names=("NMCDR/w/o-Cgm", "NMCDR"),
        )
        assert np.isfinite(ablation.variant_metric("NMCDR", "a"))
        contributions = ablation.component_contributions("a")
        assert "NMCDR/w/o-Cgm" in contributions
        assert "w/o-Cgm" in ablation.format_table(
            "a",
        ) or "NMCDR" in ablation.format_table("a")

    def test_hyperparameter_sweeps(self):
        sweep = run_matching_neighbors_sweep(
            "cloth_sport", neighbor_counts=(4, 16), settings=FAST
        )
        assert len(sweep.average_series()) == 2
        assert sweep.best_value() in (4.0, 16.0)
        assert 0.0 <= sweep.relative_spread() <= 1.0
        threshold_sweep = run_head_threshold_sweep(
            "cloth_sport", thresholds=(3, 9), settings=FAST
        )
        assert "head_threshold" in threshold_sweep.format_table()


class TestOnlineAB:
    def test_world_generation(self):
        world = build_online_world(
            (
                OnlineDomainSpec("Loan", 80, 25, base_cvr=0.10),
                OnlineDomainSpec("Fund", 60, 20, base_cvr=0.06),
            ),
            seed=3,
        )
        assert set(world.domains) == {"Loan", "Fund"}
        probability = world.conversion_probability("Loan", 0, 0)
        assert 0.0 <= probability <= 0.95
        assert world.item_popularity("Fund").shape == (20,)

    def test_run_online_ab_structure(self):
        result = run_online_ab(
            groups=("Control", "NMCDR"),
            domain_specs=(
                OnlineDomainSpec("Loan", 60, 20, base_cvr=0.10),
                OnlineDomainSpec("Fund", 50, 18, base_cvr=0.06),
            ),
            impressions_per_domain=100,
            num_epochs=1,
            embedding_dim=8,
            seed=5,
        )
        assert set(result.cvr) == {"Control", "NMCDR"}
        for group_cvr in result.cvr.values():
            for value in group_cvr.values():
                assert 0.0 <= value <= 1.0
        table = result.format_table()
        assert "Control" in table and "paper" in table.lower()


class TestReportingAndReference:
    def test_paper_reference_rows(self):
        row = paper_reference.nmcdr_reference_row("cloth_sport", "Cloth")
        assert len(row) == len(paper_reference.OVERLAP_RATIOS)
        improvement = paper_reference.improvement_reference_row("phone_elec", "Phone")
        assert improvement[0][0] == pytest.approx(37.93)
        with pytest.raises(KeyError):
            paper_reference.nmcdr_reference_row("books", "Books")

    def test_reference_tables_presence(self):
        assert "Music" in paper_reference.TABLE9_ABLATION
        assert "NMCDR" in paper_reference.TABLE8_ONLINE_AB
        assert "NMCDR" in paper_reference.EFFICIENCY_REFERENCE
        assert set(paper_reference.FIGURE_TRENDS) == {"fig3", "fig4", "fig5"}

    def test_format_metric_rows(self):
        table = format_metric_rows({"LR": {"ndcg@10": 0.1, "hr@10": 0.2}}, title="demo")
        assert "LR" in table and "demo" in table

    def test_format_overlap_table(self):
        table = format_overlap_table(
            "cloth_sport",
            "Cloth",
            (0.1, 0.5),
            {"NMCDR": [(8.0, 16.0), (9.0, 18.0)]},
            paper_nmcdr=[(8.4, 16.6), (9.3, 18.3)],
        )
        assert "paper NMCDR" in table

    def test_format_comparison_and_key_values(self):
        comparison = format_comparison_table(
            "eff",
            {"params": 0.5},
            {"params": 0.4},
            unit="M",
        )
        assert "params" in comparison
        block = format_key_values("summary", {"a": 1.0, "b": 2})
        assert "summary" in block and "a" in block
