"""Fixed-seed numeric parity of the optimised hot path.

The loss trajectory below was recorded from the seed implementation (before
any fused kernels, operator caching or batched loss paths existed) with the
exact run replayed here.  The optimised engine must reproduce it to 1e-8 in
float64 mode — the fusions are required to be numerically equivalent, not
merely approximately right.
"""

import numpy as np

from repro.core import NMCDR, NMCDRConfig, build_task
from repro.data import load_scenario
from repro.data.dataloader import InteractionDataLoader
from repro.optim import Adam
from repro.tensor import engine

#: Loss values of the first six fixed-seed training steps of the seed code.
SEED_LOSSES = [
    6.924278787436002,
    6.951567350250666,
    6.9396251222923775,
    6.925903037781144,
    6.967300833513108,
    6.973174028664451,
]


def run_smoke_losses(num_steps: int = 6, sampled_subgraphs: bool = False):
    """Replay the recorded training run and return the per-step losses.

    ``vectorized_negatives=False`` pins the loaders to the legacy per-user
    negative-sampling loop: the recorded losses were produced against its rng
    stream, and this suite checks *engine* parity, not sampler equality.
    """
    scenario = load_scenario("cloth_sport", scale=0.3, seed=13)
    task = build_task(scenario, head_threshold=7)
    model = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3))
    if sampled_subgraphs:
        model.configure_subgraph_sampling(True)
    optimizer = Adam(model.parameters(), lr=1e-3)
    loaders = {
        key: InteractionDataLoader(
            task.domain(key).split,
            batch_size=128,
            rng=np.random.default_rng(100 + i),
            vectorized_negatives=False,
        )
        for i, key in enumerate(("a", "b"))
    }
    iterator_a, iterator_b = iter(loaders["a"]), iter(loaders["b"])
    losses = []
    for _ in range(num_steps):
        batch_a, batch_b = next(iterator_a, None), next(iterator_b, None)
        optimizer.zero_grad()
        loss = model.compute_batch_loss({"a": batch_a, "b": batch_b})
        loss.backward()
        optimizer.step()
        model.invalidate_cache()
        losses.append(loss.item())
    return losses


def test_float64_losses_match_seed_run():
    assert engine.get_dtype() == np.dtype(np.float64)
    losses = run_smoke_losses()
    assert np.allclose(losses, SEED_LOSSES, atol=1e-8, rtol=0.0), (
        f"float64 smoke run diverged from the seed implementation: {losses}"
    )


def test_sampled_subgraph_losses_match_seed_run():
    """Sampled-subgraph training at full coverage replays the exact seed run."""
    losses = run_smoke_losses(sampled_subgraphs=True)
    assert np.allclose(losses, SEED_LOSSES, atol=1e-8, rtol=0.0), (
        f"sampled-subgraph smoke run diverged from the seed implementation: {losses}"
    )


def test_float32_mode_runs_and_stays_close():
    """The float32 fast path trains the same model to ~1e-3 of float64."""
    with engine.engine_dtype("float32"):
        losses = run_smoke_losses()
    assert all(np.isfinite(losses))
    assert np.allclose(losses, SEED_LOSSES, atol=5e-3), (
        f"float32 smoke run drifted too far from float64: {losses}"
    )


def test_float32_paper_table_metrics_within_tolerance():
    """The float32 fast path reproduces the paper-table ranking metrics.

    This is the safety assertion behind running the efficiency benches on the
    float32 engine: training *and* scoring a model entirely in float32 must
    leave every ranking metric within 1e-4 of the float64 reference (the
    parity suite itself stays float64).
    """
    from repro.core import CDRTrainer, TrainerConfig

    scenario = load_scenario("cloth_sport", scale=0.3, seed=13)
    task = build_task(scenario, head_threshold=7)

    def train_and_evaluate(dtype):
        with engine.engine_dtype(dtype):
            model = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3))
            trainer = CDRTrainer(
                model, task, TrainerConfig(num_epochs=3, batch_size=128, seed=11)
            )
            trainer.fit()
            return trainer.evaluate("test")

    reference = train_and_evaluate("float64")
    fast = train_and_evaluate("float32")
    for key, metrics in reference.items():
        for name, value in metrics.items():
            assert abs(value - fast[key][name]) <= 1e-4, (
                f"float32 {key}/{name} drifted: {fast[key][name]} vs {value}"
            )


def test_float32_tensors_use_float32_storage():
    with engine.engine_dtype("float32"):
        from repro.tensor import Tensor

        tensor = Tensor([1.0, 2.0], requires_grad=True)
        (tensor * tensor).sum().backward()
        assert tensor.data.dtype == np.float32
        assert tensor.grad.dtype == np.float32
    assert engine.get_dtype() == np.dtype(np.float64)
