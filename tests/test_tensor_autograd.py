"""Tests of the Tensor class and the reverse-mode autograd machinery."""

import numpy as np
import pytest

from repro.tensor import Tensor, as_tensor, is_grad_enabled, no_grad, ops


def numerical_gradient(function, value, eps=1e-6):
    """Central-difference gradient of a scalar function of one array."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    iterator = np.nditer(value, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        plus = value.copy()
        plus[index] += eps
        minus = value.copy()
        minus[index] -= eps
        grad[index] = (function(plus) - function(minus)) / (2 * eps)
        iterator.iternext()
    return grad


class TestTensorBasics:
    def test_construction_from_list(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.ndim == 2
        assert tensor.size == 4
        assert not tensor.requires_grad

    def test_as_tensor_passthrough(self):
        tensor = Tensor([1.0, 2.0])
        assert as_tensor(tensor) is tensor
        converted = as_tensor([1.0, 2.0])
        assert isinstance(converted, Tensor)

    def test_item_and_numpy(self):
        scalar = Tensor(3.5)
        assert scalar.item() == pytest.approx(3.5)
        array = Tensor([1.0, 2.0])
        assert np.array_equal(array.numpy(), np.array([1.0, 2.0]))

    def test_detach_and_copy(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        detached = tensor.detach()
        assert not detached.requires_grad
        copied = tensor.copy()
        copied.data[0] = 99.0
        assert tensor.data[0] == 1.0

    def test_len_and_repr(self):
        tensor = Tensor([[1.0], [2.0], [3.0]], requires_grad=True)
        assert len(tensor) == 3
        assert "requires_grad=True" in repr(tensor)

    def test_transpose_property(self):
        tensor = Tensor(np.arange(6.0).reshape(2, 3))
        assert tensor.T.shape == (3, 2)


class TestBackward:
    def test_backward_requires_scalar(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        out = tensor * 2.0
        with pytest.raises(ValueError):
            out.backward()

    def test_backward_on_non_grad_tensor_raises(self):
        tensor = Tensor([1.0, 2.0])
        out = tensor.sum()
        with pytest.raises(RuntimeError):
            out.backward()

    def test_simple_chain(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        loss = (x * x).sum()
        loss.backward()
        assert np.allclose(x.grad, 2.0 * x.data)

    def test_gradient_accumulates_across_backward_calls(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x.sum()).backward()
        (x.sum()).backward()
        assert np.allclose(x.grad, [2.0, 2.0])

    def test_zero_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x.sum()).backward()
        x.zero_grad()
        assert x.grad is None

    def test_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0
        loss = (y * y).sum()
        loss.backward()
        # d/dx (3x)^2 = 18x = 36
        assert np.allclose(x.grad, [36.0])

    def test_explicit_gradient(self):
        x = Tensor([[1.0, 2.0]], requires_grad=True)
        y = x * 2.0
        y.backward(np.array([[1.0, 10.0]]))
        assert np.allclose(x.grad, [[2.0, 20.0]])

    def test_diamond_graph(self):
        x = Tensor([1.5], requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        loss = (a * b).sum()
        loss.backward()
        # d/dx (6 x^2) = 12x
        assert np.allclose(x.grad, [18.0])


class TestNoGrad:
    def test_no_grad_disables_history(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert is_grad_enabled()
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_restores_state_after_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()


class TestNumericalGradients:
    def test_matmul_chain(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))

        def f_a(value):
            return float((Tensor(value) @ Tensor(b)).sum().data)

        def f_b(value):
            return float((Tensor(a) @ Tensor(value)).sum().data)

        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        assert np.allclose(ta.grad, numerical_gradient(f_a, a), atol=1e-5)
        assert np.allclose(tb.grad, numerical_gradient(f_b, b), atol=1e-5)

    def test_composite_activation_chain(self, rng):
        x = rng.normal(size=(4, 3))

        def f(value):
            tensor = Tensor(value)
            out = ops.sigmoid(ops.tanh(tensor) + ops.relu(tensor) * 0.5)
            return float(out.sum().data)

        tensor = Tensor(x, requires_grad=True)
        out = ops.sigmoid(ops.tanh(tensor) + ops.relu(tensor) * 0.5)
        out.sum().backward()
        assert np.allclose(tensor.grad, numerical_gradient(f, x), atol=1e-5)

    def test_broadcast_add_gradient(self, rng):
        x = rng.normal(size=(5, 3))
        bias = rng.normal(size=(3,))

        def f(value):
            return float((Tensor(x) + Tensor(value)).sum().data)

        tensor_bias = Tensor(bias, requires_grad=True)
        (Tensor(x) + tensor_bias).sum().backward()
        assert np.allclose(tensor_bias.grad, numerical_gradient(f, bias), atol=1e-6)

    def test_division_gradient(self, rng):
        a = rng.normal(size=(3, 3)) + 3.0
        b = rng.normal(size=(3, 3)) + 3.0
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta / tb).sum().backward()

        def f_a(value):
            return float((Tensor(value) / Tensor(b)).sum().data)

        def f_b(value):
            return float((Tensor(a) / Tensor(value)).sum().data)

        assert np.allclose(ta.grad, numerical_gradient(f_a, a), atol=1e-5)
        assert np.allclose(tb.grad, numerical_gradient(f_b, b), atol=1e-5)
