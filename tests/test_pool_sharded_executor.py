"""Pool-sharded execution: exchange partitioning, equivalence, lifecycle.

The headline guarantees gated here:

* **Fixed-seed equivalence vs the replicated executor** — under the float64
  default engine dtype, pool-sharded training matches the replicated
  :class:`~repro.core.ShardedStepExecutor` at the PR-4 tolerances:
  validation metrics bit-identical, epoch losses at float64 ulp level (the
  activation exchange re-associates the encoder gradient sum across the
  boundary), and runs are bit-reproducible.
* **Plan structure** — the pool exchange partitions the pool closure
  disjointly, owned slices plus micro-batch closures seed the per-shard
  subgraphs, and the incremental :class:`~repro.core.PoolShardedPlanner`
  produces byte-identical plans to the direct builder (fanout included —
  the per-node reservoir makes capped expansion union-decomposable).
* **Edge cases** — empty owned slices, pool users inside another shard's
  micro-batch, more shards than pool users, and table-only domains all
  train correctly.
* **Liveness** — a worker that dies or hangs *during the gather round*
  fails the step with a RuntimeError instead of hanging the parent.
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.core import (
    CDRTrainer,
    NMCDR,
    NMCDRConfig,
    PoolShardedStepExecutor,
    StepExecutor,
    TrainerConfig,
    build_pool_exchange,
    build_pool_sharded_plan,
    build_task,
)
from repro.core.plan_schedule import PoolShardedPlanner
from repro.core.subgraph_plan import sample_matching_pools
from repro.data import load_scenario
from repro.data.dataloader import InteractionDataLoader
from repro.data.shard import domain_shard_salt, shard_assignments, split_joint_batch
from repro.graph import MatchingNeighborSampler
from repro.optim import Adam


def shard_children():
    return [
        process
        for process in multiprocessing.active_children()
        if process.name.startswith("repro-shard")
    ]


@pytest.fixture(scope="module")
def task():
    return build_task(
        load_scenario("cloth_sport", scale=0.3, seed=13),
        head_threshold=7,
    )


def build_nmcdr(task, seed=3, **config_overrides):
    return NMCDR(task, NMCDRConfig(embedding_dim=16, seed=seed, **config_overrides))


def fit_history(task, model=None, **config_overrides):
    config = TrainerConfig(
        num_epochs=2,
        batch_size=128,
        seed=11,
        eval_every=1,
        num_eval_negatives=20,
        **config_overrides,
    )
    trainer = CDRTrainer(
        model if model is not None else build_nmcdr(task),
        task,
        config,
    )
    return trainer.fit()


def draw_pools(task, config, seed=7):
    sampler = MatchingNeighborSampler(
        config.max_matching_neighbors, rng=np.random.default_rng(seed)
    )
    return sample_matching_pools(task, config, sampler)


def one_joint_batch(task, batch_size=64, seed=5):
    batches = {}
    for index, key in enumerate(("a", "b")):
        loader = InteractionDataLoader(
            task.domain(key).split,
            batch_size=batch_size,
            rng=np.random.default_rng(seed + index),
        )
        batches[key] = next(iter(loader))
    return batches


# ----------------------------------------------------------------------
# exchange partitioning and plan structure
# ----------------------------------------------------------------------
class TestPoolExchange:
    def test_partition_is_disjoint_salted_modulo_cover(self, task):
        config = NMCDRConfig(embedding_dim=16, seed=3)
        intra, inter = draw_pools(task, config)
        exchange = build_pool_exchange(task, intra, inter, n_shards=3)
        for key in ("a", "b"):
            users = exchange.users[key]
            assert users.size > 0
            # Owner-grouped layout: no duplicates, rows sorted by owning
            # shard so each shard's owned rows form one contiguous slice.
            unique = np.unique(users)
            assert unique.size == users.size
            np.testing.assert_array_equal(
                exchange.owners[key],
                shard_assignments(users, 3, salt=domain_shard_salt(key)),
            )
            assert (np.diff(exchange.owners[key]) >= 0).all()
            slices = [exchange.owned_users(key, shard) for shard in range(3)]
            np.testing.assert_array_equal(np.concatenate(slices), users)
            positions = np.concatenate(
                [exchange.owned_positions(key, s) for s in range(3)]
            )
            np.testing.assert_array_equal(positions, np.arange(users.size))
            for shard in range(3):
                start, stop = exchange.owned_range(key, shard)
                np.testing.assert_array_equal(
                    exchange.owned_positions(key, shard), np.arange(start, stop)
                )

    def test_exchange_covers_pools_and_their_partners(self, task):
        config = NMCDRConfig(embedding_dim=16, seed=3)
        intra, inter = draw_pools(task, config)
        exchange = build_pool_exchange(task, intra, inter, n_shards=2)
        for key in ("a", "b"):
            other = task.other_key(key)
            pool_users = np.concatenate(
                [part for head, tail in intra[key] for part in (head, tail)]
                + list(inter[other])
            )
            assert np.isin(pool_users, exchange.users[key]).all()
            # Overlapped pool users' partners are in the other exchange set.
            partners = task.partner_lookup(key)[exchange.users[key]]
            partners = partners[partners >= 0]
            assert np.isin(partners, exchange.users[other]).all()

    def test_pool_users_land_in_other_shards_micro_batches(self, task):
        """The Amdahl-floor scenario: shard s's batch references pool users
        owned elsewhere — exactly what the activation exchange serves."""
        config = NMCDRConfig(embedding_dim=16, seed=3)
        intra, inter = draw_pools(task, config)
        exchange = build_pool_exchange(task, intra, inter, n_shards=2)
        split = split_joint_batch(one_joint_batch(task, batch_size=128), 2)
        crossings = 0
        for shard in range(2):
            batch = split.micro_batches[shard].get("a")
            if batch is None:
                continue
            in_exchange = np.isin(batch.users, exchange.users["a"])
            owners = shard_assignments(batch.users, 2, salt=domain_shard_salt("a"))
            # A batch user IS owned by its shard under the shared salt map,
            # so every pool read of these users from the *other* shard goes
            # through the exchanged activation table.
            crossings += int(np.count_nonzero(in_exchange))
            assert np.all(owners == shard)
        assert crossings > 0

    def test_plan_indices_address_the_combined_row_space(self, task):
        config = NMCDRConfig(embedding_dim=16, seed=3)
        intra, inter = draw_pools(task, config)
        exchange = build_pool_exchange(task, intra, inter, n_shards=2)
        batches = one_joint_batch(task)
        model = build_nmcdr(task)
        model.configure_subgraph_sampling(True)
        for shard in range(2):
            plan = build_pool_sharded_plan(
                task,
                config,
                batches,
                intra,
                inter,
                exchange,
                shard,
                model._subgraph_settings,
                model._subgraph_caches,
            )
            assert plan.pool_sharded
            for key in ("a", "b"):
                domain = plan.domain(key)
                other = plan.domain(task.other_key(key))
                combined = domain.local_rows + domain.exchange_size
                other_combined = other.local_rows + other.exchange_size
                assert domain.exchange_size == exchange.size(key)
                # Pool references resolve to appended table rows.
                for head, tail in domain.intra_pools:
                    for pool in (head, tail):
                        assert np.all(pool >= domain.local_rows)
                        assert np.all(pool < combined)
                for pool in domain.inter_pools:
                    assert np.all(pool >= other.local_rows)
                    assert np.all(pool < other_combined)
                assert np.all(domain.overlap_own < combined)
                assert np.all(domain.overlap_other < other_combined)
                # Owned rows map exchange-table positions to local seeds.
                owned_users = exchange.owned_users(key, shard)
                assert domain.owned_local.size == owned_users.size
                np.testing.assert_array_equal(
                    domain.subgraph.user_ids[domain.owned_local], owned_users
                )
                np.testing.assert_array_equal(
                    exchange.users[key][domain.owned_positions], owned_users
                )
                # Batch rows stay within the local subgraph prefix.
                assert np.all(domain.batch_users < domain.local_rows)

    def test_empty_owned_slice_yields_batch_only_subgraph(self, task):
        config = NMCDRConfig(embedding_dim=16, seed=3, max_matching_neighbors=1)
        intra, inter = draw_pools(task, config)
        exchange = build_pool_exchange(task, intra, inter, n_shards=16)
        empty = [
            (key, shard)
            for key in ("a", "b")
            for shard in range(16)
            if exchange.owned_users(key, shard).size == 0
        ]
        assert empty, "16 shards over <=6 pool users must leave empty slices"
        key, shard = empty[0]
        model = build_nmcdr(task)
        model.configure_subgraph_sampling(True)
        plan = build_pool_sharded_plan(
            task,
            config,
            one_joint_batch(task),
            intra,
            inter,
            exchange,
            shard,
            model._subgraph_settings,
            model._subgraph_caches,
        )
        domain = plan.domain(key)
        assert domain.owned_local.size == 0
        assert domain.exchange_size == exchange.size(key)
        assert domain.active  # the micro-batch closure still seeds a subgraph


class TestIncrementalPlanner:
    def assert_pool_plans_identical(self, left, right):
        assert left.pool_sharded and right.pool_sharded
        for key in ("a", "b"):
            plan_a, plan_b = left.domain(key), right.domain(key)
            assert plan_a.active == plan_b.active
            assert plan_a.exchange_size == plan_b.exchange_size
            np.testing.assert_array_equal(plan_a.owned_local, plan_b.owned_local)
            np.testing.assert_array_equal(
                plan_a.owned_positions,
                plan_b.owned_positions,
            )
            np.testing.assert_array_equal(plan_a.overlap_own, plan_b.overlap_own)
            np.testing.assert_array_equal(plan_a.overlap_other, plan_b.overlap_other)
            for (head_a, tail_a), (head_b, tail_b) in zip(
                plan_a.intra_pools, plan_b.intra_pools
            ):
                np.testing.assert_array_equal(head_a, head_b)
                np.testing.assert_array_equal(tail_a, tail_b)
            for pool_a, pool_b in zip(plan_a.inter_pools, plan_b.inter_pools):
                np.testing.assert_array_equal(pool_a, pool_b)
            if not plan_a.active:
                continue
            np.testing.assert_array_equal(
                plan_a.subgraph.user_ids, plan_b.subgraph.user_ids
            )
            np.testing.assert_array_equal(
                plan_a.subgraph.item_ids, plan_b.subgraph.item_ids
            )
            np.testing.assert_array_equal(
                plan_a.subgraph.graph.user_indices, plan_b.subgraph.graph.user_indices
            )
            np.testing.assert_array_equal(plan_a.batch_users, plan_b.batch_users)
            np.testing.assert_array_equal(plan_a.batch_items, plan_b.batch_items)

    @pytest.mark.parametrize(
        "config_kwargs,sampling_kwargs",
        [
            ({}, {}),
            ({"max_matching_neighbors": None}, {}),
            ({"num_matching_layers": 2}, {}),
            ({}, {"num_hops": 1, "fanout": 4}),
            ({"max_matching_neighbors": None}, {"num_hops": 1, "fanout": 4}),
        ],
    )
    def test_planner_plans_byte_identical_to_direct_builder(
        self, task, config_kwargs, sampling_kwargs
    ):
        config = NMCDRConfig(embedding_dim=16, seed=3, **config_kwargs)
        direct_model = build_nmcdr(task, **config_kwargs)
        planner_model = build_nmcdr(task, **config_kwargs)
        direct_model.configure_subgraph_sampling(True, **sampling_kwargs)
        planner_model.configure_subgraph_sampling(True, **sampling_kwargs)
        planner = PoolShardedPlanner(
            task,
            config,
            planner_model._subgraph_settings,
            planner_model._subgraph_caches,
            shard_index=1,
        )
        sampler = MatchingNeighborSampler(
            config.max_matching_neighbors, rng=np.random.default_rng(7)
        )
        for step in range(4):
            intra, inter = sample_matching_pools(task, config, sampler)
            exchange = build_pool_exchange(task, intra, inter, n_shards=2)
            batches = one_joint_batch(task, seed=20 + step)
            direct = build_pool_sharded_plan(
                task,
                config,
                batches,
                intra,
                inter,
                exchange,
                1,
                direct_model._subgraph_settings,
                direct_model._subgraph_caches,
            )
            incremental = planner.plan_for(batches, intra, inter, exchange)
            self.assert_pool_plans_identical(direct, incremental)
        assert planner.stats.delta_expansions == 4

    def test_static_expansion_reused_under_deterministic_pools(self, task):
        config = NMCDRConfig(embedding_dim=16, seed=3, max_matching_neighbors=None)
        model = build_nmcdr(task, max_matching_neighbors=None)
        model.configure_subgraph_sampling(True)
        planner = PoolShardedPlanner(
            task, config, model._subgraph_settings, model._subgraph_caches, shard_index=0
        )
        sampler = MatchingNeighborSampler(None)
        for step in range(3):
            intra, inter = sample_matching_pools(task, config, sampler)
            exchange = build_pool_exchange(task, intra, inter, n_shards=2)
            planner.plan_for(
                one_joint_batch(task, seed=30 + step),
                intra,
                inter,
                exchange,
            )
        assert planner.stats.static_closure_reuses == 2


# ----------------------------------------------------------------------
# fixed-seed equivalence gates (float64)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestPoolShardedEquivalence:
    """The PR-4 equivalence-gate pattern extended to the pool exchange."""

    def test_single_shard_matches_serial_stream(self, task):
        serial = fit_history(task)
        pooled = fit_history(
            task, executor="sharded", n_shards=1, pool_sharding=True
        )
        assert serial.validation_metrics == pooled.validation_metrics
        np.testing.assert_allclose(
            serial.epoch_losses, pooled.epoch_losses, rtol=1e-11, atol=0.0
        )

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_matches_replicated_executor_at_ulp_level(self, task, n_shards):
        replicated = fit_history(task, executor="sharded", n_shards=n_shards)
        pooled = fit_history(
            task, executor="sharded", n_shards=n_shards, pool_sharding=True
        )
        # Metrics bit-identical; losses at float64 ulp level (the activation
        # exchange re-associates the encoder gradient sum).
        assert replicated.validation_metrics == pooled.validation_metrics
        np.testing.assert_allclose(
            replicated.epoch_losses, pooled.epoch_losses, rtol=1e-11, atol=0.0
        )

    def test_matches_sampled_serial_stream(self, task):
        serial = fit_history(task, sampled_subgraph_training=True)
        pooled = fit_history(
            task,
            executor="sharded",
            n_shards=4,
            pool_sharding=True,
            sampled_subgraph_training=True,
        )
        assert serial.validation_metrics == pooled.validation_metrics
        np.testing.assert_allclose(
            serial.epoch_losses, pooled.epoch_losses, rtol=1e-11, atol=0.0
        )

    def test_runs_are_bit_reproducible(self, task):
        first = fit_history(task, executor="sharded", n_shards=4, pool_sharding=True)
        second = fit_history(task, executor="sharded", n_shards=4, pool_sharding=True)
        assert first.epoch_losses == second.epoch_losses
        assert first.validation_metrics == second.validation_metrics

    def test_tiny_pools_with_many_shards_match_replicated(self, task):
        """n_shards above the pool size: most shards own nothing."""
        replicated = fit_history(
            task,
            model=build_nmcdr(task, max_matching_neighbors=1),
            executor="sharded",
            n_shards=8,
        )
        pooled = fit_history(
            task,
            model=build_nmcdr(task, max_matching_neighbors=1),
            executor="sharded",
            n_shards=8,
            pool_sharding=True,
        )
        assert replicated.validation_metrics == pooled.validation_metrics
        np.testing.assert_allclose(
            replicated.epoch_losses, pooled.epoch_losses, rtol=1e-11, atol=0.0
        )

    def test_pool_free_models_fall_back_to_replicated_protocol(self, task):
        from repro.baselines import build_model

        replicated = fit_history(
            task,
            model=build_model("GA-DTCDR", task, embedding_dim=16, seed=3),
            executor="sharded",
            n_shards=2,
        )
        pooled = fit_history(
            task,
            model=build_model("GA-DTCDR", task, embedding_dim=16, seed=3),
            executor="sharded",
            n_shards=2,
            pool_sharding=True,
        )
        assert replicated.epoch_losses == pooled.epoch_losses
        assert replicated.validation_metrics == pooled.validation_metrics

    def test_prefetched_pipeline_composes_with_pool_sharding(self, task):
        plain = fit_history(task, executor="sharded", n_shards=2, pool_sharding=True)
        prefetched = fit_history(
            task,
            executor="sharded",
            n_shards=2,
            pool_sharding=True,
            prefetch_epochs=1,
        )
        assert plain.epoch_losses == prefetched.epoch_losses
        assert plain.validation_metrics == prefetched.validation_metrics


# ----------------------------------------------------------------------
# per-step edge cases through the real executor
# ----------------------------------------------------------------------
class TestPoolShardedStepEdgeCases:
    def paired_executors(self, task, n_shards, **config_overrides):
        executors = []
        for kind in ("serial", "pool"):
            model = build_nmcdr(task, **config_overrides)
            optimizer = Adam(model.parameters(), lr=1e-3)
            if kind == "serial":
                executors.append(StepExecutor(model, optimizer, grad_clip_norm=5.0))
            else:
                executors.append(
                    PoolShardedStepExecutor(
                        model, optimizer, grad_clip_norm=5.0, n_shards=n_shards
                    )
                )
        return executors

    def test_more_shards_than_batch_users_matches_serial(self, task):
        serial, pooled = self.paired_executors(task, n_shards=4)
        try:
            batches = one_joint_batch(task, batch_size=6)
            serial_loss = serial.run_step(batches)
            pooled_loss = pooled.run_step(batches)
            assert pooled_loss == pytest.approx(serial_loss, rel=1e-12)
        finally:
            pooled.close()

    def test_single_domain_step_preserves_grad_sparsity(self, task):
        serial, pooled = self.paired_executors(task, n_shards=2)
        try:
            loader = InteractionDataLoader(
                task.domain("a").split, batch_size=64, rng=np.random.default_rng(5)
            )
            batches = {"a": next(iter(loader))}
            serial_loss = serial.run_step(batches)
            pooled_loss = pooled.run_step(batches)
            assert pooled_loss == pytest.approx(serial_loss, rel=1e-12)
            serial_none = [p.grad is None for p in serial.optimizer.parameters]
            pooled_none = [p.grad is None for p in pooled.optimizer.parameters]
            assert serial_none == pooled_none
            assert any(serial_none)
            for serial_p, pooled_p in zip(
                serial.optimizer.parameters, pooled.optimizer.parameters
            ):
                if serial_p.grad is not None:
                    np.testing.assert_allclose(
                        serial_p.grad, pooled_p.grad, rtol=1e-9, atol=1e-12
                    )
        finally:
            pooled.close()

    def test_empty_micro_batch_shard_still_contributes_encoder_grads(self, task):
        """A shard with no batch rows but an owned pool slice must encode it
        and receive its activation gradients through the scatter."""
        serial, pooled = self.paired_executors(task, n_shards=2)
        try:
            batches = one_joint_batch(task, batch_size=32)
            assignments_a = shard_assignments(
                batches["a"].users, 2, salt=domain_shard_salt("a")
            )
            assignments_b = shard_assignments(
                batches["b"].users, 2, salt=domain_shard_salt("b")
            )
            shard = assignments_a[0]
            from repro.data.dataloader import Batch

            one_sided = {
                "a": Batch(
                    users=batches["a"].users[assignments_a == shard],
                    items=batches["a"].items[assignments_a == shard],
                    labels=batches["a"].labels[assignments_a == shard],
                ),
                "b": Batch(
                    users=batches["b"].users[assignments_b == shard],
                    items=batches["b"].items[assignments_b == shard],
                    labels=batches["b"].labels[assignments_b == shard],
                ),
            }
            assert len(one_sided["a"]) > 0
            serial_loss = serial.run_step(one_sided)
            pooled_loss = pooled.run_step(one_sided)
            assert pooled_loss == pytest.approx(serial_loss, rel=1e-12)
        finally:
            pooled.close()


# ----------------------------------------------------------------------
# lifecycle, wiring, liveness during the gather round
# ----------------------------------------------------------------------
class _DiesDuringEncode(NMCDR):
    """Shard 1 dies hard in phase 1 — after dispatch, before its ENC reply."""

    def encode_shard_step(
        self,
        batches,
        *,
        pools,
        exchange,
        shard_index,
        full_sizes=None,
        publish=None,
    ):
        if shard_index == 1:
            os._exit(13)
        return super().encode_shard_step(
            batches,
            pools=pools,
            exchange=exchange,
            shard_index=shard_index,
            full_sizes=full_sizes,
            publish=publish,
        )


class _HangsDuringEncode(NMCDR):
    """Shard 1 stalls in phase 1; the parent's step deadline must fire."""

    def encode_shard_step(
        self,
        batches,
        *,
        pools,
        exchange,
        shard_index,
        full_sizes=None,
        publish=None,
    ):
        if shard_index == 1:
            time.sleep(600)
        return super().encode_shard_step(
            batches,
            pools=pools,
            exchange=exchange,
            shard_index=shard_index,
            full_sizes=full_sizes,
            publish=publish,
        )


class TestPoolShardedLifecycle:
    def make_trainer(self, task, n_shards=2, **overrides):
        config = TrainerConfig(
            num_epochs=1,
            batch_size=128,
            seed=11,
            executor="sharded",
            n_shards=n_shards,
            pool_sharding=True,
            **overrides,
        )
        return CDRTrainer(build_nmcdr(task), task, config)

    def test_config_requires_sharded_executor(self):
        with pytest.raises(ValueError, match="pool_sharding"):
            TrainerConfig(pool_sharding=True)

    def test_trainer_builds_pool_sharded_executor(self, task):
        trainer = self.make_trainer(task)
        assert isinstance(trainer._executor, PoolShardedStepExecutor)
        assert trainer._executor.n_shards == 2

    def test_no_worker_survives_fit(self, task):
        trainer = self.make_trainer(task)
        trainer.fit()
        assert shard_children() == []

    def test_worker_death_during_gather_raises_instead_of_hanging(self, task):
        model = _DiesDuringEncode(task, NMCDRConfig(embedding_dim=16, seed=3))
        optimizer = Adam(model.parameters(), lr=1e-3)
        executor = PoolShardedStepExecutor(model, optimizer, n_shards=2)
        with pytest.raises(RuntimeError, match="shard worker 1"):
            executor.run_step(one_joint_batch(task))
        assert shard_children() == []

    def test_worker_hang_during_gather_hits_the_step_deadline(self, task):
        model = _HangsDuringEncode(task, NMCDRConfig(embedding_dim=16, seed=3))
        optimizer = Adam(model.parameters(), lr=1e-3)
        executor = PoolShardedStepExecutor(
            model, optimizer, n_shards=2, step_timeout=2.0
        )
        with pytest.raises(RuntimeError, match="timed out"):
            executor.run_step(one_joint_batch(task))
        assert shard_children() == []

    def test_worker_error_during_encode_propagates_with_traceback(self, task):
        trainer = self.make_trainer(task)
        executor = trainer._executor
        from repro.data.dataloader import Batch

        bad = Batch(
            users=np.array([10**9], dtype=np.int64),
            items=np.array([0], dtype=np.int64),
            labels=np.array([1.0]),
        )
        with pytest.raises(RuntimeError, match="worker traceback"):
            executor.run_step({"a": bad})
        assert shard_children() == []

    def test_dropout_models_are_rejected(self, task):
        model = build_nmcdr(task, dropout=0.2)
        optimizer = Adam(model.parameters(), lr=1e-3)
        with pytest.raises(ValueError, match="dropout"):
            PoolShardedStepExecutor(model, optimizer, n_shards=2)
