"""Forward-value and gradient tests for the functional op library."""

import numpy as np
import pytest

from repro.tensor import Tensor, ops


class TestElementwiseForward:
    def test_add_broadcasting(self):
        out = ops.add(Tensor([[1.0, 2.0], [3.0, 4.0]]), Tensor([10.0, 20.0]))
        assert np.allclose(out.data, [[11.0, 22.0], [13.0, 24.0]])

    def test_sub_and_neg(self):
        out = ops.sub(Tensor([3.0]), Tensor([1.0]))
        assert out.data[0] == pytest.approx(2.0)
        assert ops.neg(Tensor([2.0])).data[0] == pytest.approx(-2.0)

    def test_mul_div(self):
        assert ops.mul(Tensor([3.0]), Tensor([4.0])).data[0] == pytest.approx(12.0)
        assert ops.div(Tensor([8.0]), Tensor([4.0])).data[0] == pytest.approx(2.0)

    def test_pow(self):
        out = ops.pow(Tensor([2.0, 3.0]), 2.0)
        assert np.allclose(out.data, [4.0, 9.0])

    def test_operator_overloads_with_scalars(self):
        x = Tensor([2.0], requires_grad=True)
        out = ((1.0 + x) * 3.0 - 2.0) / 2.0
        assert out.data[0] == pytest.approx(3.5)
        out.sum().backward()
        assert x.grad[0] == pytest.approx(1.5)

    def test_rsub_rdiv(self):
        x = Tensor([2.0])
        assert (10.0 - x).data[0] == pytest.approx(8.0)
        assert (10.0 / x).data[0] == pytest.approx(5.0)


class TestActivations:
    def test_relu_values_and_grad(self):
        x = Tensor([-1.0, 0.0, 2.0], requires_grad=True)
        out = ops.relu(x)
        assert np.allclose(out.data, [0.0, 0.0, 2.0])
        out.sum().backward()
        assert np.allclose(x.grad, [0.0, 0.0, 1.0])

    def test_leaky_relu(self):
        out = ops.leaky_relu(Tensor([-2.0, 2.0]), negative_slope=0.1)
        assert np.allclose(out.data, [-0.2, 2.0])

    def test_sigmoid_range_and_extremes(self):
        out = ops.sigmoid(Tensor([-1000.0, 0.0, 1000.0]))
        assert out.data[0] == pytest.approx(0.0, abs=1e-12)
        assert out.data[1] == pytest.approx(0.5)
        assert out.data[2] == pytest.approx(1.0, abs=1e-12)
        assert np.all(np.isfinite(out.data))

    def test_tanh(self):
        out = ops.tanh(Tensor([0.0, 100.0]))
        assert out.data[0] == pytest.approx(0.0)
        assert out.data[1] == pytest.approx(1.0)

    def test_softplus_matches_log1p_exp(self):
        x = np.array([-3.0, 0.0, 3.0])
        out = ops.softplus(Tensor(x))
        assert np.allclose(out.data, np.log1p(np.exp(x)))

    def test_softplus_large_input_is_linear(self):
        out = ops.softplus(Tensor([100.0]))
        assert out.data[0] == pytest.approx(100.0)

    def test_softmax_rows_sum_to_one(self):
        out = ops.softmax(Tensor(np.random.default_rng(0).normal(size=(4, 6))), axis=1)
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_softmax_invariant_to_shift(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(
            ops.softmax(Tensor(x)).data, ops.softmax(Tensor(x + 100.0)).data
        )

    def test_log_softmax_consistency(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        assert np.allclose(
            ops.log_softmax(Tensor(x)).data, np.log(ops.softmax(Tensor(x)).data), atol=1e-10
        )

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.5])
        assert np.allclose(ops.log(ops.exp(x)).data, x.data)

    def test_sqrt(self):
        assert np.allclose(ops.sqrt(Tensor([4.0, 9.0])).data, [2.0, 3.0])


class TestReductions:
    def test_sum_axes(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert ops.sum(x).data == pytest.approx(15.0)
        assert np.allclose(ops.sum(x, axis=0).data, [3.0, 5.0, 7.0])
        assert ops.sum(x, axis=1, keepdims=True).shape == (2, 1)

    def test_mean_gradient_scaling(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True)
        ops.mean(x).backward()
        assert np.allclose(x.grad, 1.0 / 20.0)

    def test_mean_axis_gradient(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True)
        ops.mean(x, axis=0).sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_max_forward_and_grad_with_ties(self):
        x = Tensor([[1.0, 3.0, 3.0]], requires_grad=True)
        out = ops.max(x, axis=1)
        assert out.data[0] == pytest.approx(3.0)
        out.sum().backward()
        # gradient split between the two tied maxima
        assert np.allclose(x.grad, [[0.0, 0.5, 0.5]])


class TestShapeOps:
    def test_reshape_and_gradient(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        out = ops.reshape(x, (2, 3))
        assert out.shape == (2, 3)
        out.sum().backward()
        assert x.grad.shape == (6,)

    def test_transpose_roundtrip(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = ops.transpose(ops.transpose(x))
        assert np.allclose(out.data, x.data)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_concat_values_and_grads(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros((2, 3)), requires_grad=True)
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_stack(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_getitem_slice_gradient(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        out = x[2:5]
        out.sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        assert np.allclose(x.grad, expected)


class TestGatherScatter:
    def test_gather_rows_values(self):
        table = Tensor(np.arange(12.0).reshape(4, 3))
        out = ops.gather_rows(table, np.array([0, 2]))
        assert np.allclose(out.data, [[0, 1, 2], [6, 7, 8]])

    def test_gather_rows_repeated_index_accumulates_grad(self):
        table = Tensor(np.zeros((4, 3)), requires_grad=True)
        out = ops.gather_rows(table, np.array([1, 1, 3]))
        out.sum().backward()
        assert np.allclose(table.grad[1], 2.0)
        assert np.allclose(table.grad[3], 1.0)
        assert np.allclose(table.grad[0], 0.0)

    def test_scatter_add_rows(self):
        base = Tensor(np.zeros((3, 2)), requires_grad=True)
        updates = Tensor(np.ones((2, 2)), requires_grad=True)
        out = ops.scatter_add_rows(base, np.array([0, 0]), updates)
        assert np.allclose(out.data[0], 2.0)
        out.sum().backward()
        assert np.allclose(base.grad, 1.0)
        assert np.allclose(updates.grad, 1.0)


class TestMisc:
    def test_clip_forward_and_grad(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        out = ops.clip(x, 0.0, 1.0)
        assert np.allclose(out.data, [0.0, 0.5, 1.0])
        out.sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_where(self):
        condition = np.array([True, False])
        out = ops.where(condition, Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert np.allclose(out.data, [1.0, 2.0])

    def test_maximum(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        out = ops.maximum(a, b)
        assert np.allclose(out.data, [3.0, 5.0])
        out.sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])

    def test_dropout_mask_apply(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[1.0, 0.0], [1.0, 1.0]])
        out = ops.dropout_mask_apply(x, mask, 2.0)
        assert np.allclose(out.data, [[2.0, 0.0], [2.0, 2.0]])
        out.sum().backward()
        assert np.allclose(x.grad, [[2.0, 0.0], [2.0, 2.0]])

    def test_spmm_like_matmul_vector_cases(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        out = a @ b
        assert out.data == pytest.approx(11.0)
        out.backward()
        assert np.allclose(a.grad, [3.0, 4.0])
        assert np.allclose(b.grad, [1.0, 2.0])

    def test_matrix_vector_matmul_gradients(self):
        matrix = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        vector = Tensor(np.array([1.0, 1.0, 1.0]), requires_grad=True)
        out = matrix @ vector
        out.sum().backward()
        assert matrix.grad.shape == (2, 3)
        assert vector.grad.shape == (3,)
