"""Tests for the NMCDR building blocks: config, task, encoder, matching, complementing."""

import numpy as np
import pytest

from repro.core import (
    CDRTask,
    HeterogeneousGraphEncoder,
    IntraNodeComplementing,
    InterNodeMatching,
    IntraNodeMatching,
    NMCDRConfig,
    PredictionHead,
    TrainerConfig,
)
from repro.graph import HeadTailPartition, InteractionGraph, MatchingNeighborSampler
from repro.tensor import Tensor


class TestConfig:
    def test_defaults_resolve_dimensions(self):
        config = NMCDRConfig(embedding_dim=48)
        assert config.resolved_hge_dim == 48
        assert config.resolved_igm_dim == 48
        assert config.resolved_cgm_dim == 48
        assert config.resolved_ref_dim == 48

    def test_explicit_dimensions(self):
        config = NMCDRConfig(embedding_dim=32, hge_dim=16)
        assert config.resolved_hge_dim == 16

    def test_variant_override(self):
        config = NMCDRConfig()
        ablated = config.variant(use_companion=False)
        assert config.use_companion and not ablated.use_companion

    def test_validation(self):
        with pytest.raises(ValueError):
            NMCDRConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            NMCDRConfig(num_matching_layers=0)
        with pytest.raises(ValueError):
            NMCDRConfig(companion_weights=(1.0, 1.0))
        with pytest.raises(ValueError):
            NMCDRConfig(head_threshold=-1)

    def test_trainer_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(num_epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(learning_rate=-0.1)
        assert TrainerConfig().variant(num_epochs=3).num_epochs == 3


class TestTask:
    def test_build_task_structure(self, tiny_dataset, tiny_task):
        assert isinstance(tiny_task, CDRTask)
        assert tiny_task.domain("a").domain.name == tiny_dataset.domain_a.name
        assert tiny_task.other_key("a") == "b"
        assert tiny_task.num_overlapping == tiny_dataset.num_overlapping
        with pytest.raises(KeyError):
            tiny_task.domain("c")

    def test_train_graph_excludes_heldout(self, tiny_task):
        for key in ("a", "b"):
            domain_task = tiny_task.domain(key)
            graph = domain_task.train_graph
            split = domain_task.split
            for user, item in zip(split.test_users[:20], split.test_items[:20]):
                assert not graph.has_edge(int(user), int(item))

    def test_overlap_indices_are_aligned(self, tiny_task):
        idx_a = tiny_task.overlap_indices("a")
        idx_b = tiny_task.overlap_indices("b")
        gids_a = tiny_task.domain_a.domain.global_user_ids[idx_a]
        gids_b = tiny_task.domain_b.domain.global_user_ids[idx_b]
        assert np.array_equal(gids_a, gids_b)

    def test_non_overlap_indices_complement(self, tiny_task):
        for key in ("a", "b"):
            num_users = tiny_task.domain(key).num_users
            overlap = set(tiny_task.overlap_indices(key).tolist())
            non_overlap = set(tiny_task.non_overlap_indices(key).tolist())
            assert overlap | non_overlap == set(range(num_users))
            assert overlap & non_overlap == set()

    def test_summary_keys(self, tiny_task):
        summary = tiny_task.summary()
        assert {"scenario", "overlap", "domain_a", "domain_b"} <= set(summary)


@pytest.fixture()
def toy_graph():
    users = [0, 0, 1, 2, 3, 3, 3]
    items = [0, 1, 1, 2, 0, 2, 3]
    return InteractionGraph(4, 4, users, items)


class TestEncoder:
    def test_output_shapes(self, toy_graph, rng):
        encoder = HeterogeneousGraphEncoder(8, 6, num_layers=2, rng=rng)
        users, items = encoder(
            toy_graph,
            Tensor(rng.normal(size=(4, 8))),
            Tensor(rng.normal(size=(4, 8))),
        )
        assert users.shape == (4, 6)
        assert items.shape == (4, 6)

    def test_gradients_flow_to_embeddings(self, toy_graph, rng):
        encoder = HeterogeneousGraphEncoder(4, 4, rng=rng)
        user_embeddings = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        item_embeddings = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        users, items = encoder(toy_graph, user_embeddings, item_embeddings)
        (users.sum() + items.sum()).backward()
        assert np.any(user_embeddings.grad != 0)
        assert np.any(item_embeddings.grad != 0)

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            HeterogeneousGraphEncoder(4, 4, num_layers=0)

    def test_kernel_selection(self, toy_graph, rng):
        encoder = HeterogeneousGraphEncoder(4, 4, kernel="gcn", rng=rng)
        users, _ = encoder(
            toy_graph,
            Tensor(rng.normal(size=(4, 4))),
            Tensor(rng.normal(size=(4, 4))),
        )
        assert users.shape == (4, 4)


class TestIntraNodeMatching:
    def test_residual_and_shape(self, rng):
        matching = IntraNodeMatching(8, 8, rng=rng)
        user_repr = Tensor(rng.normal(size=(10, 8)), requires_grad=True)
        partition = HeadTailPartition(rng.integers(1, 20, size=10), threshold=7)
        out = matching(user_repr, partition)
        assert out.shape == (10, 8)
        # residual: output differs from input but stays correlated with it
        assert not np.allclose(out.data, user_repr.data)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IntraNodeMatching(8, 16)

    def test_empty_head_group_is_handled(self, rng):
        matching = IntraNodeMatching(4, 4, rng=rng)
        user_repr = Tensor(rng.normal(size=(5, 4)))
        partition = HeadTailPartition(np.ones(5, dtype=int), threshold=10)  # everyone tail
        out = matching(user_repr, partition)
        assert out.shape == (5, 4)
        assert np.all(np.isfinite(out.data))

    def test_gradients_reach_parameters(self, rng):
        matching = IntraNodeMatching(4, 4, rng=rng)
        user_repr = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        partition = HeadTailPartition(rng.integers(1, 20, size=6), threshold=7)
        matching(user_repr, partition).sum().backward()
        assert matching.head_transform.weight.grad is not None
        assert matching.tail_transform.weight.grad is not None
        assert user_repr.grad is not None

    def test_sampler_limits_pool(self, rng):
        matching = IntraNodeMatching(4, 4, rng=rng)
        user_repr = Tensor(rng.normal(size=(50, 4)))
        partition = HeadTailPartition(rng.integers(1, 20, size=50), threshold=7)
        sampler = MatchingNeighborSampler(max_neighbors=3, rng=rng)
        out = matching(user_repr, partition, sampler)
        assert out.shape == (50, 4)


class TestInterNodeMatching:
    def _setup(self, rng, num_a=6, num_b=5, dim=4, num_overlap=3):
        matching_a = InterNodeMatching(dim, dim, rng=rng)
        matching_b = InterNodeMatching(dim, dim, rng=rng)
        repr_a = Tensor(rng.normal(size=(num_a, dim)), requires_grad=True)
        repr_b = Tensor(rng.normal(size=(num_b, dim)), requires_grad=True)
        own_overlap = np.arange(num_overlap)
        other_overlap = np.arange(num_overlap)
        other_non_overlap = np.arange(num_overlap, num_b)
        return matching_a, matching_b, repr_a, repr_b, own_overlap, other_overlap, other_non_overlap

    def test_output_shape_and_gradients(self, rng):
        matching_a, matching_b, repr_a, repr_b, own, other, non = self._setup(rng)
        out = matching_a(repr_a, repr_b, own, other, non, matching_b.cross)
        assert out.shape == repr_a.shape
        out.sum().backward()
        assert repr_a.grad is not None
        assert repr_b.grad is not None
        assert matching_a.self_transform.weight.grad is not None

    def test_overlapped_users_receive_partner_information(self, rng):
        matching_a, matching_b, repr_a, repr_b, own, other, non = self._setup(rng)
        baseline = matching_a(
            repr_a,
            repr_b,
            own,
            other,
            non,
            matching_b.cross,
        ).data.copy()
        # perturb the partner of overlapped user 0 only
        perturbed_b = Tensor(repr_b.data.copy())
        perturbed_b.data[0] += 10.0
        changed = matching_a(
            repr_a,
            perturbed_b,
            own,
            other,
            non,
            matching_b.cross,
        ).data
        assert not np.allclose(baseline[0], changed[0])

    def test_no_overlap_still_works(self, rng):
        matching_a, matching_b, repr_a, repr_b, _, _, _ = self._setup(
            rng,
            num_overlap=0,
        )
        empty = np.zeros(0, dtype=np.int64)
        out = matching_a(repr_a, repr_b, empty, empty, np.arange(5), matching_b.cross)
        assert np.all(np.isfinite(out.data))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            InterNodeMatching(4, 8)


class TestComplementing:
    def test_output_shape_and_finiteness(self, toy_graph, rng):
        complementing = IntraNodeComplementing(4, 4, rng=rng)
        users = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        items = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        out = complementing(toy_graph, users, items)
        assert out.shape == (4, 4)
        assert np.all(np.isfinite(out.data))
        out.sum().backward()
        assert users.grad is not None and items.grad is not None

    def test_attention_weights_sum_to_one_per_user(self, toy_graph, rng):
        complementing = IntraNodeComplementing(4, 4, rng=rng)
        users = Tensor(rng.normal(size=(4, 4)))
        items = Tensor(rng.normal(size=(4, 4)))
        weights = complementing.virtual_link_strengths(toy_graph, users, items)
        sums = np.zeros(4)
        np.add.at(sums, toy_graph.user_indices, weights)
        degrees = toy_graph.user_degrees()
        assert np.allclose(sums[degrees > 0], 1.0)

    def test_empty_graph_returns_input(self, rng):
        graph = InteractionGraph(3, 3, [], [])
        complementing = IntraNodeComplementing(4, 4, rng=rng)
        users = Tensor(rng.normal(size=(3, 4)))
        out = complementing(graph, users, Tensor(rng.normal(size=(3, 4))))
        assert np.allclose(out.data, users.data)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            IntraNodeComplementing(4, 8)


class TestPredictionHead:
    def test_probability_range(self, rng):
        head = PredictionHead(8, 8, rng=rng)
        out = head(Tensor(rng.normal(size=(10, 8))), Tensor(rng.normal(size=(10, 8))))
        assert out.shape == (10, 1)
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_logits_unbounded(self, rng):
        head = PredictionHead(4, 4, rng=rng)
        logits = head.logits(
            Tensor(rng.normal(size=(5, 4))),
            Tensor(rng.normal(size=(5, 4))),
        )
        assert logits.shape == (5, 1)

    def test_misaligned_batches_rejected(self, rng):
        head = PredictionHead(4, 4, rng=rng)
        with pytest.raises(ValueError):
            head(Tensor(rng.normal(size=(3, 4))), Tensor(rng.normal(size=(5, 4))))
