"""Tests for Module/Parameter bookkeeping and the basic layers."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Dropout,
    Embedding,
    Identity,
    Linear,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    activation_by_name,
)
from repro.tensor import Tensor


class TestModule:
    def test_parameter_registration(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.ones((2, 2)))
                self.child = Linear(2, 3)

            def forward(self, x):
                return x

        toy = Toy()
        names = [name for name, _ in toy.named_parameters()]
        assert "weight" in names
        assert "child.weight" in names
        assert "child.bias" in names
        assert toy.num_parameters() == 4 + 6 + 3

    def test_train_eval_recursive(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not module.training for module in model)
        model.train()
        assert all(module.training for module in model)

    def test_zero_grad(self):
        linear = Linear(2, 2)
        out = linear(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert linear.weight.grad is not None
        linear.zero_grad()
        assert linear.weight.grad is None

    def test_state_dict_roundtrip(self):
        first = Linear(3, 2)
        second = Linear(3, 2)
        second.load_state_dict(first.state_dict())
        assert np.allclose(first.weight.data, second.weight.data)
        assert np.allclose(first.bias.data, second.bias.data)

    def test_state_dict_strict_mismatch(self):
        linear = Linear(3, 2)
        with pytest.raises(KeyError):
            linear.load_state_dict({"bogus": np.zeros((1,))})

    def test_state_dict_shape_mismatch(self):
        linear = Linear(3, 2)
        state = linear.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            linear.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_module_list(self):
        modules = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(modules) == 2
        assert isinstance(modules[0], Linear)
        with pytest.raises(RuntimeError):
            modules(1)

    def test_named_modules(self):
        model = Sequential(Linear(2, 2), ReLU())
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "0" in names and "1" in names


class TestLinear:
    def test_forward_shape_and_value(self):
        linear = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.ones((4, 3))
        out = linear(Tensor(x))
        assert out.shape == (4, 2)
        expected = x @ linear.weight.data + linear.bias.data
        assert np.allclose(out.data, expected)

    def test_no_bias(self):
        linear = Linear(3, 2, bias=False)
        assert linear.bias is None
        assert linear.num_parameters() == 6

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_gradients_flow(self):
        linear = Linear(3, 1, rng=np.random.default_rng(0))
        out = linear(Tensor(np.ones((5, 3)))).sum()
        out.backward()
        assert linear.weight.grad.shape == (3, 1)
        assert np.allclose(linear.weight.grad, 5.0)
        assert np.allclose(linear.bias.grad, 5.0)


class TestEmbedding:
    def test_lookup_and_shape(self):
        table = Embedding(10, 4, rng=np.random.default_rng(0))
        out = table(np.array([0, 3, 3]))
        assert out.shape == (3, 4)
        assert np.allclose(out.data[1], out.data[2])

    def test_out_of_range_raises(self):
        from repro.nn import index_validation

        table = Embedding(5, 2)
        with index_validation():
            with pytest.raises(IndexError):
                table(np.array([5]))
            with pytest.raises(IndexError):
                table(np.array([-1]))

    def test_out_of_range_positive_raises_without_validation(self):
        # numpy itself rejects positive out-of-range indices even with the
        # debug bounds scan disabled (the default).
        from repro.nn import index_validation_enabled

        assert not index_validation_enabled()
        table = Embedding(5, 2)
        with pytest.raises(IndexError):
            table(np.array([5]))

    def test_all_returns_weight(self):
        table = Embedding(5, 2)
        assert table.all() is table.weight

    def test_gradient_accumulates_for_repeated_rows(self):
        table = Embedding(5, 2, rng=np.random.default_rng(0))
        out = table(np.array([1, 1, 2]))
        out.sum().backward()
        assert np.allclose(table.weight.grad[1], 2.0)
        assert np.allclose(table.weight.grad[2], 1.0)
        assert np.allclose(table.weight.grad[0], 0.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Embedding(0, 3)


class TestDropoutAndActivations:
    def test_dropout_eval_is_identity(self):
        dropout = Dropout(0.9, rng=np.random.default_rng(0))
        dropout.eval()
        x = Tensor(np.ones((10, 10)))
        assert np.allclose(dropout(x).data, 1.0)

    def test_dropout_training_zeroes_and_scales(self):
        dropout = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((50, 50)))
        out = dropout(x)
        values = np.unique(np.round(out.data, 6))
        assert set(values).issubset({0.0, 2.0})
        assert (out.data == 0).mean() == pytest.approx(0.5, abs=0.1)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_activation_registry(self):
        assert isinstance(activation_by_name("relu"), ReLU)
        assert isinstance(activation_by_name("SIGMOID"), Sigmoid)
        assert isinstance(activation_by_name("identity"), Identity)
        with pytest.raises(KeyError):
            activation_by_name("swish")

    def test_identity(self):
        x = Tensor([1.0, 2.0])
        assert np.allclose(Identity()(x).data, x.data)


class TestMLP:
    def test_shapes(self):
        mlp = MLP([4, 8, 2], rng=np.random.default_rng(0))
        out = mlp(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_output_activation(self):
        mlp = MLP([4, 2], output_activation="sigmoid", rng=np.random.default_rng(0))
        out = mlp(Tensor(np.random.default_rng(1).normal(size=(5, 4))))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_too_few_layers_raises(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_parameter_count(self):
        mlp = MLP([4, 8, 2])
        assert mlp.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2)

    def test_trainable_end_to_end(self):
        rng = np.random.default_rng(0)
        mlp = MLP([2, 16, 1], rng=rng)
        from repro.nn import losses
        from repro.optim import Adam
        from repro.tensor import ops

        X = rng.normal(size=(128, 2))
        y = (X.sum(axis=1) > 0).astype(float).reshape(-1, 1)
        optimizer = Adam(mlp.parameters(), lr=0.05)
        initial = None
        for _ in range(60):
            optimizer.zero_grad()
            out = ops.sigmoid(mlp(Tensor(X)))
            loss = losses.binary_cross_entropy(out, y)
            if initial is None:
                initial = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < initial * 0.5
