"""Regression test: ``CDRTrainer.fit`` must never hand models ``None`` batches.

``zip_longest`` pads the shorter domain loader with ``None`` once the two
domains have a different number of mini-batches.  The trainer now filters
those out (and skips all-empty steps) instead of relying on every model's
``compute_batch_loss`` to be defensive about them.
"""

import numpy as np

from repro.core import CDRTrainer, TrainerConfig
from repro.data.dataloader import Batch
from repro.nn import Module, Parameter


class StrictModel(Module):
    """Minimal trainable model that rejects ``None``/empty batches outright."""

    def __init__(self) -> None:
        super().__init__()
        self.theta = Parameter(np.zeros(1))
        self.seen_batches = []

    def compute_batch_loss(self, batches):
        assert batches, "trainer passed an empty batch dict"
        total = None
        for key, batch in batches.items():
            assert batch is not None, f"trainer passed None batch for domain '{key}'"
            assert isinstance(batch, Batch) and len(batch) > 0
            self.seen_batches.append((key, len(batch)))
            term = (self.theta * float(len(batch))).sum()
            total = term if total is None else total + term
        return total

    def invalidate_cache(self) -> None:
        pass

    def prepare_for_evaluation(self) -> None:
        pass

    def score(self, domain_key, users, items):
        return np.zeros(len(users))


def test_fit_skips_none_batches_from_unequal_loaders(tiny_task):
    config = TrainerConfig(num_epochs=1, batch_size=32, eval_every=0)
    trainer = CDRTrainer(StrictModel(), tiny_task, config)

    lengths = {key: len(trainer._loaders[key]) for key in ("a", "b")}
    assert lengths["a"] != lengths["b"], (
        "precondition: the two domains must produce unequal loader lengths "
        f"for this regression test, got {lengths}"
    )

    history = trainer.fit()

    # Every step ran (no crash), and the step count equals the longer loader:
    # the trailing steps carry only the longer domain's batch.
    assert history.num_batches == max(lengths.values())
    model = trainer.model
    per_domain = {key: sum(1 for k, _ in model.seen_batches if k == key) for key in ("a", "b")}
    assert per_domain["a"] == lengths["a"]
    assert per_domain["b"] == lengths["b"]


def test_fit_handles_one_empty_domain(tiny_task):
    """A loader that yields nothing at all must not abort training."""
    config = TrainerConfig(num_epochs=1, batch_size=32, eval_every=0)
    trainer = CDRTrainer(StrictModel(), tiny_task, config)

    class EmptyLoader:
        def __iter__(self):
            return iter(())

        def __len__(self):
            return 0

    trainer._loaders["b"] = EmptyLoader()
    history = trainer.fit()
    assert history.num_batches == len(trainer._loaders["a"])
    assert all(key == "a" for key, _ in trainer.model.seen_batches)
