"""Traced step replay: bit-identity gates, guard fallback, cache bounds.

The contract gated here (``repro.tensor.trace``):

* **Bit-identity in float64** — with ``TrainerConfig(traced_steps=True)``
  training produces bit-identical epoch losses, validation metrics and
  final parameters to eager execution, for NMCDR and the graph baselines,
  across all three executors, composing with sampled plans, scheduled
  plans and prefetch.  This is an *exactness* guarantee: replay re-runs
  the recorded kernels with the same arithmetic in the same order.
* **Guards, not faith** — a replayed step re-checks the op sequence, the
  operand wiring and operand dtypes; batch *shapes* may vary (slots
  rebind), anything structural falls back, rewinds the model's rng
  streams, re-traces, and still matches eager bit-for-bit.
* **Bounded cache** — the program cache is a small LRU; overflowing it
  evicts (releasing arena slabs) instead of growing without bound, and
  untraceable sections poison their key and stay eager.
"""

import numpy as np
import pytest

from repro.baselines import build_model
from repro.core import CDRTrainer, NMCDR, NMCDRConfig, TrainerConfig, build_task
from repro.core.engine import StepExecutor
from repro.data import load_scenario
from repro.tensor import Tensor, ops
from repro.tensor import engine as tensor_engine
from repro.tensor.trace import TraceRuntime, TraceStats, check_traceable

pytestmark = pytest.mark.traced


@pytest.fixture(scope="module")
def task():
    return build_task(
        load_scenario("cloth_sport", scale=0.3, seed=13),
        head_threshold=7,
    )


def fit_history(task, model_name="NMCDR", collect_params=False, **config_overrides):
    model = build_model(model_name, task, embedding_dim=16, seed=3)
    config = TrainerConfig(
        num_epochs=2,
        batch_size=128,
        seed=11,
        eval_every=1,
        num_eval_negatives=20,
        **config_overrides,
    )
    trainer = CDRTrainer(model, task, config)
    history = trainer.fit()
    if collect_params:
        params = {key: value.copy() for key, value in model.state_dict().items()}
        return history, params, trainer
    return history


def assert_bit_identical(task, model_name="NMCDR", **overrides):
    eager_history, eager_params, _ = fit_history(
        task, model_name, collect_params=True, **overrides
    )
    traced_history, traced_params, trainer = fit_history(
        task, model_name, collect_params=True, traced_steps=True, **overrides
    )
    assert eager_history.epoch_losses == traced_history.epoch_losses
    assert eager_history.validation_metrics == traced_history.validation_metrics
    assert eager_params.keys() == traced_params.keys()
    for key in eager_params:
        np.testing.assert_array_equal(eager_params[key], traced_params[key])
    return trainer


# ----------------------------------------------------------------------
# fixed-seed bit-identity gates (float64)
# ----------------------------------------------------------------------
class TestSerialBitIdentity:
    def test_nmcdr_full_graph(self, task):
        assert_bit_identical(task)

    def test_nmcdr_sampled_scheduled_prefetch(self, task):
        assert_bit_identical(
            task,
            sampled_subgraph_training=True,
            scheduled_subgraph_plans=True,
            prefetch_epochs=1,
        )

    @pytest.mark.parametrize("model_name", ["GA-DTCDR", "HeroGraph"])
    def test_graph_baselines_sampled(self, task, model_name):
        assert_bit_identical(task, model_name, sampled_subgraph_training=True)

    def test_replay_actually_happens(self, task):
        """The identity gate is vacuous if every step silently ran eager."""
        model = build_model("NMCDR", task, embedding_dim=16, seed=3)
        config = TrainerConfig(
            num_epochs=2, batch_size=128, seed=11, eval_every=0, traced_steps=True
        )
        trainer = CDRTrainer(model, task, config)
        engine = trainer.build_engine()
        pipeline = engine.build_pipeline(trainer._loaders)
        engine.fit(pipeline)
        stats = engine.executor.trace_stats
        assert stats is not None
        assert stats["hits"] > 0
        assert stats["fallbacks"] == 0
        assert stats["untraceable"] == 0
        assert stats["eager"] == 0
        assert stats["hits"] + stats["misses"] == stats["sections"]
        assert stats["hit_rate"] > 0.8
        assert stats["arena"]["slabs"] > 0


@pytest.mark.slow
class TestShardedBitIdentity:
    @pytest.mark.parametrize("pool_sharding", [False, True])
    def test_nmcdr_sharded(self, task, pool_sharding):
        trainer = assert_bit_identical(
            task,
            executor="sharded",
            n_shards=2,
            pool_sharding=pool_sharding,
        )
        stats = trainer._executor.trace_stats
        assert stats["hits"] > 0
        assert stats["untraceable"] == 0

    def test_pool_sharded_sampled(self, task):
        assert_bit_identical(
            task,
            executor="sharded",
            n_shards=2,
            pool_sharding=True,
            sampled_subgraph_training=True,
        )


# ----------------------------------------------------------------------
# runtime-level guard and cache behaviour
# ----------------------------------------------------------------------
@pytest.fixture()
def runtime():
    rt = TraceRuntime()
    rt.install()
    yield rt
    rt.uninstall()


def linear_relu_section(weight, x_data):
    """One forward+backward over the patched ops; returns (loss, grad)."""

    def fn():
        weight.zero_grad()
        x = Tensor(x_data)
        hidden = ops.relu(ops.matmul(x, weight))
        loss = ops.mean(hidden)
        loss.backward()
        return float(loss.item()), weight.grad.copy()

    return fn


def eager_linear_relu(weight_data, x_data):
    """Reference values computed without any runtime installed."""
    y = x_data @ weight_data
    mask = y > 0
    loss = float(np.mean(np.where(mask, y, 0.0)))
    seed = np.full(y.shape, 1.0 / y.size)
    grad = x_data.T @ np.where(mask, seed, 0.0)
    return loss, grad


class TestGuardsAndFallback:
    def test_shape_polymorphic_replay_binds_without_fallback(self, runtime, rng):
        weight = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        for rows in (8, 3, 17, 3, 64):
            x_data = rng.standard_normal((rows, 6))
            loss, grad = runtime.run_section(
                "poly", linear_relu_section(weight, x_data)
            )
            ref_loss, ref_grad = eager_linear_relu(weight.data, x_data)
            assert loss == ref_loss
            np.testing.assert_array_equal(grad, ref_grad)
        assert runtime.stats.misses == 1
        assert runtime.stats.hits == 4
        assert runtime.stats.fallbacks == 0
        # Rebinding happened (the arena re-allocated for new shapes) but
        # repeated shapes reused their slabs.
        assert runtime.arena.rebinds > 0

    def test_raw_array_dtype_change_falls_back_and_retraces(self, runtime, rng):
        weight = Tensor(rng.standard_normal((4, 4)), requires_grad=True)
        scale64 = np.full((4,), 2.0, dtype=np.float64)
        scale32 = scale64.astype(np.float32)

        def section(scale):
            def fn():
                weight.zero_grad()
                x = Tensor(np.ones((5, 4)))
                loss = ops.mean(ops.mul(ops.matmul(x, weight), scale))
                loss.backward()
                return float(loss.item()), weight.grad.copy()

            return fn

        first = runtime.run_section("dtype", section(scale64))
        second = runtime.run_section("dtype", section(scale64))
        assert first[0] == second[0]  # replay hit, bit-identical
        np.testing.assert_array_equal(first[1], second[1])
        flipped = runtime.run_section("dtype", section(scale32))
        assert runtime.stats.fallbacks == 1
        assert runtime.stats.last_fallback
        # The re-trace ran eagerly with the new operand; from here the new
        # program replays again.
        again = runtime.run_section("dtype", section(scale32))
        assert flipped[0] == again[0]
        np.testing.assert_array_equal(flipped[1], again[1])
        assert runtime.stats.hits == 2
        assert runtime.stats.misses == 2

    def test_op_sequence_change_falls_back_bit_identically(self, runtime, rng):
        weight = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        activation = {"use_tanh": False}

        def fn():
            weight.zero_grad()
            x = Tensor(np.linspace(-1.0, 1.0, 30).reshape(5, 6))
            y = ops.matmul(x, weight)
            hidden = ops.tanh(y) if activation["use_tanh"] else ops.relu(y)
            loss = ops.mean(hidden)
            loss.backward()
            return float(loss.item()), weight.grad.copy()

        runtime.run_section("seq", fn)
        runtime.run_section("seq", fn)
        assert runtime.stats.hits == 1

        activation["use_tanh"] = True
        traced_loss, traced_grad = runtime.run_section("seq", fn)
        assert runtime.stats.fallbacks == 1
        runtime.uninstall()
        eager_loss, eager_grad = fn()
        runtime.install()
        assert traced_loss == eager_loss
        np.testing.assert_array_equal(traced_grad, eager_grad)

    def test_fallback_rewinds_rng_streams(self, runtime):
        weight = Tensor(np.eye(3), requires_grad=True)
        activation = {"use_tanh": False}

        def make_fn(generator):
            def fn():
                weight.zero_grad()
                scale = float(generator.standard_normal())
                x = Tensor(np.full((2, 3), scale))
                y = ops.matmul(x, weight)
                hidden = ops.tanh(y) if activation["use_tanh"] else ops.relu(y)
                loss = ops.mean(hidden)
                loss.backward()
                return float(loss.item())

            return fn

        traced_rng = np.random.default_rng(99)
        fn = make_fn(traced_rng)
        values = [runtime.run_section("rng", fn, rng_sources=(traced_rng,))]
        values.append(runtime.run_section("rng", fn, rng_sources=(traced_rng,)))
        activation["use_tanh"] = True  # third call: replay fails mid-section,
        values.append(  # after the rng draw — the rewind must undo that draw
            runtime.run_section("rng", fn, rng_sources=(traced_rng,))
        )
        values.append(runtime.run_section("rng", fn, rng_sources=(traced_rng,)))
        assert runtime.stats.fallbacks == 1

        runtime.uninstall()
        reference_rng = np.random.default_rng(99)
        reference_fn = make_fn(reference_rng)
        activation["use_tanh"] = False
        expected = [reference_fn(), reference_fn()]
        activation["use_tanh"] = True
        expected.extend([reference_fn(), reference_fn()])
        runtime.install()
        assert values == expected

    def test_no_stale_buffers_across_replays(self, runtime, rng):
        """Arena reuse must never leak one step's values into the next."""
        weight = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        inputs = [rng.standard_normal((7, 6)) for _ in range(4)]
        expected = [eager_linear_relu(weight.data, x) for x in inputs]
        for x_data, (ref_loss, ref_grad) in zip(inputs, expected):
            loss, grad = runtime.run_section(
                "fresh", linear_relu_section(weight, x_data)
            )
            assert loss == ref_loss
            np.testing.assert_array_equal(grad, ref_grad)

    def test_gradients_do_not_accumulate_across_replays(self, runtime, rng):
        """Replay seeds gradients exactly like eager zero-then-backward."""
        weight = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        x_data = rng.standard_normal((5, 4))
        _, first = runtime.run_section("acc", linear_relu_section(weight, x_data))
        _, second = runtime.run_section("acc", linear_relu_section(weight, x_data))
        _, third = runtime.run_section("acc", linear_relu_section(weight, x_data))
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(second, third)


class TestCacheBounds:
    def test_lru_eviction_bounds_the_program_cache(self, rng):
        runtime = TraceRuntime(max_programs=2)
        runtime.install()
        try:
            weight = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
            x_data = rng.standard_normal((4, 3))
            for index in range(5):
                runtime.run_section(
                    ("key", index), linear_relu_section(weight, x_data)
                )
            assert len(runtime._programs) <= 2
            assert runtime.stats.evictions == 3
            # Evicted slabs were handed back to the arena accounting.
            assert runtime.arena.slabs <= 2 * 5  # bounded, not 5 programs' worth
        finally:
            runtime.uninstall()

    def test_untraceable_sections_poison_their_key_and_stay_eager(self, runtime):
        def fn():
            # backward() with an explicit seed gradient is outside the traced
            # protocol (programs only capture scalar-rooted passes), so the
            # recording marks the section untraceable and poisons the key.
            x = Tensor(np.ones((2, 2)), requires_grad=True)
            y = ops.mul(x, x)
            y.backward(np.ones((2, 2)))
            return 1.0

        assert runtime.run_section("poison", fn) == 1.0
        assert runtime.stats.untraceable == 1
        assert runtime.run_section("poison", fn) == 1.0
        assert runtime.stats.eager == 1
        assert runtime.stats.hits == 0

    def test_sections_do_not_nest(self, runtime):
        def outer():
            return runtime.run_section("inner", lambda: 1)

        with pytest.raises(RuntimeError, match="nest"):
            runtime.run_section("outer", outer)

    def test_second_runtime_refuses_to_install(self, runtime):
        other = TraceRuntime()
        with pytest.raises(RuntimeError, match="already installed"):
            other.install()

    def test_stats_merge_sums_counters(self):
        a = TraceStats()
        a.hits, a.misses, a.fallbacks = 8, 2, 1
        b = TraceStats()
        b.hits, b.misses, b.evictions = 4, 1, 2
        merged = TraceStats.merge(
            [
                dict(
                    a.as_dict(),
                    arena={"slabs": 3, "nbytes": 100, "rebinds": 1, "reuses": 1},
                ),
                dict(
                    b.as_dict(),
                    arena={"slabs": 2, "nbytes": 50, "rebinds": 0, "reuses": 2},
                ),
                None,
            ]
        )
        assert merged["hits"] == 12
        assert merged["misses"] == 3
        assert merged["fallbacks"] == 1
        assert merged["evictions"] == 2
        # ``sections`` counts attempts: a fallback section contributes both
        # its failed replay and the re-record miss.
        assert merged["sections"] == 16
        assert merged["arena"] == {
            "slabs": 5,
            "nbytes": 150,
            "rebinds": 1,
            "reuses": 3,
        }
        assert merged["hit_rate"] == pytest.approx(12 / 16)


# ----------------------------------------------------------------------
# configuration guard rails
# ----------------------------------------------------------------------
class TestTraceability:
    def test_dropout_is_refused_upfront(self, task):
        model = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3, dropout=0.2))
        with pytest.raises(ValueError, match="dropout"):
            check_traceable(model)
        from repro.optim import Adam

        executor = StepExecutor(model, Adam(model.parameters(), lr=1e-3), traced=True)
        with pytest.raises(ValueError, match="dropout"):
            executor.open()

    def test_eval_mode_dropout_is_traceable(self, task):
        model = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3, dropout=0.2))
        model.eval()
        check_traceable(model)

    def test_executor_close_releases_the_runtime(self, task):
        from repro.optim import Adam

        model = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3))
        executor = StepExecutor(model, Adam(model.parameters(), lr=1e-3), traced=True)
        executor.open()
        assert executor._trace_runtime is not None
        executor.close()
        assert executor.trace_stats is not None
        # A fresh runtime can install afterwards (no dangling patches).
        follow_up = TraceRuntime()
        follow_up.install()
        follow_up.uninstall()

    def test_engine_dtype_is_part_of_the_section_key(self, task, rng):
        """A dtype flip must re-trace, not replay a stale program."""
        runtime = TraceRuntime()
        runtime.install()
        try:
            weight64 = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
            x_data = rng.standard_normal((4, 3))
            key64 = ("step", tensor_engine.get_dtype().str)
            runtime.run_section(key64, linear_relu_section(weight64, x_data))
            with tensor_engine.engine_dtype("float32"):
                key32 = ("step", tensor_engine.get_dtype().str)
                assert key32 != key64
                weight32 = Tensor(
                    rng.standard_normal((3, 3)), requires_grad=True
                )
                runtime.run_section(
                    key32, linear_relu_section(weight32, x_data)
                )
            assert runtime.stats.misses == 2
            assert runtime.stats.fallbacks == 0
        finally:
            runtime.uninstall()
