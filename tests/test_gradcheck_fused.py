"""Finite-difference gradient checks for the sparse and fused operations.

Every op that implements a hand-derived backward rule (the fused kernels
introduced for the hot path, plus the sparse message-passing primitives) is
validated against a central-difference numerical gradient in float64 with
absolute tolerance 1e-5.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph.message_passing import segment_mean, segment_softmax_attend, spmm
from repro.tensor import Tensor, ops

TOL = 1e-5


def numerical_gradient(function, value, eps=1e-6):
    """Central-difference gradient of a scalar function of one array."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    iterator = np.nditer(value, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        plus = value.copy()
        plus[index] += eps
        minus = value.copy()
        minus[index] -= eps
        grad[index] = (function(plus) - function(minus)) / (2 * eps)
        iterator.iternext()
    return grad


def check_gradients(build_scalar, arrays, tol=TOL):
    """Assert autograd gradients of ``build_scalar`` match finite differences.

    ``build_scalar`` receives one Tensor per input array and must return a
    scalar Tensor.  Each input is checked independently.
    """
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    build_scalar(*tensors).backward()
    for position, array in enumerate(arrays):
        def partial(value, position=position):
            replaced = [
                Tensor(value if i == position else a)
                for i, a in enumerate(arrays)
            ]
            return build_scalar(*replaced).item()

        expected = numerical_gradient(partial, array)
        actual = tensors[position].grad
        assert actual is not None, f"input {position} received no gradient"
        assert np.allclose(actual, expected, atol=tol), (
            f"gradient mismatch for input {position}: "
            f"max err {np.max(np.abs(actual - expected)):.2e}"
        )


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestSparseOps:
    def test_spmm(self, rng):
        matrix = sp.random(6, 5, density=0.5, random_state=3, format="csr")
        features = rng.standard_normal((5, 4))
        check_gradients(lambda f: spmm(matrix, f).sum(), [features])

    def test_spmm_weighted_loss(self, rng):
        matrix = sp.random(4, 7, density=0.6, random_state=5, format="csr")
        features = rng.standard_normal((7, 3))
        weights = rng.standard_normal((4, 3))
        check_gradients(lambda f: (spmm(matrix, f) * weights).sum(), [features])

    def test_segment_mean(self, rng):
        features = rng.standard_normal((8, 3))
        segments = np.array([0, 0, 1, 2, 2, 2, 4, 4])  # segment 3 empty
        downstream = rng.standard_normal((5, 3))
        check_gradients(
            lambda f: (segment_mean(f, segments, 5) * downstream).sum(),
            [features],
        )

    def test_segment_softmax_attend(self, rng):
        num_users, num_items, dim = 5, 4, 3
        edge_users = np.array([0, 0, 1, 2, 2, 2, 4])
        edge_items = np.array([0, 1, 2, 0, 2, 3, 1])
        queries = rng.standard_normal((num_users, dim))
        keys = rng.standard_normal((num_items, dim))
        values = rng.standard_normal((num_items, dim))
        downstream = rng.standard_normal((num_users, dim))

        def scalar(q, k, v):
            out = segment_softmax_attend(q, k, v, edge_users, edge_items, num_users)
            return (out * downstream).sum()

        check_gradients(scalar, [queries, keys, values])


class TestFusedLinear:
    @pytest.mark.parametrize("activation", [None, "relu", "sigmoid", "tanh"])
    def test_linear_activations(self, rng, activation):
        x = rng.standard_normal((6, 4))
        weight = rng.standard_normal((4, 3))
        bias = rng.standard_normal(3)
        downstream = rng.standard_normal((6, 3))

        def scalar(xt, wt, bt):
            return (ops.linear(xt, wt, bt, activation=activation) * downstream).sum()

        check_gradients(scalar, [x, weight, bias])

    def test_linear_no_bias(self, rng):
        x = rng.standard_normal((5, 3))
        weight = rng.standard_normal((3, 2))
        check_gradients(lambda xt, wt: ops.linear(xt, wt).sum(), [x, weight])

    def test_linear_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            ops.linear(np.ones((2, 2)), np.ones((2, 2)), activation="gelu")

    def test_addmm(self, rng):
        c = rng.standard_normal((4, 3))
        a = rng.standard_normal((4, 5))
        b = rng.standard_normal((5, 3))
        check_gradients(
            lambda ct, at, bt: ops.addmm(ct, at, bt, beta=0.5, alpha=2.0).sum(),
            [c, a, b],
        )

    def test_addmm_matches_composition(self, rng):
        c = rng.standard_normal((3, 2))
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        fused = ops.addmm(c, a, b)
        composed = Tensor(c) + ops.matmul(Tensor(a), Tensor(b))
        assert np.allclose(fused.data, composed.data)


class TestFusedLossAndGates:
    def test_softmax_cross_entropy(self, rng):
        logits = rng.standard_normal((5, 4))
        targets = rng.dirichlet(np.ones(4), size=5)
        check_gradients(
            lambda lt: ops.softmax_cross_entropy(lt, targets, reduction="mean"),
            [logits],
        )

    def test_softmax_cross_entropy_sum_and_none(self, rng):
        logits = rng.standard_normal((4, 3))
        targets = np.eye(3)[[0, 2, 1, 0]]
        weights = rng.standard_normal(4)
        check_gradients(
            lambda lt: ops.softmax_cross_entropy(lt, targets, reduction="sum"),
            [logits],
        )
        check_gradients(
            lambda lt: (
                ops.softmax_cross_entropy(lt, targets, reduction="none") * weights
            ).sum(),
            [logits],
        )

    def test_softmax_cross_entropy_matches_log_softmax(self, rng):
        logits = rng.standard_normal((6, 5))
        targets = np.eye(5)[rng.integers(0, 5, 6)]
        fused = ops.softmax_cross_entropy(Tensor(logits), targets, reduction="mean")
        composed = -(Tensor(targets) * ops.log_softmax(Tensor(logits), axis=-1)).sum(
            axis=1
        ).mean()
        assert np.allclose(fused.data, composed.data, atol=1e-12)

    def test_binary_cross_entropy_probs(self, rng):
        probabilities = rng.uniform(0.05, 0.95, size=(6, 1))
        targets = rng.integers(0, 2, size=(6, 1)).astype(float)
        check_gradients(
            lambda pt: ops.binary_cross_entropy_probs(pt, targets, reduction="mean"),
            [probabilities],
        )

    def test_binary_cross_entropy_probs_weighted_sum(self, rng):
        probabilities = rng.uniform(0.05, 0.95, size=(8, 1))
        targets = rng.integers(0, 2, size=(8, 1)).astype(float)
        weights = rng.uniform(0.1, 2.0, size=(8, 1))
        check_gradients(
            lambda pt: ops.binary_cross_entropy_probs(
                pt, targets, weights=weights, reduction="sum"
            ),
            [probabilities],
        )

    def test_gated_tanh_mix(self, rng):
        first = rng.standard_normal((5, 3))
        second = rng.standard_normal((5, 3))
        logits = rng.standard_normal((5, 3))
        downstream = rng.standard_normal((5, 3))
        check_gradients(
            lambda f, s, g: (ops.gated_tanh_mix(f, s, g) * downstream).sum(),
            [first, second, logits],
        )

    def test_gated_tanh_mix_broadcast_second(self, rng):
        first = rng.standard_normal((5, 3))
        second = rng.standard_normal((1, 3))
        logits = rng.standard_normal((5, 3))
        downstream = rng.standard_normal((5, 3))
        check_gradients(
            lambda f, s, g: (ops.gated_tanh_mix(f, s, g) * downstream).sum(),
            [first, second, logits],
        )


class TestRowOps:
    def test_gather_rows_repeated_indices(self, rng):
        table = rng.standard_normal((6, 3))
        indices = np.array([0, 2, 2, 5, 0, 0])
        downstream = rng.standard_normal((6, 3))
        check_gradients(
            lambda t: (ops.gather_rows(t, indices) * downstream).sum(), [table]
        )

    def test_gather_concat_rows(self, rng):
        first = rng.standard_normal((5, 3))
        second = rng.standard_normal((5, 3))
        indices = np.array([4, 1, 1, 0])
        downstream = rng.standard_normal((8, 3))
        check_gradients(
            lambda a, b: (ops.gather_concat_rows([a, b], indices) * downstream).sum(),
            [first, second],
        )

    def test_gather_concat_rows_matches_concat_of_gathers(self, rng):
        first = Tensor(rng.standard_normal((4, 2)))
        second = Tensor(rng.standard_normal((4, 2)))
        indices = np.array([3, 3, 0])
        fused = ops.gather_concat_rows([first, second], indices)
        composed = ops.concat(
            [ops.gather_rows(first, indices), ops.gather_rows(second, indices)], axis=0
        )
        assert np.allclose(fused.data, composed.data)

    def test_broadcast_rows(self, rng):
        row = rng.standard_normal((1, 4))
        downstream = rng.standard_normal((6, 4))
        check_gradients(
            lambda r: (ops.broadcast_rows(r, 6) * downstream).sum(), [row]
        )

    def test_scatter_rows(self, rng):
        updates = rng.standard_normal((3, 2))
        indices = np.array([4, 0, 2])
        downstream = rng.standard_normal((6, 2))
        check_gradients(
            lambda u: (ops.scatter_rows(u, indices, 6) * downstream).sum(), [updates]
        )

    def test_pair_feature_concat(self, rng):
        u = rng.standard_normal((4, 3))
        v = rng.standard_normal((4, 3))
        downstream = rng.standard_normal((4, 9))
        check_gradients(
            lambda ut, vt: (ops.pair_feature_concat(ut, vt) * downstream).sum(), [u, v]
        )

    def test_pair_feature_concat_no_interaction(self, rng):
        u = rng.standard_normal((4, 3))
        v = rng.standard_normal((4, 3))
        downstream = rng.standard_normal((4, 6))
        check_gradients(
            lambda ut, vt: (
                ops.pair_feature_concat(ut, vt, interaction=False) * downstream
            ).sum(),
            [u, v],
        )
