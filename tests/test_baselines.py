"""Tests for the eleven comparison baselines and the model registry."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_MODEL_NAMES,
    BASELINE_NAMES,
    MODEL_GROUPS,
    BPRModel,
    CoNetModel,
    DMLModel,
    GADTCDRModel,
    HeroGraphModel,
    LRModel,
    MiNetModel,
    MMoEModel,
    NeuMFModel,
    PLEModel,
    PTUPCDRModel,
    available_models,
    build_global_user_index,
    build_model,
)
from repro.core import CDRTrainer, NMCDR, TrainerConfig
from repro.data.dataloader import Batch

ALL_BASELINE_CLASSES = [
    LRModel,
    BPRModel,
    NeuMFModel,
    MMoEModel,
    PLEModel,
    CoNetModel,
    MiNetModel,
    GADTCDRModel,
    DMLModel,
    HeroGraphModel,
    PTUPCDRModel,
]


def small_batch(label_pattern=(1.0, 0.0, 1.0, 0.0)):
    return Batch(
        users=np.array([0, 1, 2, 3]),
        items=np.array([0, 1, 2, 3]),
        labels=np.array(label_pattern),
    )


class TestAllBaselinesShared:
    @pytest.mark.parametrize("model_class", ALL_BASELINE_CLASSES)
    def test_scores_are_probabilities(self, model_class, tiny_task):
        model = model_class(tiny_task, embedding_dim=8, seed=0)
        users = np.array([0, 1, 2, 3, 4])
        items = np.array([0, 1, 2, 3, 4])
        for key in ("a", "b"):
            scores = model.score(key, users, items)
            assert scores.shape == (5,)
            assert np.all((scores >= 0) & (scores <= 1))

    @pytest.mark.parametrize("model_class", ALL_BASELINE_CLASSES)
    def test_loss_is_finite_and_differentiable(self, model_class, tiny_task):
        model = model_class(tiny_task, embedding_dim=8, seed=0)
        loss = model.compute_batch_loss({"a": small_batch(), "b": small_batch()})
        assert np.isfinite(loss.item())
        loss.backward()
        assert any(p.grad is not None and np.any(p.grad != 0) for p in model.parameters())

    @pytest.mark.parametrize("model_class", ALL_BASELINE_CLASSES)
    def test_has_display_name(self, model_class, tiny_task):
        model = model_class(tiny_task, embedding_dim=8)
        assert model.display_name in BASELINE_NAMES

    def test_empty_batches_rejected(self, tiny_task):
        model = LRModel(tiny_task, embedding_dim=8)
        with pytest.raises(ValueError):
            model.compute_batch_loss({"a": None, "b": None})

    def test_single_domain_batch_accepted(self, tiny_task):
        model = NeuMFModel(tiny_task, embedding_dim=8)
        loss = model.compute_batch_loss({"a": small_batch(), "b": None})
        assert np.isfinite(loss.item())


class TestSpecificBehaviours:
    def test_bpr_uses_pairwise_loss(self, tiny_task):
        model = BPRModel(tiny_task, embedding_dim=8, seed=0)
        batch_all_negative = small_batch(label_pattern=(0.0, 0.0, 0.0, 0.0))
        # falls back to pointwise BCE without positives and must stay finite
        loss = model.domain_batch_loss("a", batch_all_negative)
        assert np.isfinite(loss.item())
        pairwise = model.domain_batch_loss("a", small_batch())
        assert np.isfinite(pairwise.item())

    def test_dml_extra_losses_present(self, tiny_task):
        model = DMLModel(tiny_task, embedding_dim=8, seed=0)
        extra = model.extra_losses()
        assert extra is not None and np.isfinite(extra.item())

    def test_dml_orthogonality_term_decreases_when_identity(self, tiny_task):
        model = DMLModel(tiny_task, embedding_dim=8, seed=0)
        base = model.extra_losses().item()
        model.mapping.weight.data = np.eye(8)
        after = model.extra_losses().item()
        assert after < base

    def test_global_user_index_alignment(self, tiny_task):
        num_global, index_a, index_b = build_global_user_index(tiny_task)
        pairs = tiny_task.overlap_pairs
        assert np.array_equal(index_a[pairs[:, 0]], index_b[pairs[:, 1]])
        assert num_global == len(set(index_a.tolist()) | set(index_b.tolist()))

    def test_conet_cross_connection_uses_partner(self, tiny_task):
        model = CoNetModel(tiny_task, embedding_dim=8, seed=0)
        pairs = tiny_task.overlap_pairs
        assert pairs.size > 0
        overlapped_user = int(pairs[0, 0])
        partner = int(pairs[0, 1])
        items = np.array([0])
        before = model.score("a", np.array([overlapped_user]), items)
        model.user_embedding_b.weight.data[partner] += 5.0
        after = model.score("a", np.array([overlapped_user]), items)
        assert not np.allclose(before, after)

    def test_conet_non_overlapped_unaffected_by_other_domain(self, tiny_task):
        model = CoNetModel(tiny_task, embedding_dim=8, seed=0)
        non_overlapped = int(tiny_task.non_overlap_indices("a")[0])
        items = np.array([0])
        before = model.score("a", np.array([non_overlapped]), items)
        model.user_embedding_b.weight.data += 1.0
        after = model.score("a", np.array([non_overlapped]), items)
        assert np.allclose(before, after)

    def test_ptupcdr_transfer_depends_on_source_history(self, tiny_task):
        model = PTUPCDRModel(tiny_task, embedding_dim=8, seed=0)
        pairs = tiny_task.overlap_pairs
        overlapped_user = int(pairs[0, 0])
        before = model.score("a", np.array([overlapped_user]), np.array([0]))
        model.item_embedding_b.weight.data += 2.0
        after = model.score("a", np.array([overlapped_user]), np.array([0]))
        assert not np.allclose(before, after)

    def test_herograph_global_graph_size(self, tiny_task):
        model = HeroGraphModel(tiny_task, embedding_dim=8, seed=0)
        expected_items = tiny_task.domain_a.num_items + tiny_task.domain_b.num_items
        assert model._global_graph.num_items == expected_items
        assert model._global_graph.num_users == model._num_global_users

    def test_minet_interest_attention_normalised(self, tiny_task, rng):
        model = MiNetModel(tiny_task, embedding_dim=8, seed=0)
        users = np.array([0, 1])
        items = np.array([0, 1])
        scores = model.score("a", users, items)
        assert scores.shape == (2,)


class TestRegistry:
    def test_all_names_buildable(self, tiny_task):
        for name in ALL_MODEL_NAMES:
            model = build_model(name, tiny_task, embedding_dim=8, seed=0)
            assert model is not None

    def test_nmcdr_and_variants(self, tiny_task):
        model = build_model("NMCDR", tiny_task, embedding_dim=8)
        assert isinstance(model, NMCDR)
        variant = build_model("NMCDR/w/o-Cgm", tiny_task, embedding_dim=8)
        assert isinstance(variant, NMCDR)
        assert not variant.config.use_inter_matching

    def test_unknown_model(self, tiny_task):
        with pytest.raises(KeyError):
            build_model("DeepFM", tiny_task)

    def test_groups_cover_all_names(self):
        grouped = [name for names in MODEL_GROUPS.values() for name in names]
        assert set(grouped) == set(ALL_MODEL_NAMES)
        assert set(available_models()) >= set(ALL_MODEL_NAMES)

    def test_baseline_trains_with_shared_trainer(self, tiny_task):
        model = build_model("GA-DTCDR", tiny_task, embedding_dim=8, seed=0)
        trainer = CDRTrainer(
            model, tiny_task, TrainerConfig(num_epochs=2, batch_size=512, num_eval_negatives=15)
        )
        history = trainer.fit()
        assert history.epoch_losses[-1] < history.epoch_losses[0]
        metrics = trainer.evaluate()
        assert 0.0 <= metrics["a"]["hr@10"] <= 1.0
