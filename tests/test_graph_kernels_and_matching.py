"""Tests for GNN kernels, sparse message passing and matching-neighbour sampling."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    GATConv,
    GCNConv,
    HeadTailPartition,
    InteractionGraph,
    MatchingNeighborSampler,
    VanillaGNNConv,
    kernel_by_name,
    segment_mean,
    spmm,
)
from repro.tensor import Tensor


@pytest.fixture()
def graph():
    users = [0, 0, 1, 2, 2, 2]
    items = [0, 1, 1, 0, 1, 2]
    return InteractionGraph(3, 3, users, items)


class TestSpmm:
    def test_forward_matches_dense(self, rng):
        matrix = sp.random(5, 4, density=0.5, random_state=0, format="csr")
        features = rng.normal(size=(4, 3))
        out = spmm(matrix, Tensor(features))
        assert np.allclose(out.data, matrix @ features)

    def test_backward_is_transpose(self, rng):
        matrix = sp.random(5, 4, density=0.5, random_state=0, format="csr")
        features = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        spmm(matrix, features).sum().backward()
        expected = matrix.T @ np.ones((5, 3))
        assert np.allclose(features.grad, expected)

    def test_shape_mismatch(self, rng):
        matrix = sp.eye(3, format="csr")
        with pytest.raises(ValueError):
            spmm(matrix, Tensor(rng.normal(size=(4, 2))))

    def test_segment_mean(self):
        features = Tensor(np.array([[1.0], [3.0], [10.0]]), requires_grad=True)
        out = segment_mean(features, np.array([0, 0, 1]), num_segments=3)
        assert np.allclose(out.data, [[2.0], [10.0], [0.0]])
        out.sum().backward()
        assert np.allclose(features.grad, [[0.5], [0.5], [1.0]])

    def test_segment_mean_length_mismatch(self):
        with pytest.raises(ValueError):
            segment_mean(Tensor(np.ones((3, 1))), np.array([0, 1]), num_segments=2)


class TestKernels:
    @pytest.mark.parametrize("kernel_name", ["vanilla", "gcn", "gat"])
    def test_forward_shapes(self, kernel_name, graph, rng):
        kernel = kernel_by_name(kernel_name, 8, 6, rng=rng)
        users = Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        items = Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        user_out, item_out = kernel(graph, users, items)
        assert user_out.shape == (3, 6)
        assert item_out.shape == (3, 6)

    @pytest.mark.parametrize("kernel_name", ["vanilla", "gcn", "gat"])
    def test_gradients_reach_inputs(self, kernel_name, graph, rng):
        kernel = kernel_by_name(kernel_name, 4, 4, rng=rng)
        users = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        items = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        user_out, item_out = kernel(graph, users, items)
        (user_out.sum() + item_out.sum()).backward()
        assert users.grad is not None and np.any(users.grad != 0)
        assert items.grad is not None and np.any(items.grad != 0)

    def test_vanilla_isolated_user_keeps_self_message(self, rng):
        graph = InteractionGraph(2, 2, [0], [0])  # user 1 isolated
        kernel = VanillaGNNConv(4, 4, rng=rng)
        users = Tensor(rng.normal(size=(2, 4)))
        items = Tensor(rng.normal(size=(2, 4)))
        user_out, _ = kernel(graph, users, items)
        expected_isolated = np.maximum(
            users.data[1] @ kernel.user_transform.weight.data + kernel.user_transform.bias.data, 0.0
        )
        assert np.allclose(user_out.data[1], expected_isolated)

    def test_outputs_are_non_negative_after_relu(self, graph, rng):
        kernel = GCNConv(4, 4, rng=rng)
        user_out, item_out = kernel(
            graph, Tensor(rng.normal(size=(3, 4))), Tensor(rng.normal(size=(3, 4)))
        )
        assert np.all(user_out.data >= 0)
        assert np.all(item_out.data >= 0)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            kernel_by_name("transformer", 4, 4)

    def test_gat_attention_weights_normalised(self, graph, rng):
        kernel = GATConv(4, 4, rng=rng)
        logits = rng.normal(size=graph.num_edges)
        weights = kernel._edge_softmax(logits, graph.user_indices, graph.num_users)
        per_user = np.zeros(graph.num_users)
        np.add.at(per_user, graph.user_indices, weights)
        assert np.allclose(per_user[graph.user_degrees() > 0], 1.0)


class TestHeadTailPartition:
    def test_partition_counts(self):
        partition = HeadTailPartition(np.array([1, 5, 10, 2]), threshold=4)
        assert set(partition.head_users) == {1, 2}
        assert set(partition.tail_users) == {0, 3}
        assert partition.is_head(2)
        assert not partition.is_head(0)

    def test_summary(self):
        partition = HeadTailPartition(np.array([1, 10]), threshold=5)
        summary = partition.summary()
        assert summary["num_head"] == 1
        assert summary["num_tail"] == 1
        assert summary["head_fraction"] == pytest.approx(0.5)

    def test_negative_threshold(self):
        with pytest.raises(ValueError):
            HeadTailPartition(np.array([1]), threshold=-1)


class TestMatchingNeighborSampler:
    def test_no_limit_returns_all(self):
        sampler = MatchingNeighborSampler(max_neighbors=None)
        candidates = np.arange(10)
        assert np.array_equal(sampler.sample(candidates), candidates)

    def test_limit_respected_and_subset(self):
        sampler = MatchingNeighborSampler(max_neighbors=3, rng=np.random.default_rng(0))
        candidates = np.arange(100)
        sampled = sampler.sample(candidates)
        assert sampled.size == 3
        assert np.all(np.isin(sampled, candidates))
        assert np.array_equal(sampled, np.sort(sampled))

    def test_sample_partition(self):
        partition = HeadTailPartition(np.arange(20), threshold=9)
        sampler = MatchingNeighborSampler(max_neighbors=5, rng=np.random.default_rng(0))
        head, tail = sampler.sample_partition(partition)
        assert head.size == 5 and tail.size == 5

    def test_invalid_max_neighbors(self):
        with pytest.raises(ValueError):
            MatchingNeighborSampler(max_neighbors=0)
