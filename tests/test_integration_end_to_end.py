"""Integration tests exercising the full pipeline the way the benches do."""

import numpy as np
import pytest

from repro.analysis import stagewise_alignment
from repro.baselines import build_model
from repro.core import CDRTrainer, NMCDR, NMCDRConfig, TrainerConfig, build_task, stability_report
from repro.data import load_scenario, preprocess_scenario
from repro.experiments import ExperimentSettings, run_scenario


class TestFullPipeline:
    def test_scenario_to_metrics(self):
        """Generate -> preprocess -> Ku manipulation -> train -> evaluate, end to end."""
        dataset = load_scenario("phone_elec", scale=0.3, seed=1)
        dataset = preprocess_scenario(dataset, min_interactions=3)
        dataset = dataset.with_overlap_ratio(0.5, rng=np.random.default_rng(0))
        task = build_task(dataset, head_threshold=5)

        model = NMCDR(
            task,
            NMCDRConfig(embedding_dim=16, max_matching_neighbors=32, seed=0),
        )
        trainer = CDRTrainer(
            model, task, TrainerConfig(num_epochs=4, batch_size=256, num_eval_negatives=30)
        )
        history = trainer.fit()
        metrics = trainer.evaluate()

        assert history.epoch_losses[-1] < history.epoch_losses[0]
        chance = 10.0 / 31.0
        assert metrics["a"]["hr@10"] > chance
        assert metrics["b"]["hr@10"] > chance

    def test_nmcdr_competitive_with_single_domain_baseline(self):
        """On a mid-overlap task NMCDR should at least match a pure popularity/linear model."""
        settings = ExperimentSettings(
            scenario="cloth_sport",
            scale=0.4,
            overlap_ratio=0.5,
            num_epochs=6,
            num_eval_negatives=40,
            embedding_dim=16,
        )
        result = run_scenario(settings, ["LR", "NMCDR"])
        nmcdr_avg = (
            result.results["NMCDR"].metric("a", "ndcg@10")
            + result.results["NMCDR"].metric("b", "ndcg@10")
        ) / 2
        lr_avg = (
            result.results["LR"].metric("a", "ndcg@10")
            + result.results["LR"].metric("b", "ndcg@10")
        ) / 2
        assert nmcdr_avg > 0.5 * lr_avg

    def test_overlap_helps_cdr_model(self):
        """GA-DTCDR (overlap-dependent) should not get worse with much more overlap."""
        low = ExperimentSettings(
            scenario="music_movie", scale=0.3, overlap_ratio=0.0, num_epochs=4,
            num_eval_negatives=30, embedding_dim=16,
        )
        high = ExperimentSettings(
            scenario="music_movie", scale=0.3, overlap_ratio=1.0, num_epochs=4,
            num_eval_negatives=30, embedding_dim=16,
        )
        low_result = run_scenario(low, ["NMCDR"])
        high_result = run_scenario(high, ["NMCDR"])
        low_score = low_result.results["NMCDR"].metric("a", "ndcg@10")
        high_score = high_result.results["NMCDR"].metric("a", "ndcg@10")
        # allow noise, but full overlap should not be dramatically worse
        assert high_score >= 0.6 * low_score

    def test_analysis_pipeline_on_trained_model(self, trained_nmcdr):
        alignment = stagewise_alignment(
            trained_nmcdr,
            "a",
            rng=np.random.default_rng(0),
        )
        assert len(alignment) == 3
        report = stability_report(trained_nmcdr, "a", rng=np.random.default_rng(0))
        assert report.theoretical_bound_coefficient > 0

    def test_baseline_and_nmcdr_share_task_state(self, tiny_task):
        """Training a baseline must not corrupt the task used by another model."""
        before_users = tiny_task.domain_a.split.train_users.copy()
        model = build_model("HeroGraph", tiny_task, embedding_dim=8)
        CDRTrainer(
            model,
            tiny_task,
            TrainerConfig(num_epochs=1, num_eval_negatives=10),
        ).fit()
        assert np.array_equal(before_users, tiny_task.domain_a.split.train_users)

    def test_reproducibility_of_training(self):
        settings = dict(embedding_dim=8, max_matching_neighbors=16, seed=3)
        dataset = preprocess_scenario(
            load_scenario("loan_fund", scale=0.25, seed=2),
            min_interactions=3,
        )
        task = build_task(dataset)

        def run():
            model = NMCDR(task, NMCDRConfig(**settings))
            trainer = CDRTrainer(
                model, task, TrainerConfig(num_epochs=2, num_eval_negatives=20, seed=11)
            )
            trainer.fit()
            return trainer.evaluate()

        first = run()
        second = run()
        assert first["a"]["ndcg@10"] == pytest.approx(second["a"]["ndcg@10"])
        assert first["b"]["hr@10"] == pytest.approx(second["b"]["hr@10"])
