"""Resilient-serving tests: typed errors, deadlines, ladder, hot reload.

The request-path and reload guarantees gated here (tier 1 — the
fault-injected drills live in ``tests/test_serve_faults.py``):

* a malformed JSONL line or a failing request yields a *typed* error
  response and the serving loop keeps answering — one bad request can
  never kill the process;
* the bounded admission queue sheds excess requests with a typed
  ``overload`` response and recovers on the next within-limit batch;
* expired deadlines answer with a typed ``deadline_exceeded`` response,
  and deadline-path scoring is bit-identical to the grouped fast path;
* the degradation ladder resolves fresh → stale (flagged) → cold path
  (every user served from the matching-module output) → typed
  unavailable, with every rung counted on ``ServeHealth``;
* a hot reload swaps to answers bit-identical to a cold rebuild of the
  new checkpoint (float64), bumps the serving generation by one, and a
  corrupt candidate rolls back with the old generation still serving;
* store/checkpoint integrity errors carry the offending path, digest and
  generation in their message.
"""

from __future__ import annotations

import io
import json
import shutil

import numpy as np
import pytest

from repro.core.checkpoint import (
    CheckpointError,
    generator_state,
    list_checkpoints,
    load_checkpoint,
)
from repro.serve import (
    CheckpointWatcher,
    DeadlineExceeded,
    ErrorResponse,
    HotReloader,
    RepresentationStore,
    ScoreRequest,
    Scorer,
    ServeHealth,
    ServeOverloadError,
    ServeSession,
    ServeUnavailableError,
    StaleRepresentationError,
    StoreError,
)
from repro.tensor.trace import model_rng_sources


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """A trained checkpoint directory with two checkpoints (epochs 1 and 2)."""
    from repro.cli import main as cli_main

    directory = tmp_path_factory.mktemp("serve-resilience") / "run"
    rc = cli_main(
        [
            "train",
            "--scenario", "cloth_sport",
            "--scale", "0.3",
            "--epochs", "2",
            "--embedding-dim", "16",
            "--negatives", "10",
            "--seed", "0",
            "--checkpoint-dir", str(directory),
            "--checkpoint-every", "1",
        ]
    )
    assert rc == 0
    assert len(list_checkpoints(directory)) == 2
    return directory


@pytest.fixture()
def session(run_dir):
    return ServeSession.from_checkpoint_dir(run_dir, use_best=False)


def _first_checkpoint_session(run_dir, **kwargs):
    first = list_checkpoints(run_dir)[0]
    return ServeSession.from_checkpoint_dir(
        run_dir, checkpoint=first, use_best=False, **kwargs
    )


# ----------------------------------------------------------------------
# typed errors keep the loop alive
# ----------------------------------------------------------------------
class TestRobustLoop:
    def test_malformed_line_yields_typed_error_and_loop_survives(self, session):
        lines = [
            "this is not json",
            json.dumps({"domain": "a", "user": 0, "k": 3}),
            json.dumps([1, 2, 3]),  # valid JSON, not an object
            json.dumps({"domain": "a", "user": 1, "k": 3}),
        ]
        responses = [json.loads(out) for out in session.serve_lines(lines, robust=True)]
        assert [("error" in r) for r in responses] == [True, False, True, False]
        assert responses[0]["error"] == "malformed"
        assert responses[2]["error"] == "malformed"
        assert len(responses[1]["items"]) == 3
        assert session.health.error_codes["malformed"] == 2

    def test_bad_request_yields_typed_error_and_loop_survives(self, session):
        lines = [
            json.dumps({"domain": "zz", "user": 0}),  # unknown domain
            json.dumps({"user": 0}),  # missing domain key
            json.dumps({"domain": "b", "user": 2, "k": 4}),
        ]
        responses = [json.loads(out) for out in session.serve_lines(lines, robust=True)]
        assert responses[0]["error"] == "bad_request"
        assert responses[1]["error"] == "bad_request"
        assert len(responses[2]["items"]) == 4

    def test_strict_mode_still_raises(self, session):
        with pytest.raises(json.JSONDecodeError):
            list(session.serve_lines(["not json"]))

    def test_cli_stdin_loop_survives_malformed_lines(self, run_dir, monkeypatch, capsys):
        """The ``repro serve`` stdin regression: bad lines never kill the loop."""
        import sys

        from repro.cli import main as cli_main

        stdin_lines = "\n".join(
            [
                "garbage {{{",
                json.dumps({"domain": "a", "user": 0, "k": 2}),
                json.dumps({"domain": "nope", "user": 0}),
                json.dumps({"domain": "b", "user": 1}),
            ]
        )
        monkeypatch.setattr(sys, "stdin", io.StringIO(stdin_lines + "\n"))
        rc = cli_main(
            ["serve", "--checkpoint-dir", str(run_dir), "--topk", "3", "--health"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines() if line.strip()]
        assert len(responses) == 4
        assert responses[0]["error"] == "malformed"
        assert len(responses[1]["items"]) == 2
        assert responses[2]["error"] == "bad_request"
        assert len(responses[3]["items"]) == 3
        # --health printed a JSON snapshot with the failure ledger
        health_line = captured.err.strip().splitlines()[-1]
        snapshot = json.loads(health_line)
        assert snapshot["requests"]["ok"] == 2
        assert snapshot["requests"]["error_codes"]["malformed"] == 1
        assert snapshot["requests"]["error_codes"]["bad_request"] == 1


# ----------------------------------------------------------------------
# admission control + deadlines
# ----------------------------------------------------------------------
class TestAdmissionAndDeadlines:
    def test_overload_sheds_typed_and_recovers(self, session):
        scorer = Scorer(
            session.model, session.scorer.store, queue_limit=2, health=ServeHealth()
        )
        batch = [ScoreRequest("a", user, k=2) for user in range(5)]
        responses = scorer.score_batch(batch, collect_errors=True)
        kinds = [type(r).__name__ for r in responses]
        assert kinds == ["ScoreResponse"] * 2 + ["ErrorResponse"] * 3
        assert all(r.error == "overload" for r in responses[2:])
        assert scorer.health.shed == 3
        # recovery: the next within-limit batch is served in full
        again = scorer.score_batch(batch[:2], collect_errors=True)
        assert all(type(r).__name__ == "ScoreResponse" for r in again)

    def test_overload_raises_without_collect(self, session):
        scorer = Scorer(session.model, session.scorer.store, queue_limit=1)
        with pytest.raises(ServeOverloadError, match="queue full"):
            scorer.score_batch([ScoreRequest("a", 0), ScoreRequest("a", 1)])

    def test_expired_deadline_is_typed(self, session):
        scorer = Scorer(session.model, session.scorer.store, health=ServeHealth())
        request = ScoreRequest("a", 0, k=3, deadline_ms=0.0)
        response = scorer.score_batch([request], collect_errors=True)[0]
        assert isinstance(response, ErrorResponse)
        assert response.error == "deadline_exceeded"
        assert scorer.health.deadline_exceeded == 1
        with pytest.raises(DeadlineExceeded):
            scorer.score(ScoreRequest("a", 0, k=3, deadline_ms=0.0))

    def test_deadline_path_is_bit_identical_to_grouped(self, session):
        store = session.scorer.store
        relaxed = Scorer(session.model, store, default_deadline_ms=60_000.0)
        grouped = Scorer(session.model, store)
        requests = [
            ScoreRequest("a", 0, k=4),
            ScoreRequest("b", 3, k=5),
            ScoreRequest("a", 2, k=3, candidates=np.array([7, 1, 7, 0])),
        ]
        fast = grouped.score_batch(requests)
        slow = relaxed.score_batch(
            [
                ScoreRequest(r.domain, r.user, k=r.k, candidates=r.candidates)
                for r in requests
            ]
        )
        for lhs, rhs in zip(fast, slow):
            assert np.array_equal(lhs.items, rhs.items)
            assert lhs.scores.tolist() == rhs.scores.tolist()  # float64 exact


# ----------------------------------------------------------------------
# the degradation ladder
# ----------------------------------------------------------------------
class TestDegradationLadder:
    @pytest.fixture()
    def laddered(self, session):
        """A scorer over a store pinned at params_version 10, max_staleness 2."""
        store = RepresentationStore.build(
            session.model, session.task, params_version=10, max_staleness=2
        )
        return Scorer(session.model, store, hard_staleness=5, health=ServeHealth())

    def test_fresh_rung(self, laddered):
        response = laddered.score(ScoreRequest("a", 0, k=2), current_version=10)
        assert response.degraded is None
        assert laddered.health.served_fresh == 1

    def test_stale_rung_flags_degraded(self, laddered):
        response = laddered.score(ScoreRequest("a", 0, k=2), current_version=12)
        assert response.degraded == "stale"
        assert laddered.health.served_stale == 1

    def test_cold_path_rung_serves_matching_module_rows(self, session, laddered):
        response = laddered.score(ScoreRequest("a", 0, k=4), current_version=15)
        assert response.degraded == "cold_path"
        assert laddered.health.served_cold_path == 1
        # Every user — warm ones included — is served from user_g3.
        table = laddered.store.tables["a"]
        candidates = np.arange(table.num_items, dtype=np.int64)
        scores = session.model.score_pairs(
            "a",
            np.repeat(table.user_g3[0][None, :], candidates.shape[0], axis=0),
            table.items[candidates],
        )
        top = np.argsort(-scores, kind="stable")[:4]
        assert response.scores.tolist() == scores[top].tolist()

    def test_past_the_ladder_is_typed_unavailable(self, laddered):
        with pytest.raises(ServeUnavailableError, match="hard staleness"):
            laddered.score(ScoreRequest("a", 0, k=2), current_version=16)
        collected = laddered.score_batch(
            [ScoreRequest("a", 0, k=2)], current_version=16, collect_errors=True
        )
        assert collected[0].error == "unavailable"
        assert laddered.health.unavailable == 2

    def test_without_hard_staleness_the_old_contract_holds(self, session):
        store = RepresentationStore.build(
            session.model, session.task, params_version=10, max_staleness=2
        )
        scorer = Scorer(session.model, store)
        with pytest.raises(StaleRepresentationError) as excinfo:
            scorer.score(ScoreRequest("a", 0, k=2), current_version=13)
        # satellite: the error text carries the generation and versions
        message = str(excinfo.value)
        assert "generation 1" in message and "version 10" in message


# ----------------------------------------------------------------------
# hot reload: validate-then-swap
# ----------------------------------------------------------------------
REQUESTS = [
    {"domain": "a", "user": 0, "k": 5},
    {"domain": "b", "user": 3, "k": 4},
    {"domain": "a", "user": 2, "k": 3, "candidates": [9, 1, 9, 4]},
]


def _answers(session):
    return [session.answer(dict(payload)) for payload in REQUESTS]


class TestHotReload:
    def test_swap_is_bit_identical_to_cold_rebuild(self, run_dir):
        first, second = list_checkpoints(run_dir)
        hot = _first_checkpoint_session(run_dir)
        assert hot.checkpoint_path == first
        old_generation = hot.scorer.store.generation

        result = HotReloader(hot, use_best=False).reload(second)
        assert result.swapped
        assert result["generation"] == old_generation + 1
        assert hot.checkpoint_path == second
        assert hot.health.reload_swapped == 1
        assert hot.health.last_swap_generation == old_generation + 1

        cold = ServeSession.from_checkpoint_dir(
            run_dir, checkpoint=second, use_best=False
        )
        for hot_response, cold_response in zip(_answers(hot), _answers(cold)):
            assert hot_response["items"] == cold_response["items"]
            assert hot_response["scores"] == cold_response["scores"]  # float64
            assert hot_response["params_version"] == cold_response["params_version"]
        # rng continuity: the swapped session sits in the same rng state a
        # cold session would, so refresh/verify behave identically later.
        assert [generator_state(rng) for rng in model_rng_sources(hot.model)] == [
            generator_state(rng) for rng in model_rng_sources(cold.model)
        ]
        # ... and the verify reference path agrees with the hot answers.
        payload = dict(REQUESTS[0])
        assert hot.verify(payload, hot.answer(payload))

    def test_corrupt_candidate_rolls_back(self, run_dir, tmp_path):
        hot = _first_checkpoint_session(run_dir)
        before = _answers(hot)
        old_generation = hot.scorer.store.generation

        second = list_checkpoints(run_dir)[1]
        broken = tmp_path / second.name
        shutil.copy(second, broken)
        blob = bytearray(broken.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        broken.write_bytes(bytes(blob))

        result = HotReloader(hot, use_best=False).reload(broken)
        assert not result.swapped
        assert result["reason"] == "corrupt"
        assert str(broken) in result["message"]
        assert hot.health.reload_rejected == 1
        assert hot.health.reload_rejected_reasons == {"corrupt": 1}
        # the old generation is still serving, bit for bit
        assert hot.scorer.store.generation == old_generation
        assert _answers(hot) == before

    def test_config_mismatch_is_rejected(self, run_dir, tmp_path):
        hot = _first_checkpoint_session(run_dir)
        second = list_checkpoints(run_dir)[1]
        drifted = tmp_path / second.name
        shutil.copy(second, drifted)
        with np.load(drifted) as archive:
            meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
            arrays = {n: archive[n] for n in archive.files if n != "meta"}
        meta["config"]["batch_size"] = 9999
        payload = dict(arrays)
        payload["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez(open(drifted, "wb"), **payload)

        result = HotReloader(hot, use_best=False).reload(drifted)
        assert not result.swapped
        assert result["reason"] == "config"
        assert "batch_size" in result["message"]

    def test_watcher_offers_each_candidate_once(self, run_dir):
        first, second = list_checkpoints(run_dir)
        watcher = CheckpointWatcher(run_dir, current=first)
        assert watcher.poll() == second
        assert watcher.poll() is None  # not re-offered
        assert CheckpointWatcher(run_dir, current=second).poll() is None

    def test_serve_lines_polls_the_reloader(self, run_dir):
        hot = _first_checkpoint_session(run_dir)
        reloader = HotReloader(hot, use_best=False)
        lines = [json.dumps(dict(payload)) for payload in REQUESTS]
        responses = [json.loads(out) for out in hot.serve_lines(lines, robust=True)]
        # the newer checkpoint was discovered before the first request
        assert hot.health.reload_swapped == 0
        responses = [
            json.loads(out)
            for out in hot.serve_lines(lines, robust=True, reloader=reloader)
        ]
        assert hot.health.reload_swapped == 1
        cold = ServeSession.from_checkpoint_dir(
            run_dir, checkpoint=list_checkpoints(run_dir)[1], use_best=False
        )
        for response, cold_response in zip(responses, _answers(cold)):
            assert response["items"] == cold_response["items"]
            assert response["scores"] == cold_response["scores"]


# ----------------------------------------------------------------------
# error-text audit (satellite): path / digest / generation in messages
# ----------------------------------------------------------------------
class TestErrorText:
    def test_checkpoint_digest_mismatch_names_path_and_digests(self, run_dir, tmp_path):
        source = list_checkpoints(run_dir)[0]
        broken = tmp_path / source.name
        shutil.copy(source, broken)
        blob = bytearray(broken.read_bytes())
        blob[-200] ^= 0xFF
        broken.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(broken, params_only=True)
        message = str(excinfo.value)
        assert broken.name in message

    def test_store_digest_mismatch_names_generation_and_digests(self, session, tmp_path):
        path = session.scorer.store.save(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 3] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreError) as excinfo:
            RepresentationStore.load(tmp_path)
        message = str(excinfo.value)
        assert str(path) in message

    def test_health_snapshot_shape(self):
        health = ServeHealth()
        health.count_response("fresh")
        health.count_error("overload")
        health.count_reload("rejected", reason="canary")
        snapshot = health.snapshot()
        assert snapshot["requests"]["total"] == 2
        assert snapshot["requests"]["shed"] == 1
        assert snapshot["reload"]["rejected_reasons"] == {"canary": 1}
