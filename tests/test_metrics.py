"""Tests for ranking metrics, classification metrics and the evaluator."""

import numpy as np
import pytest

from repro.metrics import (
    RankingEvaluator,
    auc,
    conversion_rate,
    evaluate_split,
    hit_rate_at_k,
    log_loss,
    mrr,
    ndcg_at_k,
    rank_of_positive,
    ranking_report,
)


class TestRankingMetrics:
    def test_rank_of_positive(self):
        scores = np.array([[0.9, 0.1, 0.5], [0.1, 0.9, 0.5]])
        assert np.array_equal(rank_of_positive(scores), [1, 3])

    def test_rank_pessimistic_on_ties(self):
        scores = np.array([[0.5, 0.5, 0.1]])
        assert rank_of_positive(scores)[0] == 2

    def test_hit_rate_boundaries(self):
        scores = np.array([[0.9, 0.1], [0.1, 0.9]])
        assert hit_rate_at_k(scores, 1) == pytest.approx(0.5)
        assert hit_rate_at_k(scores, 2) == pytest.approx(1.0)

    def test_ndcg_values(self):
        scores = np.array([[0.9, 0.1, 0.2]])
        assert ndcg_at_k(scores, 10) == pytest.approx(1.0)
        scores_rank2 = np.array([[0.5, 0.9, 0.2]])
        assert ndcg_at_k(scores_rank2, 10) == pytest.approx(1.0 / np.log2(3))

    def test_ndcg_le_hr(self, rng):
        scores = rng.normal(size=(50, 100))
        assert ndcg_at_k(scores, 10) <= hit_rate_at_k(scores, 10) + 1e-12

    def test_mrr(self):
        scores = np.array([[0.9, 0.1], [0.1, 0.9]])
        assert mrr(scores) == pytest.approx((1.0 + 0.5) / 2)

    def test_perfect_and_worst_scorer(self):
        n = 20
        perfect = np.hstack([np.ones((n, 1)), np.zeros((n, 99))])
        worst = np.hstack([np.zeros((n, 1)), np.ones((n, 99))])
        assert ndcg_at_k(perfect, 10) == pytest.approx(1.0)
        assert hit_rate_at_k(worst, 10) == 0.0

    def test_random_scorer_hr_close_to_k_over_n(self, rng):
        scores = rng.random((2000, 100))
        assert hit_rate_at_k(scores, 10) == pytest.approx(0.1, abs=0.03)

    def test_ranking_report_keys(self, rng):
        report = ranking_report(rng.random((10, 20)), ks=(5, 10))
        assert set(report) == {"mrr", "hr@5", "ndcg@5", "hr@10", "ndcg@10"}

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            rank_of_positive(np.array([0.4, 0.2]))
        with pytest.raises(ValueError):
            hit_rate_at_k(np.ones((2, 3)), 0)
        with pytest.raises(ValueError):
            ndcg_at_k(np.ones((2, 3)), -1)

    def test_empty_input(self):
        empty = np.zeros((0, 5))
        assert hit_rate_at_k(empty, 5) == 0.0
        assert ndcg_at_k(empty, 5) == 0.0
        assert mrr(empty) == 0.0


class TestClassificationMetrics:
    def test_auc_perfect_and_inverted(self):
        labels = np.array([1, 1, 0, 0])
        assert auc(labels, np.array([0.9, 0.8, 0.2, 0.1])) == pytest.approx(1.0)
        assert auc(labels, np.array([0.1, 0.2, 0.8, 0.9])) == pytest.approx(0.0)

    def test_auc_random_is_half(self, rng):
        labels = rng.integers(0, 2, size=5000)
        scores = rng.random(5000)
        assert auc(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_auc_single_class(self):
        assert auc(np.ones(5), np.random.random(5)) == 0.5

    def test_auc_with_ties(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert auc(labels, scores) == pytest.approx(0.5)

    def test_log_loss(self):
        labels = np.array([1.0, 0.0])
        probabilities = np.array([0.8, 0.1])
        expected = -(np.log(0.8) + np.log(0.9)) / 2
        assert log_loss(labels, probabilities) == pytest.approx(expected)

    def test_log_loss_clipping(self):
        assert np.isfinite(log_loss(np.array([1.0]), np.array([0.0])))

    def test_conversion_rate(self):
        assert conversion_rate(np.array([1, 0, 1, 0]), 4) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            conversion_rate(np.array([1]), 0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            auc(np.array([1, 0]), np.array([0.5]))
        with pytest.raises(ValueError):
            log_loss(np.array([1, 0]), np.array([0.5]))


class _OracleScorer:
    """Scores the ground-truth positive column highest (uses the candidate list)."""

    def __init__(self, positives):
        self.positives = {int(user): int(item) for user, item in positives}

    def score(self, domain_key, users, items):
        return np.array(
            [1.0 if self.positives.get(int(u)) == int(i) else 0.0 for u, i in zip(users, items)]
        )


class _RandomScorer:
    def __init__(self, seed=0):
        self.rng = np.random.default_rng(seed)

    def score(self, domain_key, users, items):
        return self.rng.random(len(users))


class TestEvaluator:
    def test_oracle_gets_perfect_metrics(self, tiny_task):
        split = tiny_task.domain_a.split
        oracle = _OracleScorer(zip(split.test_users, split.test_items))
        report = evaluate_split(oracle, split, "a", num_negatives=20)
        assert report["hr@10"] == pytest.approx(1.0)
        assert report["ndcg@10"] == pytest.approx(1.0)

    def test_random_scorer_near_chance(self, tiny_task):
        split = tiny_task.domain_a.split
        evaluator = RankingEvaluator(
            split,
            "a",
            num_negatives=30,
            rng=np.random.default_rng(1),
        )
        report = evaluator.evaluate(_RandomScorer())
        expected = 10.0 / evaluator.candidates.shape[1]
        assert report["hr@10"] == pytest.approx(expected, abs=0.12)

    def test_candidate_matrix_shared_across_models(self, tiny_task):
        split = tiny_task.domain_a.split
        evaluator = RankingEvaluator(
            split,
            "a",
            num_negatives=20,
            rng=np.random.default_rng(3),
        )
        first = evaluator.candidates.copy()
        evaluator.evaluate(_RandomScorer())
        assert np.array_equal(first, evaluator.candidates)

    def test_invalid_domain_key(self, tiny_task):
        with pytest.raises(ValueError):
            RankingEvaluator(tiny_task.domain_a.split, "c")

    def test_score_matrix_shape(self, tiny_task):
        split = tiny_task.domain_a.split
        evaluator = RankingEvaluator(split, "a", num_negatives=15)
        matrix = evaluator.score_matrix(_RandomScorer())
        assert matrix.shape == (evaluator.num_eval_users, evaluator.candidates.shape[1])
