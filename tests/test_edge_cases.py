"""Additional edge-case coverage across the stack.

These tests target boundary conditions that the main suites do not exercise:
degenerate shapes in the autograd engine, extreme configurations of the data
pipeline and unusual but legal uses of the experiment harness.
"""

import numpy as np
import pytest

from repro.core import NMCDR, NMCDRConfig, build_task
from repro.data import CDRDataset, DomainData, leave_one_out_split
from repro.data.dataloader import Batch
from repro.graph import InteractionGraph, MatchingNeighborSampler
from repro.nn import Embedding, Linear, losses
from repro.optim import Adam
from repro.tensor import Tensor, no_grad, ops


class TestTensorEdgeCases:
    def test_scalar_tensor_arithmetic(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * 3.0 + 1.0
        y.backward()
        assert x.grad == pytest.approx(3.0)

    def test_zero_size_dimension(self):
        empty = Tensor(np.zeros((0, 4)))
        out = ops.relu(empty)
        assert out.shape == (0, 4)
        assert ops.concat([empty, Tensor(np.ones((2, 4)))], axis=0).shape == (2, 4)

    def test_three_dimensional_matmul(self):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_sum_over_multiple_axes(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = ops.sum(x, axis=(0, 2))
        assert out.shape == (3,)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_chained_reshape_transpose_grad(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = ops.transpose(ops.reshape(x, (4, 3)))
        (out * 2.0).sum().backward()
        assert np.allclose(x.grad, 2.0)

    def test_no_grad_inside_training_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with no_grad():
            frozen = y.detach() * 5.0
        out = (y + Tensor(frozen.data)).sum()
        out.backward()
        assert np.allclose(x.grad, 2.0)

    def test_very_deep_chain_does_not_recurse(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x
        for _ in range(500):
            y = y + 1.0
        y.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_log_of_zero_is_finite(self):
        out = ops.log(Tensor([0.0]))
        assert np.isfinite(out.data).all()

    def test_division_by_small_number_gradient_finite(self):
        x = Tensor([1e-8], requires_grad=True)
        (1.0 / x).sum().backward()
        assert np.isfinite(x.grad).all()


class TestModuleEdgeCases:
    def test_linear_single_example(self):
        linear = Linear(4, 2)
        out = linear(Tensor(np.ones((1, 4))))
        assert out.shape == (1, 2)

    def test_embedding_empty_lookup(self):
        table = Embedding(5, 3)
        out = table(np.array([], dtype=np.int64))
        assert out.shape == (0, 3)

    def test_bce_all_positive_labels(self):
        predictions = Tensor(np.full((4, 1), 0.99))
        loss = losses.binary_cross_entropy(predictions, np.ones((4, 1)))
        assert loss.item() < 0.05

    def test_optimizer_with_single_scalar_parameter(self):
        from repro.nn import Parameter

        parameter = Parameter(np.array(5.0))
        optimizer = Adam([parameter], lr=0.5)
        for _ in range(50):
            optimizer.zero_grad()
            (parameter * parameter).backward()
            optimizer.step()
        assert abs(float(parameter.data)) < 5.0


class TestDataEdgeCases:
    def _single_user_domain(self):
        return DomainData(
            name="solo",
            num_users=1,
            num_items=6,
            users=np.zeros(4, dtype=np.int64),
            items=np.array([0, 1, 2, 3]),
            timestamps=np.arange(4, dtype=float),
            global_user_ids=np.array([0]),
        )

    def test_single_user_split(self):
        split = leave_one_out_split(self._single_user_domain())
        assert split.num_eval_users == 1
        assert split.num_train == 2

    def test_dataset_with_no_overlap(self):
        domain_a = self._single_user_domain()
        domain_b = DomainData(
            name="other",
            num_users=1,
            num_items=6,
            users=np.zeros(4, dtype=np.int64),
            items=np.array([0, 1, 2, 3]),
            timestamps=np.arange(4, dtype=float),
            global_user_ids=np.array([99]),
        )
        dataset = CDRDataset("disjoint", domain_a, domain_b)
        assert dataset.num_overlapping == 0
        non_a, non_b = dataset.non_overlapping_users()
        assert non_a.tolist() == [0] and non_b.tolist() == [0]

    def test_graph_with_single_edge(self):
        graph = InteractionGraph(1, 1, [0], [0])
        assert graph.user_aggregation_matrix()[0, 0] == pytest.approx(1.0)
        head, tail = graph.head_tail_split(0)
        assert head.tolist() == [0] and tail.tolist() == []

    def test_sampler_with_empty_candidates(self):
        sampler = MatchingNeighborSampler(max_neighbors=4)
        assert sampler.sample(np.array([], dtype=np.int64)).size == 0


class TestModelEdgeCases:
    def _no_overlap_task(self):
        rng = np.random.default_rng(0)

        def domain(name, offset):
            users, items = [], []
            for user in range(12):
                chosen = rng.choice(15, size=5, replace=False)
                users.extend([user] * 5)
                items.extend(chosen.tolist())
            return DomainData(
                name=name,
                num_users=12,
                num_items=15,
                users=np.array(users),
                items=np.array(items),
                timestamps=rng.uniform(size=len(users)),
                global_user_ids=offset + np.arange(12),
            )

        dataset = CDRDataset("no_overlap", domain("a", 0), domain("b", 100))
        return build_task(dataset, head_threshold=4)

    def test_nmcdr_trains_with_zero_overlap(self):
        task = self._no_overlap_task()
        assert task.num_overlapping == 0
        model = NMCDR(
            task,
            NMCDRConfig(embedding_dim=8, max_matching_neighbors=8, seed=0),
        )
        batch = Batch(
            users=np.array([0, 1]),
            items=np.array([0, 1]),
            labels=np.array([1.0, 0.0]),
        )
        loss = model.compute_batch_loss({"a": batch, "b": batch})
        assert np.isfinite(loss.item())
        loss.backward()
        model.prepare_for_evaluation()
        scores = model.score("a", np.array([0, 1, 2]), np.array([0, 1, 2]))
        assert np.all(np.isfinite(scores))

    def test_nmcdr_single_matching_neighbor(self, tiny_task):
        config = NMCDRConfig(embedding_dim=8, max_matching_neighbors=1, seed=0)
        model = NMCDR(tiny_task, config)
        reps = model.forward_representations()
        assert np.all(np.isfinite(reps["a"]["user_g4"].data))

    def test_nmcdr_two_matching_layers(self, tiny_task):
        config = NMCDRConfig(embedding_dim=8, num_matching_layers=2, seed=0)
        model = NMCDR(tiny_task, config)
        reps = model.forward_representations()
        assert np.all(np.isfinite(reps["b"]["user_g4"].data))
        assert len(model.domain_a_params.intra_layers) == 2

    def test_nmcdr_gat_kernel(self, tiny_task):
        config = NMCDRConfig(embedding_dim=8, gnn_kernel="gat", seed=0)
        model = NMCDR(tiny_task, config)
        batch = Batch(users=np.array([0]), items=np.array([0]), labels=np.array([1.0]))
        loss = model.compute_batch_loss({"a": batch})
        assert np.isfinite(loss.item())
