"""Staged training engine: callbacks, executors, schedulers and equivalence.

The headline guarantees gated here:

* **Fixed-seed equivalence** — under the float64 default engine dtype, the
  prefetched pipeline produces the same epoch losses and validation metrics
  as the serial one, and scheduled subgraph plans the same as per-step
  plans, for NMCDR and the graph baselines (GA-DTCDR, HeroGraph).
* **Hook surface** — early stopping, LR scheduling and arbitrary callbacks
  plug into the loop without touching it, and a custom ``StepExecutor`` can
  replace the optimisation step wholesale.
* **Timing accounting** — step time and data-prep/overlap time are recorded
  separately so efficiency numbers stop under-reporting wall cost.
"""

import numpy as np
import pytest

from repro.baselines import build_model
from repro.core import (
    Callback,
    CDRTrainer,
    NMCDR,
    NMCDRConfig,
    StepExecutor,
    TrainerConfig,
    build_task,
)
from repro.data import load_scenario


def small_task(scale=0.3, seed=13):
    return build_task(
        load_scenario("cloth_sport", scale=scale, seed=seed),
        head_threshold=7,
    )


def build_for(name, task, seed=3):
    if name == "NMCDR":
        return NMCDR(task, NMCDRConfig(embedding_dim=16, seed=seed))
    return build_model(name, task, embedding_dim=16, seed=seed)


def fit_history(task, model_name, **config_overrides):
    config = TrainerConfig(
        num_epochs=3,
        batch_size=128,
        seed=11,
        eval_every=1,
        num_eval_negatives=20,
        **config_overrides,
    )
    trainer = CDRTrainer(build_for(model_name, task), task, config)
    return trainer.fit()


@pytest.mark.slow
class TestFixedSeedEquivalence:
    """Float64 gate: every execution mode replays the serial batch stream."""

    @pytest.mark.parametrize("model_name", ["NMCDR", "GA-DTCDR", "HeroGraph"])
    def test_prefetched_pipeline_matches_serial(self, model_name):
        task = small_task()
        serial = fit_history(task, model_name)
        prefetched = fit_history(task, model_name, prefetch_epochs=1)
        assert serial.epoch_losses == prefetched.epoch_losses
        assert serial.validation_metrics == prefetched.validation_metrics

    @pytest.mark.parametrize("model_name", ["NMCDR", "GA-DTCDR", "HeroGraph"])
    def test_scheduled_plans_match_per_step(self, model_name):
        task = small_task()
        per_step = fit_history(task, model_name, sampled_subgraph_training=True)
        scheduled = fit_history(
            task,
            model_name,
            sampled_subgraph_training=True,
            scheduled_subgraph_plans=True,
        )
        assert per_step.epoch_losses == scheduled.epoch_losses
        assert per_step.validation_metrics == scheduled.validation_metrics

    def test_all_modes_stacked_match_serial_sampled(self):
        """Prefetch + scheduled plans together still replay the serial run."""
        task = small_task()
        reference = fit_history(task, "NMCDR", sampled_subgraph_training=True)
        stacked = fit_history(
            task,
            "NMCDR",
            sampled_subgraph_training=True,
            scheduled_subgraph_plans=True,
            prefetch_epochs=2,
        )
        assert reference.epoch_losses == stacked.epoch_losses
        assert reference.validation_metrics == stacked.validation_metrics


class TestLRSchedulerWiring:
    def test_step_scheduler_decays_per_config(self, tiny_task, tiny_nmcdr_config):
        config = TrainerConfig(
            num_epochs=4,
            batch_size=256,
            learning_rate=1e-2,
            eval_every=0,
            lr_scheduler="step",
            lr_step_size=2,
            lr_gamma=0.5,
        )
        trainer = CDRTrainer(NMCDR(tiny_task, tiny_nmcdr_config), tiny_task, config)
        history = trainer.fit()
        assert history.learning_rates == pytest.approx([1e-2, 1e-2, 5e-3, 5e-3])
        assert trainer.optimizer.lr == pytest.approx(5e-3 * 0.5)  # stepped after epoch 4

    def test_exponential_scheduler(self, tiny_task, tiny_nmcdr_config):
        config = TrainerConfig(
            num_epochs=3,
            batch_size=256,
            learning_rate=1e-2,
            eval_every=0,
            lr_scheduler="exponential",
            lr_gamma=0.9,
        )
        trainer = CDRTrainer(NMCDR(tiny_task, tiny_nmcdr_config), tiny_task, config)
        history = trainer.fit()
        assert history.learning_rates == pytest.approx([1e-2, 9e-3, 8.1e-3])

    def test_no_scheduler_keeps_rate_fixed(self, tiny_task, tiny_nmcdr_config):
        config = TrainerConfig(num_epochs=2, batch_size=256, eval_every=0)
        trainer = CDRTrainer(NMCDR(tiny_task, tiny_nmcdr_config), tiny_task, config)
        history = trainer.fit()
        assert history.learning_rates == [config.learning_rate] * 2

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="lr_scheduler"):
            TrainerConfig(lr_scheduler="cosine")
        from repro.optim import Adam, build_scheduler
        from repro.nn import Parameter

        optimizer = Adam([Parameter(np.zeros(1))], lr=1e-3)
        with pytest.raises(ValueError, match="unknown lr scheduler"):
            build_scheduler("cosine", optimizer)


class RecordingCallback(Callback):
    def __init__(self):
        self.events = []

    def on_fit_start(self, context):
        self.events.append("fit_start")

    def on_epoch_start(self, context, epoch):
        self.events.append(f"epoch_start:{epoch}")

    def on_step_end(self, context, step, loss):
        self.events.append(f"step:{step}")

    def on_epoch_end(self, context, epoch, epoch_loss):
        self.events.append(f"epoch_end:{epoch}")

    def on_evaluation(self, context, epoch, metrics):
        self.events.append(f"eval:{epoch}")

    def on_fit_end(self, context):
        self.events.append("fit_end")


class TestCallbacksAndExecutor:
    def test_callback_event_order(self, tiny_task, tiny_nmcdr_config):
        recorder = RecordingCallback()
        config = TrainerConfig(
            num_epochs=2, batch_size=512, eval_every=2, num_eval_negatives=10
        )
        trainer = CDRTrainer(
            NMCDR(tiny_task, tiny_nmcdr_config), tiny_task, config, callbacks=[recorder]
        )
        history = trainer.fit()
        events = recorder.events
        assert events[0] == "fit_start" and events[-1] == "fit_end"
        assert events.index("epoch_start:0") < events.index("epoch_end:0")
        assert events.index("epoch_end:0") < events.index("epoch_start:1")
        assert "eval:1" in events  # eval_every=2 fires after the second epoch
        steps = [event for event in events if event.startswith("step:")]
        assert len(steps) == history.num_batches

    def test_callback_can_request_stop(self, tiny_task, tiny_nmcdr_config):
        class StopAfterFirstEpoch(Callback):
            def on_epoch_end(self, context, epoch, epoch_loss):
                context.request_stop()

        config = TrainerConfig(num_epochs=10, batch_size=512, eval_every=0)
        trainer = CDRTrainer(
            NMCDR(tiny_task, tiny_nmcdr_config),
            tiny_task,
            config,
            callbacks=[StopAfterFirstEpoch()],
        )
        history = trainer.fit()
        assert len(history.epoch_losses) == 1

    def test_custom_executor_replaces_step(self, tiny_task, tiny_nmcdr_config):
        model = NMCDR(tiny_task, tiny_nmcdr_config)

        class CountingExecutor(StepExecutor):
            steps_run = 0

            def run_step(self, batches):
                type(self).steps_run += 1
                return super().run_step(batches)

        config = TrainerConfig(num_epochs=1, batch_size=256, eval_every=0)
        trainer = CDRTrainer(model, tiny_task, config)
        trainer._executor = CountingExecutor(
            model, trainer.optimizer, grad_clip_norm=config.grad_clip_norm
        )
        history = trainer.fit()
        assert CountingExecutor.steps_run == history.num_batches > 0

    def test_engine_max_steps_caps_run(self, tiny_task, tiny_nmcdr_config):
        trainer = CDRTrainer(
            NMCDR(tiny_task, tiny_nmcdr_config),
            tiny_task,
            TrainerConfig(num_epochs=5, batch_size=64, eval_every=0),
        )
        engine = trainer.build_engine()
        pipeline = engine.build_pipeline(trainer._loaders)
        history = engine.fit(pipeline, max_steps=3)
        assert history.num_batches == 3


class TestTimingAccounting:
    def test_step_and_data_time_recorded_separately(self, tiny_task, tiny_nmcdr_config):
        trainer = CDRTrainer(
            NMCDR(tiny_task, tiny_nmcdr_config),
            tiny_task,
            TrainerConfig(num_epochs=2, batch_size=128, eval_every=0),
        )
        history = trainer.fit()
        assert history.step_seconds_total > 0
        assert history.data_prep_seconds_total > 0
        assert history.data_wait_seconds_total > 0
        assert history.fit_wall_seconds >= history.step_seconds_total
        assert len(history.epoch_wall_seconds) == 2
        assert history.train_seconds_per_batch == pytest.approx(
            history.step_seconds_total / history.num_batches
        )
        assert history.data_seconds_per_batch == pytest.approx(
            history.data_prep_seconds_total / history.num_batches
        )
        # Step timing must exclude the data wall: the two sum to at most the
        # fit wall (plus bookkeeping).
        assert (
            history.step_seconds_total + history.data_wait_seconds_total
            <= history.fit_wall_seconds * 1.05 + 0.05
        )

    def test_runner_records_data_timing(self):
        from repro.experiments import ExperimentSettings
        from repro.experiments.runner import run_scenario

        settings = ExperimentSettings(
            scenario="cloth_sport", scale=0.3, num_epochs=1, num_eval_negatives=10, seed=3
        )
        result = run_scenario(settings, ["LR"])
        model_result = result.results["LR"]
        assert model_result.fit_wall_seconds > 0
        assert model_result.data_seconds_per_batch >= 0
