"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, ops

finite_floats = st.floats(
    min_value=-10.0,
    max_value=10.0,
    allow_nan=False,
    allow_infinity=False,
)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite_floats)


@st.composite
def matching_matrices(draw):
    rows = draw(st.integers(min_value=1, max_value=5))
    cols = draw(st.integers(min_value=1, max_value=5))
    a = draw(arrays((rows, cols)))
    b = draw(arrays((rows, cols)))
    return a, b


class TestAlgebraicProperties:
    @settings(max_examples=40, deadline=None)
    @given(matching_matrices())
    def test_add_commutes(self, pair):
        a, b = pair
        assert np.allclose((Tensor(a) + Tensor(b)).data, (Tensor(b) + Tensor(a)).data)

    @settings(max_examples=40, deadline=None)
    @given(matching_matrices())
    def test_mul_commutes(self, pair):
        a, b = pair
        assert np.allclose((Tensor(a) * Tensor(b)).data, (Tensor(b) * Tensor(a)).data)

    @settings(max_examples=40, deadline=None)
    @given(matching_matrices())
    def test_sub_is_add_neg(self, pair):
        a, b = pair
        assert np.allclose(
            (Tensor(a) - Tensor(b)).data,
            (Tensor(a) + (-Tensor(b))).data,
        )

    @settings(max_examples=40, deadline=None)
    @given(arrays((4, 3)))
    def test_double_negation(self, a):
        assert np.allclose((-(-Tensor(a))).data, a)

    @settings(max_examples=40, deadline=None)
    @given(arrays((3, 4)))
    def test_relu_idempotent(self, a):
        once = ops.relu(Tensor(a))
        twice = ops.relu(once)
        assert np.allclose(once.data, twice.data)

    @settings(max_examples=40, deadline=None)
    @given(arrays((3, 4)))
    def test_sigmoid_bounded(self, a):
        out = ops.sigmoid(Tensor(a)).data
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    @settings(max_examples=40, deadline=None)
    @given(arrays((3, 5)))
    def test_softmax_rows_are_distributions(self, a):
        out = ops.softmax(Tensor(a), axis=1).data
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-8)
        assert np.all(out >= 0.0)


class TestGradientProperties:
    @settings(max_examples=30, deadline=None)
    @given(arrays((3, 4)))
    def test_sum_gradient_is_ones(self, a):
        tensor = Tensor(a, requires_grad=True)
        tensor.sum().backward()
        assert np.allclose(tensor.grad, 1.0)

    @settings(max_examples=30, deadline=None)
    @given(arrays((3, 4)), finite_floats)
    def test_scaling_loss_scales_gradient(self, a, scale):
        first = Tensor(a, requires_grad=True)
        (first * first).sum().backward()
        second = Tensor(a, requires_grad=True)
        ((second * second).sum() * scale).backward()
        assert np.allclose(second.grad, first.grad * scale, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(matching_matrices())
    def test_gradient_of_sum_of_two_inputs(self, pair):
        a, b = pair
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta * tb).sum().backward()
        assert np.allclose(ta.grad, b, atol=1e-10)
        assert np.allclose(tb.grad, a, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(arrays((4, 3)))
    def test_linearity_of_backward(self, a):
        """grad of (f + g) equals grad f + grad g for independent terms."""
        x1 = Tensor(a, requires_grad=True)
        ops.relu(x1).sum().backward()
        grad_f = x1.grad.copy()

        x2 = Tensor(a, requires_grad=True)
        ops.tanh(x2).sum().backward()
        grad_g = x2.grad.copy()

        x3 = Tensor(a, requires_grad=True)
        (ops.relu(x3).sum() + ops.tanh(x3).sum()).backward()
        assert np.allclose(x3.grad, grad_f + grad_g, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    def test_matmul_gradient_shapes(self, n, m):
        a = Tensor(np.ones((n, m)), requires_grad=True)
        b = Tensor(np.ones((m, 3)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (n, m)
        assert b.grad.shape == (m, 3)
