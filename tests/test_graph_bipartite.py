"""Tests for the bipartite interaction graph."""

import numpy as np
import pytest

from repro.graph import InteractionGraph


@pytest.fixture()
def small_graph():
    # 4 users, 3 items; user 0 is a heavy user, user 3 has no interactions.
    users = [0, 0, 0, 1, 2, 2]
    items = [0, 1, 2, 0, 1, 2]
    return InteractionGraph(4, 3, users, items)


class TestConstruction:
    def test_basic_counts(self, small_graph):
        assert small_graph.num_users == 4
        assert small_graph.num_items == 3
        assert small_graph.num_edges == 6
        assert small_graph.density == pytest.approx(6 / 12)

    def test_duplicate_edges_are_merged(self):
        graph = InteractionGraph(2, 2, [0, 0, 0], [1, 1, 1])
        assert graph.num_edges == 1

    def test_out_of_range_indices(self):
        with pytest.raises(ValueError):
            InteractionGraph(2, 2, [2], [0])
        with pytest.raises(ValueError):
            InteractionGraph(2, 2, [0], [5])

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError):
            InteractionGraph(2, 2, [0, 1], [0])

    def test_empty_graph_allowed(self):
        graph = InteractionGraph(3, 3, [], [])
        assert graph.num_edges == 0
        assert np.all(graph.user_degrees() == 0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            InteractionGraph(0, 3, [], [])


class TestAccessors:
    def test_degrees(self, small_graph):
        assert np.array_equal(small_graph.user_degrees(), [3, 1, 2, 0])
        assert np.array_equal(small_graph.item_degrees(), [2, 2, 2])

    def test_neighbors(self, small_graph):
        assert set(small_graph.user_neighbors(0)) == {0, 1, 2}
        assert set(small_graph.user_neighbors(3)) == set()
        assert set(small_graph.item_neighbors(0)) == {0, 1}

    def test_has_edge(self, small_graph):
        assert small_graph.has_edge(0, 1)
        assert not small_graph.has_edge(3, 0)

    def test_edge_list_matches_input(self, small_graph):
        assert set(
            small_graph.edge_list(),
        ) == {(0, 0), (0, 1), (0, 2), (1, 0), (2, 1), (2, 2)}

    def test_to_networkx(self, small_graph):
        nx_graph = small_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 7
        assert nx_graph.number_of_edges() == 6


class TestOperators:
    def test_user_aggregation_rows_sum_to_one(self, small_graph):
        operator = small_graph.user_aggregation_matrix()
        sums = np.asarray(operator.sum(axis=1)).ravel()
        degrees = small_graph.user_degrees()
        assert np.allclose(sums[degrees > 0], 1.0)
        assert np.allclose(sums[degrees == 0], 0.0)

    def test_item_aggregation_rows_sum_to_one(self, small_graph):
        operator = small_graph.item_aggregation_matrix()
        sums = np.asarray(operator.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_symmetric_normalization_values(self):
        graph = InteractionGraph(1, 1, [0], [0])
        operator = graph.symmetric_normalized_adjacency()
        assert operator[0, 0] == pytest.approx(1.0)

    def test_aggregation_shape(self, small_graph):
        assert small_graph.user_aggregation_matrix().shape == (4, 3)
        assert small_graph.item_aggregation_matrix().shape == (3, 4)


class TestHeadTailSplit:
    def test_threshold_semantics(self, small_graph):
        head, tail = small_graph.head_tail_split(threshold=1)
        # head users have strictly more than 1 interaction
        assert set(head) == {0, 2}
        assert set(tail) == {1, 3}

    def test_all_tail_when_threshold_high(self, small_graph):
        head, tail = small_graph.head_tail_split(threshold=100)
        assert head.size == 0
        assert tail.size == 4

    def test_partition_is_exhaustive_and_disjoint(self, small_graph):
        head, tail = small_graph.head_tail_split(threshold=2)
        assert set(head) | set(tail) == set(range(4))
        assert set(head) & set(tail) == set()
