"""Tests for the scenario registry and Table-I style statistics."""

import numpy as np
import pytest

from repro.data import (
    SCENARIO_NAMES,
    format_statistics_table,
    load_all_scenarios,
    load_scenario,
    paper_table1_reference,
    scenario_spec,
    scenario_statistics,
)


class TestRegistry:
    def test_all_scenarios_load(self):
        for name in SCENARIO_NAMES:
            dataset = load_scenario(name, scale=0.2)
            assert dataset.domain_a.num_interactions > 0
            assert dataset.domain_b.num_interactions > 0
            assert dataset.num_overlapping > 0

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            load_scenario("books_games")
        with pytest.raises(KeyError):
            paper_table1_reference("books_games")

    def test_scale_changes_size(self):
        small = load_scenario("music_movie", scale=0.2)
        large = load_scenario("music_movie", scale=0.5)
        assert large.domain_a.num_users > small.domain_a.num_users

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scenario_spec("music_movie", scale=0.0)

    def test_seed_determinism(self):
        first = load_scenario("phone_elec", scale=0.2, seed=9)
        second = load_scenario("phone_elec", scale=0.2, seed=9)
        assert np.array_equal(first.domain_a.users, second.domain_a.users)

    def test_load_all(self):
        datasets = load_all_scenarios(scale=0.15)
        assert len(datasets) == 4

    def test_relative_shape_matches_paper(self):
        """Loan–Fund should have far more interactions per item than the Amazon pairs."""
        loan_fund = load_scenario("loan_fund", scale=0.4)
        cloth_sport = load_scenario("cloth_sport", scale=0.4)
        assert (
            loan_fund.domain_a.average_interactions_per_item
            > 2 * cloth_sport.domain_a.average_interactions_per_item
        )

    def test_paper_reference_structure(self):
        reference = paper_table1_reference("music_movie")
        assert reference["overlapping"] == 15081
        assert reference["domains"][0]["name"] == "Music"


class TestStatistics:
    def test_scenario_statistics_fields(self):
        dataset = load_scenario("cloth_sport", scale=0.2)
        stats = scenario_statistics(dataset)
        assert stats["scenario"] == "cloth_sport"
        assert stats["overlapping"] == dataset.num_overlapping
        assert stats["domains"][0].users == dataset.domain_a.num_users
        assert stats["domains"][1].ratings == dataset.domain_b.num_interactions

    def test_format_statistics_table(self):
        dataset = load_scenario("cloth_sport", scale=0.2)
        table = format_statistics_table([scenario_statistics(dataset)])
        assert "Cloth" in table and "Sport" in table
        assert "cloth_sport" in table
        assert str(dataset.num_overlapping) in table
