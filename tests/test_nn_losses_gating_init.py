"""Tests for loss functions, the fine-grained gate and initialisers."""

import numpy as np
import pytest

from repro.nn import CrossMix, FineGrainedGate, init, losses
from repro.tensor import Tensor


class TestBCE:
    def test_matches_closed_form(self):
        predictions = Tensor([[0.9], [0.1]])
        targets = np.array([[1.0], [0.0]])
        loss = losses.binary_cross_entropy(predictions, targets)
        expected = -(np.log(0.9) + np.log(0.9)) / 2.0
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_reductions(self):
        predictions = Tensor([[0.5], [0.5]])
        targets = np.array([[1.0], [0.0]])
        mean_loss = losses.binary_cross_entropy(predictions, targets, reduction="mean")
        sum_loss = losses.binary_cross_entropy(predictions, targets, reduction="sum")
        none_loss = losses.binary_cross_entropy(predictions, targets, reduction="none")
        assert sum_loss.item() == pytest.approx(2 * mean_loss.item())
        assert none_loss.shape == (2, 1)
        with pytest.raises(ValueError):
            losses.binary_cross_entropy(predictions, targets, reduction="bogus")

    def test_extreme_predictions_are_finite(self):
        predictions = Tensor([[0.0], [1.0]])
        targets = np.array([[1.0], [0.0]])
        loss = losses.binary_cross_entropy(predictions, targets)
        assert np.isfinite(loss.item())

    def test_weight_scales_loss(self):
        predictions = Tensor([[0.7]])
        targets = np.array([[1.0]])
        base = losses.binary_cross_entropy(predictions, targets)
        weighted = losses.binary_cross_entropy(predictions, targets, weight=3.0)
        assert weighted.item() == pytest.approx(3.0 * base.item())

    def test_perfect_prediction_near_zero(self):
        predictions = Tensor([[0.999999], [0.000001]])
        targets = np.array([[1.0], [0.0]])
        assert losses.binary_cross_entropy(predictions, targets).item() < 1e-4

    def test_with_logits_matches_probability_version(self):
        logits = np.array([[0.3], [-1.2], [2.0]])
        targets = np.array([[1.0], [0.0], [1.0]])
        with_logits = losses.binary_cross_entropy_with_logits(Tensor(logits), targets)
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        direct = losses.binary_cross_entropy(Tensor(probabilities), targets)
        assert with_logits.item() == pytest.approx(direct.item(), rel=1e-5)

    def test_gradient_direction(self):
        prediction = Tensor([[0.3]], requires_grad=True)
        loss = losses.binary_cross_entropy(prediction, np.array([[1.0]]))
        loss.backward()
        # increasing the prediction towards 1 should decrease the loss
        assert prediction.grad[0, 0] < 0


class TestOtherLosses:
    def test_bpr_loss_prefers_positive(self):
        better = losses.bpr_loss(Tensor([2.0]), Tensor([0.0]))
        worse = losses.bpr_loss(Tensor([0.0]), Tensor([2.0]))
        assert better.item() < worse.item()

    def test_mse(self):
        loss = losses.mse_loss(Tensor([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert loss.item() == pytest.approx(2.5)

    def test_l2_regularization(self):
        from repro.nn import Parameter

        params = [Parameter(np.ones((2, 2))), Parameter(np.ones((3,)))]
        reg = losses.l2_regularization(params, 0.5)
        assert reg.item() == pytest.approx(0.5 * (4 + 3))

    def test_l2_regularization_empty(self):
        assert losses.l2_regularization([], 0.1).item() == 0.0


class TestGating:
    def test_gate_output_in_tanh_range(self, rng):
        gate = FineGrainedGate(8, rng=rng)
        a = Tensor(rng.normal(size=(5, 8)))
        b = Tensor(rng.normal(size=(5, 8)))
        out = gate(a, b)
        assert out.shape == (5, 8)
        assert np.all(out.data <= 1.0) and np.all(out.data >= -1.0)

    def test_gate_values_are_probabilities(self, rng):
        gate = FineGrainedGate(4, rng=rng)
        values = gate.gate_values(
            Tensor(rng.normal(size=(3, 4))),
            Tensor(rng.normal(size=(3, 4))),
        )
        assert np.all(values.data > 0) and np.all(values.data < 1)

    def test_gate_invalid_dim(self):
        with pytest.raises(ValueError):
            FineGrainedGate(0)

    def test_gate_is_differentiable(self, rng):
        gate = FineGrainedGate(4, rng=rng)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gate(a, b).sum().backward()
        assert a.grad is not None and b.grad is not None
        assert gate.first_proj.weight.grad is not None

    def test_cross_mix_complement(self, rng):
        cross = CrossMix(6, rng=rng)
        x = Tensor(rng.normal(size=(4, 6)))
        combined = cross(x) + cross.complement(x)
        assert np.allclose(combined.data, x.data, atol=1e-10)


class TestInit:
    def test_shapes(self):
        assert init.zeros((2, 3)).shape == (2, 3)
        assert init.ones((4,)).shape == (4,)
        assert init.normal((5, 5)).shape == (5, 5)
        assert init.uniform((5, 5)).shape == (5, 5)

    def test_xavier_uniform_bound(self):
        values = init.xavier_uniform((100, 100), rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / 200)
        assert np.abs(values).max() <= bound + 1e-12

    def test_xavier_normal_std(self):
        values = init.xavier_normal((200, 200), rng=np.random.default_rng(0))
        assert values.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.1)

    def test_kaiming_uniform_bound(self):
        values = init.kaiming_uniform((50, 10), rng=np.random.default_rng(0))
        assert np.abs(values).max() <= np.sqrt(6.0 / 50) + 1e-12

    def test_embedding_normal_std(self):
        values = init.embedding_normal((500, 16), std=0.1, rng=np.random.default_rng(0))
        assert values.std() == pytest.approx(0.1, rel=0.1)

    def test_deterministic_with_same_rng_seed(self):
        a = init.xavier_uniform((4, 4), rng=np.random.default_rng(7))
        b = init.xavier_uniform((4, 4), rng=np.random.default_rng(7))
        assert np.allclose(a, b)
