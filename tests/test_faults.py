"""Fault-injection recovery suite (``pytest -m faults``).

Every test arms :mod:`repro.core.faults` specs and proves the training
stack's recovery contracts:

* an injected worker **death** or **hang** is healed by the supervisor's
  respawn-and-replay within the retry budget, and the finished run is
  **bit-identical** to an unfaulted one (float64 losses, metrics, params);
* a **slow** step under the deadline never triggers recovery;
* exhausted retries either raise (fail-fast default) or walk the
  degradation ladder down to fewer shards — and training still completes
  bit-identically;
* recovery never leaks worker processes or shared-memory segments, even
  when the training *parent* is killed outright (SIGTERM / SIGINT);
* a parent killed at a checkpoint boundary resumes bit-identically
  (env-driven ``REPRO_FAULTS``, exercising the CLI-facing grammar).

The injected-crash exit code (23) is asserted where subprocesses die, so a
real failure can never masquerade as a successfully injected fault.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.core import CDRTrainer, NMCDR, NMCDRConfig, TrainerConfig, build_task, faults
from repro.core.checkpoint import latest_checkpoint
from repro.core.sharded import WorkerDied, WorkerTimeout
from repro.data import load_scenario, preprocess_scenario
from repro.data.dataloader import InteractionDataLoader
from repro.data.pipeline import PrefetchDataPipeline

pytestmark = pytest.mark.faults


@pytest.fixture(autouse=True)
def disarm():
    """No fault armed by one test may ever leak into the next."""
    faults.clear()
    yield
    faults.clear()


def shard_children():
    return [
        process
        for process in multiprocessing.active_children()
        if process.name.startswith("repro-shard")
    ]


def leaked_shm(prefixes=("repro-shm-", "repro-xp-")):
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover — non-Linux fallback
        return []
    if isinstance(prefixes, str):
        prefixes = (prefixes,)
    return [
        name for name in os.listdir(shm_dir) if name.startswith(tuple(prefixes))
    ]


def assert_no_leaks(deadline=5.0):
    """Processes and shm segments must be gone (resource_tracker may lag)."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if not shard_children() and not leaked_shm():
            return
        time.sleep(0.05)
    assert not shard_children(), "leaked shard worker processes"
    assert not leaked_shm(), "leaked shared-memory segments"


@pytest.fixture(scope="module")
def task():
    dataset = preprocess_scenario(
        load_scenario("cloth_sport", scale=0.3, seed=3), min_interactions=3
    )
    return build_task(dataset, head_threshold=5)


def make_trainer(task, **overrides):
    settings = dict(
        num_epochs=2,
        batch_size=64,
        seed=0,
        eval_every=0,
        num_eval_negatives=20,
        executor="sharded",
        n_shards=2,
    )
    settings.update(overrides)
    config = TrainerConfig(**settings)
    model = NMCDR(
        task,
        NMCDRConfig(embedding_dim=8, max_matching_neighbors=8, head_threshold=5, seed=0),
    )
    return CDRTrainer(model, task, config)


_REFERENCES = {}


def reference_run(task, **overrides):
    """Unfaulted history+params for a config, computed once per module.

    Disarms any armed fault first: the comparisons all run *after* the
    faulted fit finished, so nothing still needs the spec.
    """
    key = tuple(sorted(overrides.items()))
    if key not in _REFERENCES:
        faults.clear()
        trainer = make_trainer(task, **overrides)
        history = trainer.fit()
        _REFERENCES[key] = (history, trainer.model.state_dict())
    return _REFERENCES[key]


def assert_bit_identical(trainer, history, task, **overrides):
    history_ref, params_ref = reference_run(task, **overrides)
    assert history.epoch_losses == history_ref.epoch_losses
    assert history.validation_metrics == history_ref.validation_metrics
    params = trainer.model.state_dict()
    for name in params_ref:
        assert np.array_equal(params_ref[name], params[name]), name


# ----------------------------------------------------------------------
# the spec grammar and generation semantics
# ----------------------------------------------------------------------
class TestFaultSpecs:
    def test_parse_full_grammar(self):
        spec = faults.parse_spec("worker_exit:shard=1:step=2:phase=enc:delay=0.5:count=3:refire")
        assert spec.point == "worker_exit"
        assert spec.shard == 1
        assert spec.step == 2
        assert spec.phase == "enc"
        assert spec.delay == 0.5
        assert spec.count == 3
        assert spec.refire

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            faults.parse_spec("worker_explode")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec field"):
            faults.parse_spec("worker_exit:color=red")

    def test_env_grammar_loads_multiple_specs(self):
        faults.load_env("worker_slow:delay=0.1,checkpoint_crash")
        points = [spec.point for spec in faults.active_specs()]
        assert points == ["worker_slow", "checkpoint_crash"]

    def test_count_budget_is_consumed(self):
        faults.configure(faults.FaultSpec("worker_slow", count=2))
        assert faults.fire("worker_slow") is not None
        assert faults.fire("worker_slow") is not None
        assert faults.fire("worker_slow") is None

    def test_one_shot_spec_dies_with_its_generation(self):
        # The supervisor bumps the generation before re-forking; a one-shot
        # spec armed in generation 0 must not fire in generation 1, while a
        # refire spec keeps firing.
        faults.configure(
            faults.FaultSpec("worker_slow"),
            faults.FaultSpec("checkpoint_crash", refire=True, count=10),
        )
        faults.mark_respawn()
        assert faults.fire("worker_slow") is None
        assert faults.fire("checkpoint_crash") is not None

    def test_context_filters(self):
        faults.configure(faults.FaultSpec("worker_slow", shard=1, step=3))
        assert faults.fire("worker_slow", shard=0, step=3) is None
        assert faults.fire("worker_slow", shard=1, step=2) is None
        assert faults.fire("worker_slow", shard=1, step=3) is not None


# ----------------------------------------------------------------------
# supervised recovery: respawn-and-replay is bit-identical
# ----------------------------------------------------------------------
class TestSupervisedRecovery:
    def test_worker_death_respawned_bit_identical(self, task):
        faults.configure(faults.parse_spec("worker_exit:shard=1:step=5"))
        trainer = make_trainer(task, worker_max_retries=2)
        history = trainer.fit()
        assert history.worker_deaths == 1
        assert history.worker_respawns == 1
        assert history.worker_timeouts == 0
        assert_bit_identical(trainer, history, task)
        assert_no_leaks()

    def test_worker_hang_respawned_bit_identical(self, task):
        faults.configure(faults.parse_spec("worker_hang:shard=0:step=3:delay=30"))
        trainer = make_trainer(task, worker_max_retries=2, worker_step_timeout=2.0)
        history = trainer.fit()
        assert history.worker_timeouts == 1
        assert history.worker_respawns == 1
        assert_bit_identical(trainer, history, task)
        assert_no_leaks()

    def test_slow_step_does_not_trigger_recovery(self, task):
        # No retry budget: any spurious recovery attempt would raise.
        faults.configure(faults.parse_spec("worker_slow:shard=0:step=2:delay=0.3"))
        trainer = make_trainer(task, worker_step_timeout=30.0)
        history = trainer.fit()
        assert history.worker_deaths == 0
        assert history.worker_timeouts == 0
        assert history.worker_respawns == 0
        assert_bit_identical(trainer, history, task)
        assert_no_leaks()

    def test_pool_sharded_death_mid_protocol_recovered(self, task):
        # Kill during the multi-phase pool exchange (the hard case: the
        # supervisor must replay the partially-delivered step dialogue).
        faults.configure(faults.parse_spec("worker_exit:shard=1:step=4:phase=match"))
        trainer = make_trainer(task, pool_sharding=True, worker_max_retries=2)
        history = trainer.fit()
        assert history.worker_deaths == 1
        assert history.worker_respawns == 1
        assert_bit_identical(trainer, history, task, pool_sharding=True)
        assert_no_leaks()

    def test_pool_sharded_death_mid_gather_recovered(self, task):
        # Kill in the encode phase, after the victim may already have
        # published owned rows into the shared activation table: the
        # respawned worker must re-attach the exchange regions from the
        # replayed dispatch headers and re-publish identical bytes.
        faults.configure(faults.parse_spec("worker_exit:shard=0:step=3:phase=enc"))
        trainer = make_trainer(task, pool_sharding=True, worker_max_retries=2)
        history = trainer.fit()
        assert history.worker_deaths == 1
        assert history.worker_respawns == 1
        assert_bit_identical(trainer, history, task, pool_sharding=True)
        assert_no_leaks()

    def test_exchange_overflow_regrow_mid_epoch_bit_identical(self, task):
        # Force-regrow every exchange region mid-epoch (fresh segments,
        # bumped generations): workers re-attach lazily by name and the
        # run must be bit-identical to the unfaulted reference.
        faults.configure(faults.parse_spec("exchange_overflow:step=3"))
        trainer = make_trainer(task, pool_sharding=True)
        history = trainer.fit()
        executor = trainer._executor
        assert executor.comms_stats.forced_regrows == 1
        assert executor.comms_stats.fallback_data_bytes == 0
        assert_bit_identical(trainer, history, task, pool_sharding=True)
        assert_no_leaks()

    def test_exchange_overflow_with_respawn_interleaved(self, task):
        # The two recovery paths compose: a forced regrow at one step and
        # a worker death at a later step of the same run.
        faults.configure(
            faults.parse_spec("exchange_overflow:step=2"),
            faults.parse_spec("worker_exit:shard=1:step=5:phase=enc"),
        )
        trainer = make_trainer(task, pool_sharding=True, worker_max_retries=2)
        history = trainer.fit()
        assert history.worker_respawns == 1
        assert_bit_identical(trainer, history, task, pool_sharding=True)
        assert_no_leaks()

    def test_fail_fast_default_raises_on_death(self, task):
        # Without an explicit retry budget, supervision stays out of the
        # way: the PR-4 liveness contract (raise, don't hang) is unchanged.
        faults.configure(faults.parse_spec("worker_exit:shard=1:step=1"))
        trainer = make_trainer(task)
        with pytest.raises(RuntimeError, match="shard worker 1"):
            trainer.fit()
        assert_no_leaks()

    def test_exhausted_retries_raise_without_degrade(self, task):
        faults.configure(faults.parse_spec("worker_exit:shard=1:refire:count=100"))
        trainer = make_trainer(task, worker_max_retries=1)
        with pytest.raises(WorkerDied):
            trainer.fit()
        assert_no_leaks()

    def test_worker_died_errors_are_runtime_errors(self):
        assert issubclass(WorkerDied, RuntimeError)
        assert issubclass(WorkerTimeout, RuntimeError)


# ----------------------------------------------------------------------
# graceful degradation: fewer shards, same numbers
# ----------------------------------------------------------------------
class TestDegradation:
    # The refiring faults below kill shard 1 on the very first dispatched
    # step, so no step ever *completes* at the original width: after the
    # retry budget drains, the whole run effectively executes at the
    # degraded width.  The reference is therefore the n_shards=1 run — the
    # documented serial-replica mode, bit-exact against the serial executor
    # (NMCDR at n_shards=2 re-associates the gradient sum, so cross-width
    # bit-identity is only promised when no full-width step landed).
    def test_degrade_completes_bit_identical(self, task):
        faults.configure(faults.parse_spec("worker_exit:shard=1:refire:count=100"))
        trainer = make_trainer(task, worker_max_retries=1, degrade_on_failure=True)
        history = trainer.fit()
        assert history.executor_degradations >= 1
        assert history.worker_deaths >= 1
        assert_bit_identical(trainer, history, task, n_shards=1)
        assert_no_leaks()

    def test_pool_sharded_degrade_completes_bit_identical(self, task):
        faults.configure(faults.parse_spec("worker_exit:shard=1:refire:count=100"))
        trainer = make_trainer(
            task, pool_sharding=True, worker_max_retries=1, degrade_on_failure=True
        )
        history = trainer.fit()
        assert history.executor_degradations >= 1
        assert_bit_identical(trainer, history, task, pool_sharding=True, n_shards=1)
        assert_no_leaks()

    def test_degradation_ladder_reaches_serial_fallback(self, task):
        # Every shard keeps dying: n=2 -> n=1 -> in-parent serial. The run
        # must still finish with the exact serial-replica numbers.
        faults.configure(faults.parse_spec("worker_exit:refire:count=1000"))
        trainer = make_trainer(task, worker_max_retries=0, degrade_on_failure=True)
        history = trainer.fit()
        assert history.executor_degradations >= 2
        assert_bit_identical(trainer, history, task, n_shards=1)
        assert_no_leaks()


# ----------------------------------------------------------------------
# satellite S3: traced-program cache stats survive respawns
# ----------------------------------------------------------------------
class TestTraceStatsAcrossRespawn:
    def test_stats_merge_counts_both_incarnations(self, task):
        clean = make_trainer(task, traced_steps=True)
        clean.fit()
        clean_stats = clean._executor.trace_stats
        assert clean_stats is not None and clean_stats["sections"] > 0

        faults.configure(faults.parse_spec("worker_exit:shard=1:step=5"))
        faulted = make_trainer(task, traced_steps=True, worker_max_retries=2)
        history = faulted.fit()
        assert history.worker_respawns == 1
        stats = faulted._executor.trace_stats
        # The dead incarnation's counters are retired, not lost: the merged
        # totals cover at least every section a respawn-free run records
        # (the replayed step is counted in both incarnations, so >=), and
        # the replacement worker re-records its programs (extra misses).
        assert stats["sections"] >= clean_stats["sections"]
        assert stats["misses"] > clean_stats["misses"]
        assert_bit_identical(faulted, history, task, traced_steps=True)
        assert_no_leaks()


# ----------------------------------------------------------------------
# satellite S2: pipeline close() never masks a worker crash
# ----------------------------------------------------------------------
class ExplodingLoader:
    def __init__(self, loader):
        self.loader = loader

    def __len__(self):
        return len(self.loader)

    def __iter__(self):
        raise IndexError("injected loader failure")


class TestPrefetchCloseAfterCrash:
    def test_close_is_silent_and_idempotent_after_crash(self, task):
        rng = np.random.default_rng(9)
        loaders = {
            key: InteractionDataLoader(
                task.domain(key).split,
                batch_size=64,
                rng=np.random.default_rng(rng.integers(0, 2**32 - 1)),
            )
            for key in ("a", "b")
        }
        loaders["a"] = ExplodingLoader(loaders["a"])
        pipeline = PrefetchDataPipeline(loaders, num_epochs=2, depth=1)
        # The worker's original exception surfaces on the consuming thread...
        with pytest.raises(IndexError, match="injected loader failure"):
            for _ in pipeline.epoch(0):
                pass
        # ...and close() afterwards is a silent no-op, however often it is
        # called — it must never raise over the crash it just observed.
        pipeline.close()
        pipeline.close()


# ----------------------------------------------------------------------
# satellite S1 + resume gate: killing the training parent process
# ----------------------------------------------------------------------
CHILD_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.core import CDRTrainer, NMCDR, NMCDRConfig, TrainerConfig, build_task
    from repro.data import load_scenario, preprocess_scenario

    dataset = preprocess_scenario(
        load_scenario("cloth_sport", scale=0.3, seed=3), min_interactions=3
    )
    task = build_task(dataset, head_threshold=5)
    model = NMCDR(
        task,
        NMCDRConfig(embedding_dim=8, max_matching_neighbors=8, head_threshold=5, seed=0),
    )
    config = TrainerConfig(
        num_epochs={num_epochs},
        batch_size=64,
        seed=0,
        eval_every=0,
        num_eval_negatives=20,
        {extra_config}
    )
    trainer = CDRTrainer(model, task, config)
    print("TRAINING-STARTED", flush=True)
    history = trainer.fit({fit_args})
    print("TRAINING-FINISHED", len(history.epoch_losses), flush=True)
    """
)


def spawn_child(tmp_path, num_epochs, extra_config="", fit_args="", env_extra=None):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(repo_root, "src"), env.get("PYTHONPATH", "")])
    )
    env.pop("REPRO_FAULTS", None)
    if env_extra:
        env.update(env_extra)
    script = CHILD_SCRIPT.format(
        num_epochs=num_epochs, extra_config=extra_config, fit_args=fit_args
    )
    return subprocess.Popen(
        [sys.executable, "-u", "-c", script],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )


def wait_for_started(child, deadline=120.0):
    end = time.monotonic() + deadline
    line = ""
    while time.monotonic() < end:
        line = child.stdout.readline()
        if "TRAINING-STARTED" in line:
            return
        if line == "" and child.poll() is not None:
            break
    raise AssertionError(
        f"child never started training (last line {line!r}): {child.stderr.read()}"
    )


class TestParentKill:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    @pytest.mark.parametrize("pool_sharding", [False, True])
    def test_killed_parent_leaks_nothing(self, task, tmp_path, signum, pool_sharding):
        extra = 'executor="sharded", n_shards=2,'
        if pool_sharding:
            extra += " pool_sharding=True,"
        child = spawn_child(tmp_path, num_epochs=200, extra_config=extra)
        try:
            wait_for_started(child)
            time.sleep(1.5)  # let the shard workers fork and run some steps
            child.send_signal(signum)
            child.wait(timeout=60)
        finally:
            if child.poll() is None:  # pragma: no cover — emergency cleanup
                child.kill()
                child.wait()
        # Every shared-memory segment the child created — parameter blocks
        # and exchange-plane regions alike — is named with its pid; the
        # resource tracker may lag a moment behind the kill.
        prefixes = (f"repro-shm-{child.pid}-", f"repro-xp-{child.pid}-")
        end = time.monotonic() + 10.0
        while time.monotonic() < end and leaked_shm(prefixes):
            time.sleep(0.1)
        assert not leaked_shm(prefixes), (
            f"child leaked shm segments: {leaked_shm(prefixes)}"
        )

    def test_parent_exit_fault_then_resume_bit_identical(self, task, tmp_path):
        """The full kill-and-resume drill, driven by the env grammar."""
        ckpt_dir = tmp_path / "ckpts"
        extra = f'checkpoint_dir=r"{ckpt_dir}", checkpoint_every=1,'
        killed = spawn_child(
            tmp_path,
            num_epochs=2,
            extra_config=extra,
            env_extra={"REPRO_FAULTS": "parent_exit:epoch=0"},
        )
        out, err = killed.communicate(timeout=240)
        assert killed.returncode == faults.FAULT_EXIT_CODE, (out, err)
        assert "TRAINING-FINISHED" not in out
        path = latest_checkpoint(ckpt_dir)
        assert path is not None, "no checkpoint survived the kill"

        resumed = spawn_child(
            tmp_path,
            num_epochs=2,
            extra_config=extra,
            fit_args=f'resume_from=r"{ckpt_dir}"',
        )
        out, err = resumed.communicate(timeout=240)
        assert resumed.returncode == 0, (out, err)
        assert "TRAINING-FINISHED 2" in out

        # The resumed child's final state matches an uninterrupted run.
        history_ref, params_ref = reference_run(task, executor="serial", num_epochs=2)
        from repro.core.checkpoint import load_checkpoint

        final = load_checkpoint(latest_checkpoint(ckpt_dir))
        assert final.meta["history"]["epoch_losses"] == history_ref.epoch_losses
        for name, value in params_ref.items():
            assert np.array_equal(final.parameters[name], value), name
