"""Tests of the profiling subsystem: scopes, op counters, instrumentation."""

import numpy as np

from repro.profiling import Profiler, instrument_ops, profile, profiler
from repro.tensor import Tensor, engine, ops


class TestProfilerScopes:
    def test_scope_is_noop_when_disabled(self):
        local = Profiler()
        with local.scope("idle"):
            pass
        assert not local.scopes

    def test_scope_aggregates_by_name(self):
        local = Profiler()
        local.enabled = True
        for _ in range(3):
            with local.scope("work"):
                pass
        assert local.scopes["work"].calls == 3
        assert local.scopes["work"].seconds >= 0.0

    def test_report_mentions_scopes_and_ops(self):
        local = Profiler()
        local.enabled = True
        with local.scope("train/forward"):
            pass
        local._record_forward_count("matmul")
        local.record_forward_time("matmul", 0.001)
        local._record_backward("matmul", 0.002)
        report = local.report()
        assert "train/forward" in report
        assert "matmul" in report
        snapshot = local.as_dict()
        assert snapshot["scopes"]["train/forward"]["calls"] == 1
        assert snapshot["backward_ops"]["matmul"]["seconds"] > 0


class TestGlobalProfile:
    def test_profile_counts_graph_nodes_and_backward(self):
        with profile() as active:
            x = Tensor(np.ones((4, 3)), requires_grad=True)
            (ops.relu(x) * 2.0).sum().backward()
        assert active.forward_counts.get("relu", 0) >= 1
        assert active.backward_ops.get("relu") is not None
        # hooks removed after the context exits
        assert engine.get_op_hook() is None

    def test_profile_with_instrumentation_times_forward(self):
        with profile(instrument=True) as active:
            x = Tensor(np.ones((8, 8)), requires_grad=True)
            ops.linear(x, Tensor(np.ones((8, 4))), activation="relu").sum().backward()
        assert active.forward_ops["linear"].calls >= 1
        assert active.forward_ops["linear"].seconds > 0
        # patched attributes restored
        assert not hasattr(ops.linear, "__wrapped__")

    def test_instrument_ops_restores_on_error(self):
        local = Profiler()
        try:
            with instrument_ops(local):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not hasattr(ops.matmul, "__wrapped__")


class TestProfileCLI:
    def test_cli_profile_command(self, capsys):
        from repro.cli import main

        code = main(
            [
                "profile",
                "--batches",
                "2",
                "--scale",
                "0.3",
                "--epochs",
                "1",
                "--no-instrument",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profiled NMCDR for 2 training steps" in out
        assert "train/forward" in out

    def test_cli_profile_sharded_executor(self, capsys):
        from repro.cli import main

        code = main(
            [
                "profile",
                "--batches",
                "2",
                "--scale",
                "0.3",
                "--epochs",
                "1",
                "--no-instrument",
                "--executor",
                "sharded",
                "--shards",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "executor=sharded(n_shards=2)" in out
        assert "train/shard_wait" in out
        import multiprocessing

        assert not [
            process
            for process in multiprocessing.active_children()
            if process.name.startswith("repro-shard")
        ]


class TestTrainerIntegration:
    def test_trainer_profile_flag_produces_report(self, tiny_task, tiny_nmcdr_config):
        from repro.core import CDRTrainer, NMCDR, TrainerConfig

        model = NMCDR(tiny_task, tiny_nmcdr_config)
        trainer = CDRTrainer(
            model,
            tiny_task,
            TrainerConfig(num_epochs=1, batch_size=64, eval_every=0, profile=True),
        )
        history = trainer.fit()
        assert history.profile_report is not None
        assert "train/forward" in history.profile_report
        assert not profiler.enabled

    def test_trainer_disables_profiler_when_fit_raises(
        self,
        tiny_task,
        tiny_nmcdr_config,
    ):
        from repro.core import CDRTrainer, NMCDR, TrainerConfig
        from repro.tensor import engine

        model = NMCDR(tiny_task, tiny_nmcdr_config)
        trainer = CDRTrainer(
            model,
            tiny_task,
            TrainerConfig(num_epochs=1, batch_size=64, eval_every=0, profile=True),
        )

        def explode(batches):
            raise KeyboardInterrupt

        model.compute_batch_loss = explode
        try:
            trainer.fit()
        except KeyboardInterrupt:
            pass
        # The engine hooks must be uninstalled even though fit was interrupted.
        assert not profiler.enabled
        assert engine.get_op_hook() is None
