"""Serve-path fault-injection drills (``pytest -m faults``).

The serving counterpart of ``tests/test_faults.py``: every test arms
``reload_corrupt`` / ``reload_crash`` / ``store_stale`` / ``scorer_slow``
specs and proves the resilient-serving contracts of ``repro.serve``:

* a corrupt checkpoint (flipped bytes on disk) or a corrupted shadow
  store (canary divergence) is **rejected with rollback** — the old
  generation keeps serving bit-identical answers, and the very next clean
  reload swaps to answers bit-identical to a cold rebuild (float64);
* a hard kill (``os._exit``) between the store's shadow write and its
  atomic rename leaves the previously published ``.npz`` loadable at its
  old generation — never a torn archive;
* a hard kill after the shadow build but before the in-process swap
  leaves every persisted artifact (checkpoints, store archive) intact;
* under injected micro-batch latency every deadline-carrying request
  answers with a slate or a typed ``deadline_exceeded`` within a bounded
  wall — no hangs — and overload sheds typed, then recovers;
* injected staleness lags drive the whole degradation ladder without a
  live trainer.

The injected-crash exit code (23) is asserted where subprocesses die, so
a real failure can never masquerade as a successfully injected fault.
"""

import json
import os
import subprocess
import sys
import textwrap
import time

import pytest

from repro.core import faults
from repro.core.checkpoint import list_checkpoints
from repro.serve import (
    HotReloader,
    RepresentationStore,
    ScoreRequest,
    Scorer,
    ServeHealth,
    ServeSession,
)

pytestmark = pytest.mark.faults


@pytest.fixture(autouse=True)
def disarm():
    """No fault armed by one test may ever leak into the next."""
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """A trained checkpoint directory with two checkpoints (epochs 1 and 2)."""
    from repro.cli import main as cli_main

    directory = tmp_path_factory.mktemp("serve-faults") / "run"
    rc = cli_main(
        [
            "train",
            "--scenario", "cloth_sport",
            "--scale", "0.3",
            "--epochs", "2",
            "--embedding-dim", "16",
            "--negatives", "10",
            "--seed", "0",
            "--checkpoint-dir", str(directory),
            "--checkpoint-every", "1",
        ]
    )
    assert rc == 0
    assert len(list_checkpoints(directory)) == 2
    return directory


REQUESTS = [
    {"domain": "a", "user": 0, "k": 5},
    {"domain": "b", "user": 3, "k": 4},
    {"domain": "a", "user": 2, "k": 3, "candidates": [9, 1, 9, 4]},
]


def first_checkpoint_session(run_dir):
    first = list_checkpoints(run_dir)[0]
    return ServeSession.from_checkpoint_dir(
        run_dir, checkpoint=first, use_best=False
    )


def answers(session):
    return [session.answer(dict(payload)) for payload in REQUESTS]


def assert_matches_cold_rebuild(session, run_dir, checkpoint):
    cold = ServeSession.from_checkpoint_dir(
        run_dir, checkpoint=checkpoint, use_best=False
    )
    for hot_response, cold_response in zip(answers(session), answers(cold)):
        assert hot_response["items"] == cold_response["items"]
        assert hot_response["scores"] == cold_response["scores"]  # float64
        assert hot_response["params_version"] == cold_response["params_version"]


# ----------------------------------------------------------------------
# reload under fire: corruption is rejected, rollback, then clean swap
# ----------------------------------------------------------------------
class TestReloadUnderFire:
    def test_corrupt_file_rolls_back_then_clean_swap_is_bit_identical(
        self, run_dir, tmp_path
    ):
        import shutil

        session = first_checkpoint_session(run_dir)
        before = answers(session)
        old_generation = session.scorer.store.generation
        reloader = HotReloader(session, use_best=False)

        # the reloader corrupts its own candidate copy, not the run dir
        second = list_checkpoints(run_dir)[1]
        candidate = tmp_path / second.name
        shutil.copy(second, candidate)

        faults.load_env("reload_corrupt:phase=file")
        result = reloader.reload(candidate)
        assert not result.swapped and result["reason"] == "corrupt"
        assert session.health.reload_rejected == 1
        assert session.scorer.store.generation == old_generation
        assert answers(session) == before  # rollback is bit-exact

        # the fault's count budget is spent: the clean original swaps
        result = reloader.reload(second)
        assert result.swapped
        assert result["generation"] == old_generation + 1
        assert_matches_cold_rebuild(session, run_dir, second)

    def test_corrupt_shadow_tables_fail_the_canary(self, run_dir):
        session = first_checkpoint_session(run_dir)
        before = answers(session)
        reloader = HotReloader(session, use_best=False)
        second = list_checkpoints(run_dir)[1]

        faults.load_env("reload_corrupt:phase=table")
        result = reloader.reload(second)
        assert not result.swapped and result["reason"] == "canary"
        assert session.health.reload_rejected_reasons == {"canary": 1}
        assert answers(session) == before

        result = reloader.reload(second)
        assert result.swapped
        assert_matches_cold_rebuild(session, run_dir, second)


# ----------------------------------------------------------------------
# hard kills never tear persisted state (REPRO_FAULTS env grammar)
# ----------------------------------------------------------------------
PUBLISH_CRASH_SCRIPT = textwrap.dedent(
    """
    from repro.core import faults
    from repro.serve import ServeSession

    session = ServeSession.from_checkpoint_dir({run_dir!r}, use_best=False)
    store = session.scorer.store
    store.save({store_dir!r})
    print("FIRST-PUBLISH", store.generation, flush=True)
    store.refresh(session.model, params_version=99)
    # Armed between the publishes: this save dies between the shadow write
    # and the atomic rename.
    faults.load_env("reload_crash:phase=publish")
    store.save({store_dir!r})
    print("UNREACHABLE", flush=True)
    """
)

SWAP_CRASH_SCRIPT = textwrap.dedent(
    """
    from repro.core.checkpoint import list_checkpoints
    from repro.serve import HotReloader, ServeSession

    first, second = list_checkpoints({run_dir!r})
    session = ServeSession.from_checkpoint_dir(
        {run_dir!r}, checkpoint=first, use_best=False
    )
    session.scorer.store.save({store_dir!r})
    print("SERVING", session.scorer.store.generation, flush=True)
    # REPRO_FAULTS=reload_crash:phase=swap kills the reload after the
    # shadow store was built but before the in-process swap.
    HotReloader(session, use_best=False).reload(second)
    print("UNREACHABLE", flush=True)
    """
)


def spawn(script, tmp_path, fault_spec=None):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(repo_root, "src"), env.get("PYTHONPATH", "")])
    )
    env.pop("REPRO_FAULTS", None)
    if fault_spec is not None:
        env["REPRO_FAULTS"] = fault_spec
    return subprocess.run(
        [sys.executable, "-u", "-c", script],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(tmp_path),
        timeout=300,
    )


class TestHardKills:
    def test_publish_crash_leaves_prior_archive_loadable(self, run_dir, tmp_path):
        store_dir = tmp_path / "store"
        result = spawn(
            PUBLISH_CRASH_SCRIPT.format(
                run_dir=str(run_dir), store_dir=str(store_dir)
            ),
            tmp_path,
        )
        assert result.returncode == faults.FAULT_EXIT_CODE, result.stderr
        assert "FIRST-PUBLISH 1" in result.stdout
        assert "UNREACHABLE" not in result.stdout
        # the prior .npz is intact: loadable, generation unbumped
        survivor = RepresentationStore.load(store_dir)
        assert survivor.generation == 1
        assert survivor.params_version != 99

    def test_swap_crash_tears_no_persisted_artifact(self, run_dir, tmp_path):
        from repro.core.checkpoint import load_checkpoint

        store_dir = tmp_path / "store"
        result = spawn(
            SWAP_CRASH_SCRIPT.format(
                run_dir=str(run_dir), store_dir=str(store_dir)
            ),
            tmp_path,
            "reload_crash:phase=swap",
        )
        assert result.returncode == faults.FAULT_EXIT_CODE, result.stderr
        assert "SERVING 1" in result.stdout
        assert "UNREACHABLE" not in result.stdout
        # every persisted artifact survived the mid-reload kill
        assert RepresentationStore.load(store_dir).generation == 1
        for checkpoint in list_checkpoints(run_dir):
            load_checkpoint(checkpoint, params_only=True)
        # ... and a fresh session stands up cleanly from the same run dir
        session = ServeSession.from_checkpoint_dir(run_dir, use_best=False)
        assert len(answers(session)) == len(REQUESTS)


# ----------------------------------------------------------------------
# deadlines + shedding under injected latency: typed, bounded, no hangs
# ----------------------------------------------------------------------
class TestSlowScorer:
    def test_deadline_enforced_under_injected_latency(self, run_dir):
        session = first_checkpoint_session(run_dir)
        scorer = Scorer(
            session.model,
            session.scorer.store,
            micro_batch_size=16,
            default_deadline_ms=50.0,
            health=ServeHealth(),
        )
        faults.configure(faults.parse_spec("scorer_slow:delay=0.1:count=100"))
        start = time.monotonic()
        response = scorer.score_batch(
            [ScoreRequest("a", 0, k=5)], collect_errors=True
        )[0]
        wall = time.monotonic() - start
        assert type(response).__name__ == "ErrorResponse"
        assert response.error == "deadline_exceeded"
        # bounded: the deadline plus at most one injected micro-batch wall
        assert wall < 2.0
        assert scorer.health.deadline_exceeded == 1

    def test_generous_deadline_still_answers_exactly(self, run_dir):
        session = first_checkpoint_session(run_dir)
        store = session.scorer.store
        reference = Scorer(session.model, store).score(ScoreRequest("a", 0, k=5))
        faults.configure(faults.parse_spec("scorer_slow:delay=0.05:count=2"))
        slow = Scorer(session.model, store, default_deadline_ms=60_000.0).score(
            ScoreRequest("a", 0, k=5)
        )
        assert slow.items.tolist() == reference.items.tolist()
        assert slow.scores.tolist() == reference.scores.tolist()

    def test_every_request_typed_under_slow_plus_overload(self, run_dir):
        """The acceptance drill: no hang, no unbounded queue, all typed."""
        session = first_checkpoint_session(run_dir)
        scorer = Scorer(
            session.model,
            session.scorer.store,
            micro_batch_size=16,
            queue_limit=2,
            default_deadline_ms=50.0,
            health=ServeHealth(),
        )
        faults.configure(faults.parse_spec("scorer_slow:delay=0.1:count=100"))
        batch = [ScoreRequest("a", user, k=3) for user in range(6)]
        start = time.monotonic()
        responses = scorer.score_batch(batch, collect_errors=True)
        wall = time.monotonic() - start
        assert wall < 5.0  # cooperative deadlines bound the whole batch
        assert len(responses) == len(batch)
        codes = [getattr(r, "error", "ok") for r in responses]
        # 2 admitted (answer or expire), 4 shed — every one typed
        assert codes.count("overload") == 4
        assert all(code in ("ok", "overload", "deadline_exceeded") for code in codes)
        health = scorer.health.snapshot()["requests"]
        assert health["total"] == 6
        assert health["shed"] == 4

    def test_recovery_after_the_fault_drains(self, run_dir):
        session = first_checkpoint_session(run_dir)
        scorer = Scorer(
            session.model,
            session.scorer.store,
            micro_batch_size=16,
            queue_limit=2,
            default_deadline_ms=5_000.0,
            health=ServeHealth(),
        )
        faults.configure(faults.parse_spec("scorer_slow:delay=0.1:count=1"))
        first = scorer.score_batch([ScoreRequest("a", 0, k=3)], collect_errors=True)
        follow = scorer.score_batch(
            [ScoreRequest("a", 0, k=3), ScoreRequest("b", 1, k=3)],
            collect_errors=True,
        )
        assert all(type(r).__name__ == "ScoreResponse" for r in first + follow)


# ----------------------------------------------------------------------
# injected staleness drives the whole ladder without a live trainer
# ----------------------------------------------------------------------
class TestInjectedStaleness:
    @pytest.fixture()
    def laddered(self, run_dir):
        session = first_checkpoint_session(run_dir)
        store = RepresentationStore.build(
            session.model, session.task, params_version=0, max_staleness=2
        )
        return Scorer(session.model, store, hard_staleness=5, health=ServeHealth())

    def test_lag_walks_every_rung(self, laddered):
        faults.configure(faults.FaultSpec("store_stale", lag=2))
        assert laddered.score(ScoreRequest("a", 0, k=2)).degraded == "stale"

        faults.configure(faults.FaultSpec("store_stale", lag=4))
        assert laddered.score(ScoreRequest("a", 0, k=2)).degraded == "cold_path"

        faults.configure(faults.FaultSpec("store_stale", lag=9))
        response = laddered.score_batch(
            [ScoreRequest("a", 0, k=2)], collect_errors=True
        )[0]
        assert response.error == "unavailable"

        # budget spent: the next read is fresh again
        assert laddered.score(ScoreRequest("a", 0, k=2)).degraded is None
        snapshot = laddered.health.snapshot()["requests"]
        assert snapshot["stale"] == 1
        assert snapshot["cold_path"] == 1
        assert snapshot["unavailable"] == 1
        assert snapshot["fresh"] == 1

    def test_env_grammar_reaches_the_serve_loop(self, run_dir):
        """`REPRO_FAULTS=store_stale:lag=…` flags responses end to end."""
        faults.load_env("store_stale:lag=1:count=1")
        session = ServeSession.from_checkpoint_dir(
            run_dir, use_best=False, max_staleness=2
        )
        lines = [json.dumps({"domain": "a", "user": 0, "k": 2})]
        response = json.loads(next(session.serve_lines(lines, robust=True)))
        assert response["degraded"] == "stale"
        assert session.health.served_stale == 1
