"""Property-based tests for ranking metrics, graphs and data invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data import DomainSpec, ScenarioSpec, generate_scenario
from repro.graph import InteractionGraph
from repro.metrics import hit_rate_at_k, mrr, ndcg_at_k, rank_of_positive

score_matrices = hnp.arrays(
    np.float64,
    st.tuples(st.integers(2, 20), st.integers(2, 30)),
    elements=st.floats(min_value=-5, max_value=5, allow_nan=False, allow_infinity=False),
)


class TestRankingMetricProperties:
    @settings(max_examples=50, deadline=None)
    @given(score_matrices)
    def test_ranks_within_bounds(self, scores):
        ranks = rank_of_positive(scores)
        assert np.all(ranks >= 1)
        assert np.all(ranks <= scores.shape[1])

    @settings(max_examples=50, deadline=None)
    @given(score_matrices)
    def test_hr_monotone_in_k(self, scores):
        values = [hit_rate_at_k(scores, k) for k in range(1, scores.shape[1] + 1)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
        assert values[-1] == 1.0  # the positive always lands somewhere

    @settings(max_examples=50, deadline=None)
    @given(score_matrices)
    def test_ndcg_bounded_by_hr(self, scores):
        for k in (1, 5, 10):
            assert ndcg_at_k(scores, k) <= hit_rate_at_k(scores, k) + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(score_matrices)
    def test_metrics_in_unit_interval(self, scores):
        assert 0.0 <= hit_rate_at_k(scores, 10) <= 1.0
        assert 0.0 <= ndcg_at_k(scores, 10) <= 1.0
        assert 0.0 < mrr(scores) <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(score_matrices)
    def test_negative_permutation_invariance(self, scores):
        rng = np.random.default_rng(0)
        permuted = scores.copy()
        permuted[:, 1:] = permuted[:, 1:][:, rng.permutation(scores.shape[1] - 1)]
        assert hit_rate_at_k(scores, 10) == hit_rate_at_k(permuted, 10)
        assert ndcg_at_k(scores, 10) == ndcg_at_k(permuted, 10)

    @settings(max_examples=50, deadline=None)
    @given(score_matrices)
    def test_boosting_positive_never_hurts(self, scores):
        boosted = scores.copy()
        boosted[:, 0] += 10.0
        assert ndcg_at_k(boosted, 10) >= ndcg_at_k(scores, 10) - 1e-12


@st.composite
def edge_lists(draw):
    num_users = draw(st.integers(min_value=1, max_value=15))
    num_items = draw(st.integers(min_value=1, max_value=15))
    num_edges = draw(st.integers(min_value=0, max_value=40))
    users = draw(
        hnp.arrays(np.int64, num_edges, elements=st.integers(0, num_users - 1))
    )
    items = draw(
        hnp.arrays(np.int64, num_edges, elements=st.integers(0, num_items - 1))
    )
    return num_users, num_items, users, items


class TestGraphProperties:
    @settings(max_examples=50, deadline=None)
    @given(edge_lists())
    def test_degrees_sum_to_edge_count(self, data):
        num_users, num_items, users, items = data
        graph = InteractionGraph(num_users, num_items, users, items)
        assert graph.user_degrees().sum() == graph.num_edges
        assert graph.item_degrees().sum() == graph.num_edges

    @settings(max_examples=50, deadline=None)
    @given(edge_lists())
    def test_aggregation_rows_are_stochastic(self, data):
        num_users, num_items, users, items = data
        graph = InteractionGraph(num_users, num_items, users, items)
        sums = np.asarray(graph.user_aggregation_matrix().sum(axis=1)).ravel()
        degrees = graph.user_degrees()
        assert np.allclose(sums[degrees > 0], 1.0)
        assert np.allclose(sums[degrees == 0], 0.0)

    @settings(max_examples=50, deadline=None)
    @given(edge_lists(), st.integers(min_value=0, max_value=10))
    def test_head_tail_partition_covers_users(self, data, threshold):
        num_users, num_items, users, items = data
        graph = InteractionGraph(num_users, num_items, users, items)
        head, tail = graph.head_tail_split(threshold)
        assert head.size + tail.size == num_users
        assert len(set(head.tolist()) & set(tail.tolist())) == 0


class TestSyntheticDataProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=20, max_value=60),
        st.integers(min_value=20, max_value=50),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=1000),
    )
    def test_generated_scenarios_satisfy_invariants(
        self,
        users_a,
        users_b,
        overlap,
        seed,
    ):
        spec = ScenarioSpec(
            "prop",
            DomainSpec("A", users_a, 30, mean_interactions_per_user=6),
            DomainSpec("B", users_b, 30, mean_interactions_per_user=6),
            num_overlap=min(overlap, users_a, users_b),
            seed=seed,
        )
        dataset = generate_scenario(spec)
        assert dataset.num_overlapping == spec.num_overlap
        assert dataset.domain_a.user_degrees().min() >= spec.domain_a.min_interactions_per_user
        assert dataset.domain_b.user_degrees().min() >= spec.domain_b.min_interactions_per_user
        # no duplicate (user, item) pairs per domain
        for domain in dataset.domains():
            pairs = set(zip(domain.users.tolist(), domain.items.tolist()))
            assert len(pairs) == domain.num_interactions
