"""Tests for the dataset schema, the synthetic generator and preprocessing."""

import numpy as np
import pytest

from repro.data import (
    CDRDataset,
    DomainData,
    DomainSpec,
    ScenarioSpec,
    compact_items,
    filter_min_interactions,
    generate_scenario,
    preprocess_scenario,
)


def make_domain(
    name="D",
    num_users=4,
    num_items=3,
    users=(0, 0, 1, 2),
    items=(0, 1, 1, 2),
    gids=None,
):
    users = np.asarray(users)
    items = np.asarray(items)
    gids = np.arange(num_users) if gids is None else np.asarray(gids)
    return DomainData(
        name=name,
        num_users=num_users,
        num_items=num_items,
        users=users,
        items=items,
        timestamps=np.arange(users.size, dtype=float),
        global_user_ids=gids,
    )


class TestDomainData:
    def test_basic_properties(self):
        domain = make_domain()
        assert domain.num_interactions == 4
        assert domain.density == pytest.approx(4 / 12)
        assert domain.average_interactions_per_item == pytest.approx(4 / 3)
        assert np.array_equal(domain.user_degrees(), [2, 1, 1, 0])
        assert np.array_equal(domain.item_degrees(), [1, 2, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            make_domain(users=(0, 9), items=(0, 1))
        with pytest.raises(ValueError):
            make_domain(items=(0, 9), users=(0, 1))
        with pytest.raises(ValueError):
            DomainData(
                "X",
                2,
                2,
                np.array([0]),
                np.array([0, 1]),
                np.zeros(1),
                np.arange(2),
            )
        with pytest.raises(ValueError):
            make_domain(gids=np.arange(3))

    def test_interaction_graph_roundtrip(self):
        domain = make_domain()
        graph = domain.interaction_graph()
        assert graph.num_edges == domain.num_interactions

    def test_copy_is_independent(self):
        domain = make_domain()
        clone = domain.copy()
        clone.users[0] = 3
        assert domain.users[0] == 0


class TestCDRDataset:
    def _dataset(self):
        domain_a = make_domain("A", gids=np.array([100, 101, 102, 103]))
        domain_b = make_domain("B", gids=np.array([102, 103, 104, 105]))
        return CDRDataset("toy", domain_a, domain_b)

    def test_overlap_pairs(self):
        dataset = self._dataset()
        pairs = dataset.overlap_pairs()
        assert dataset.num_overlapping == 2
        # gid 102 is local 2 in A and local 0 in B; gid 103 is 3 in A and 1 in B.
        assert {tuple(pair) for pair in pairs.tolist()} == {(2, 0), (3, 1)}

    def test_non_overlapping_users(self):
        dataset = self._dataset()
        non_a, non_b = dataset.non_overlapping_users()
        assert set(non_a) == {0, 1}
        assert set(non_b) == {2, 3}

    def test_with_overlap_ratio_zero_and_one(self):
        dataset = self._dataset()
        assert dataset.with_overlap_ratio(1.0).num_overlapping == 2
        assert dataset.with_overlap_ratio(0.0).num_overlapping == 0

    def test_with_overlap_ratio_does_not_mutate_original(self):
        dataset = self._dataset()
        dataset.with_overlap_ratio(0.0)
        assert dataset.num_overlapping == 2

    def test_with_overlap_ratio_validation(self):
        with pytest.raises(ValueError):
            self._dataset().with_overlap_ratio(1.5)

    def test_with_density_reduces_interactions(self):
        scenario = generate_scenario(
            ScenarioSpec(
                "tiny",
                DomainSpec("A", 40, 30, mean_interactions_per_user=8),
                DomainSpec("B", 40, 30, mean_interactions_per_user=8),
                num_overlap=10,
                seed=1,
            )
        )
        sparser = scenario.with_density(0.5)
        assert sparser.domain_a.num_interactions < scenario.domain_a.num_interactions
        # every user keeps at least the minimum needed for leave-one-out
        assert sparser.domain_a.user_degrees().min() >= 3

    def test_with_density_validation(self):
        with pytest.raises(ValueError):
            self._dataset().with_density(0.0)


class TestSyntheticGenerator:
    def test_scenario_shapes_and_overlap(self):
        spec = ScenarioSpec(
            "gen",
            DomainSpec("A", 60, 40, mean_interactions_per_user=7),
            DomainSpec("B", 50, 35, mean_interactions_per_user=7),
            num_overlap=20,
            seed=3,
        )
        dataset = generate_scenario(spec)
        assert dataset.domain_a.num_users == 60
        assert dataset.domain_b.num_users == 50
        assert dataset.num_overlapping == 20

    def test_minimum_interactions_respected(self):
        spec = ScenarioSpec(
            "gen",
            DomainSpec("A", 50, 40, mean_interactions_per_user=6, min_interactions_per_user=5),
            DomainSpec("B", 50, 40, mean_interactions_per_user=6, min_interactions_per_user=5),
            num_overlap=5,
            seed=0,
        )
        dataset = generate_scenario(spec)
        assert dataset.domain_a.user_degrees().min() >= 5

    def test_long_tail_activity(self):
        spec = ScenarioSpec(
            "gen",
            DomainSpec("A", 200, 80, mean_interactions_per_user=8),
            DomainSpec("B", 50, 40, mean_interactions_per_user=8),
            num_overlap=10,
            seed=0,
        )
        degrees = generate_scenario(spec).domain_a.user_degrees()
        # long tail: the median user has far fewer interactions than the heaviest
        assert np.median(degrees) * 2 <= degrees.max()

    def test_determinism(self):
        spec = ScenarioSpec(
            "gen",
            DomainSpec("A", 40, 30),
            DomainSpec("B", 40, 30),
            num_overlap=10,
            seed=42,
        )
        first = generate_scenario(spec)
        second = generate_scenario(spec)
        assert np.array_equal(first.domain_a.users, second.domain_a.users)
        assert np.array_equal(first.domain_b.items, second.domain_b.items)

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            DomainSpec("A", 0, 10)
        with pytest.raises(ValueError):
            DomainSpec(
                "A",
                10,
                10,
                mean_interactions_per_user=1.0,
                min_interactions_per_user=5,
            )
        with pytest.raises(ValueError):
            ScenarioSpec(
                "x",
                DomainSpec("A", 10, 10),
                DomainSpec("B", 10, 10),
                num_overlap=50,
            )


class TestPreprocessing:
    def test_filter_min_interactions(self):
        domain = make_domain()
        filtered = filter_min_interactions(domain, min_interactions=2)
        assert filtered.num_users == 1  # only user 0 has >= 2 interactions
        assert filtered.num_interactions == 2
        assert filtered.global_user_ids.tolist() == [0]

    def test_filter_raises_when_everything_removed(self):
        domain = make_domain()
        with pytest.raises(ValueError):
            filter_min_interactions(domain, min_interactions=10)

    def test_compact_items(self):
        domain = make_domain(items=(0, 0, 0, 0))
        compacted, kept = compact_items(domain)
        assert compacted.num_items == 1
        assert kept.tolist() == [0]
        assert np.all(compacted.items == 0)

    def test_preprocess_scenario_keeps_overlap_structure(self):
        spec = ScenarioSpec(
            "gen",
            DomainSpec("A", 60, 40, mean_interactions_per_user=7),
            DomainSpec("B", 60, 40, mean_interactions_per_user=7),
            num_overlap=20,
            seed=5,
        )
        dataset = preprocess_scenario(generate_scenario(spec), min_interactions=5)
        assert dataset.domain_a.user_degrees().min() >= 5
        assert dataset.num_overlapping > 0
