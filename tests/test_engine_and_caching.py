"""Engine configuration (dtype, buffer pool, topo cache) and operator caching."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import InteractionGraph
from repro.tensor import Tensor, engine, ops


class TestEngineDtype:
    def test_default_is_float64(self):
        assert engine.get_dtype() == np.dtype(np.float64)

    def test_set_and_restore(self):
        previous = engine.set_dtype("float32")
        try:
            assert engine.get_dtype() == np.dtype(np.float32)
            assert Tensor([1.0]).data.dtype == np.float32
        finally:
            engine.set_dtype(previous)
        assert engine.get_dtype() == np.dtype(np.float64)

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with engine.engine_dtype("float32"):
                raise RuntimeError("boom")
        assert engine.get_dtype() == np.dtype(np.float64)

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            engine.set_dtype("float16")
        with pytest.raises(ValueError):
            engine.set_dtype(np.int32)


class TestBufferPool:
    def test_intermediate_gradients_are_recycled(self):
        pool = engine.buffer_pool
        pool.clear()
        x = Tensor(np.ones((7, 5)), requires_grad=True)
        hidden = ops.relu(x * 2.0)
        hidden.sum().backward()
        # Leaf gradient stays, intermediate node buffers returned to the pool.
        assert x.grad is not None
        assert hidden.grad is None
        assert pool.num_buffered() > 0

    def test_second_pass_reuses_buffers(self):
        pool = engine.buffer_pool
        pool.clear()
        for _ in range(2):
            x = Tensor(np.ones((9, 4)), requires_grad=True)
            (ops.tanh(x) * 3.0).sum().backward()
        assert pool.hits > 0

    def test_release_rejects_views(self):
        pool = engine.GradientBufferPool()
        base = np.zeros((4, 4))
        pool.release(base[:2])  # view — must not be pooled
        assert pool.num_buffered() == 0

    def test_acquire_returns_exclusive_buffers(self):
        pool = engine.GradientBufferPool()
        first = pool.acquire((3, 3), np.float64)
        second = pool.acquire((3, 3), np.float64)
        assert first is not second
        pool.release(first)
        third = pool.acquire((3, 3), np.float64)
        assert third is first  # recycled after release


class TestTopologicalOrderCache:
    def test_backward_twice_reuses_order_and_accumulates(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = (x * x).sum()
        loss.backward()
        first = x.grad.copy()
        assert loss._topo_cache is not None
        loss.backward()
        assert np.allclose(x.grad, 2.0 * first)


class TestGraphOperatorCaching:
    def make_graph(self):
        return InteractionGraph(4, 5, [0, 0, 1, 2, 3, 3], [0, 2, 2, 4, 1, 3])

    def test_aggregation_matrices_are_memoised(self):
        graph = self.make_graph()
        assert graph.user_aggregation_matrix() is graph.user_aggregation_matrix()
        assert graph.item_aggregation_matrix() is graph.item_aggregation_matrix()
        assert (
            graph.symmetric_normalized_adjacency()
            is graph.symmetric_normalized_adjacency()
        )

    def test_cache_is_dtype_keyed(self):
        graph = self.make_graph()
        default = graph.user_aggregation_matrix()
        with engine.engine_dtype("float32"):
            fast = graph.user_aggregation_matrix()
            assert fast.dtype == np.float32
            assert fast is graph.user_aggregation_matrix()
        assert fast is not default
        assert graph.user_aggregation_matrix() is default

    def test_symmetric_transpose_matches(self):
        graph = self.make_graph()
        norm = graph.symmetric_normalized_adjacency()
        norm_t = graph.symmetric_normalized_adjacency_transpose()
        assert np.allclose(norm.toarray().T, norm_t.toarray())

    def test_edge_operators_match_coo_construction(self):
        graph = self.make_graph()
        weights = np.arange(1.0, graph.num_edges + 1)
        expected_user = sp.coo_matrix(
            (weights, (graph.user_indices, graph.item_indices)),
            shape=(graph.num_users, graph.num_items),
        ).toarray()
        expected_item = sp.coo_matrix(
            (weights, (graph.item_indices, graph.user_indices)),
            shape=(graph.num_items, graph.num_users),
        ).toarray()
        assert np.allclose(graph.user_edge_operator(weights).toarray(), expected_user)
        assert np.allclose(graph.item_edge_operator(weights).toarray(), expected_item)

    def test_edge_operator_validates_length(self):
        graph = self.make_graph()
        with pytest.raises(ValueError):
            graph.user_edge_operator(np.ones(graph.num_edges + 1))

    def test_edge_sum_operator(self):
        graph = self.make_graph()
        values = np.arange(1.0, graph.num_edges + 1).reshape(-1, 1)
        summed = graph.edge_sum_operator() @ values
        expected = np.zeros((graph.num_users, 1))
        np.add.at(expected, graph.user_indices, values)
        assert np.allclose(summed, expected)
