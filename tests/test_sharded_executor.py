"""Sharded data-parallel step execution: partitioning, equivalence, lifecycle.

The headline guarantees gated here:

* **Fixed-seed equivalence** — under the float64 default engine dtype the
  sharded executor replays the serial loss/metric stream: bit-identical for
  ``n_shards=1`` (the serial-replica mode) and for the graph baselines at
  every tested shard count; for NMCDR with ``n_shards>1`` the validation
  metrics stay bit-identical while epoch losses are gated at float64 ulp
  level (per-shard backward passes necessarily re-associate the gradient
  sum — see the README "Distributed training" determinism notes).
* **Partitioning edge cases** — shards larger than the user population,
  overlap pairs landing on different shards, empty per-shard micro-batches
  and single-domain steps all split and train correctly.
* **Process hygiene** — no worker process survives ``fit`` (normal return,
  mid-epoch crash or killed worker), ``run_step`` raises instead of hanging
  on a dead worker, and ``close`` is idempotent.
"""

import multiprocessing

import numpy as np
import pytest

from repro.baselines import build_model
from repro.core import (
    CDRTrainer,
    NMCDR,
    NMCDRConfig,
    ShardedStepExecutor,
    StepExecutor,
    TrainerConfig,
    build_task,
)
from repro.data import load_scenario
from repro.data.dataloader import Batch, InteractionDataLoader
from repro.data.shard import (
    ShardSplit,
    domain_shard_salt,
    shard_assignments,
    split_joint_batch,
)
from repro.optim import Adam, reduce_gradient_shards


def shard_children():
    """Live shard worker processes spawned by this test process."""
    return [
        process
        for process in multiprocessing.active_children()
        if process.name.startswith("repro-shard")
    ]


@pytest.fixture(scope="module")
def task():
    return build_task(load_scenario("cloth_sport", scale=0.3, seed=13), head_threshold=7)


def build_for(name, task, seed=3):
    if name == "NMCDR":
        return NMCDR(task, NMCDRConfig(embedding_dim=16, seed=seed))
    return build_model(name, task, embedding_dim=16, seed=seed)


def fit_history(task, model_name, **config_overrides):
    config = TrainerConfig(
        num_epochs=2,
        batch_size=128,
        seed=11,
        eval_every=1,
        num_eval_negatives=20,
        **config_overrides,
    )
    trainer = CDRTrainer(build_for(model_name, task), task, config)
    return trainer.fit()


# ----------------------------------------------------------------------
# shard partitioning
# ----------------------------------------------------------------------
class TestShardSplit:
    def make_batch(self, users):
        users = np.asarray(users, dtype=np.int64)
        return Batch(
            users=users,
            items=np.arange(users.size, dtype=np.int64),
            labels=np.linspace(0.0, 1.0, users.size),
        )

    def test_assignment_is_salted_user_modulo(self):
        users = np.array([0, 1, 5, 8, 9])
        np.testing.assert_array_equal(shard_assignments(users, 3), users % 3)
        np.testing.assert_array_equal(shard_assignments(users, 3, salt=2), (users + 2) % 3)

    def test_assignment_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            shard_assignments(np.array([1]), 0)
        with pytest.raises(ValueError):
            split_joint_batch({}, 0)

    def test_split_preserves_order_and_positions_roundtrip(self):
        batch = self.make_batch([7, 2, 9, 4, 2, 11, 8])
        split = split_joint_batch({"a": batch}, 3)
        assert isinstance(split, ShardSplit)
        assert split.full_sizes == {"a": 7}
        reassembled = np.empty_like(batch.users)
        for shard in range(3):
            rows = split.positions["a"][shard]
            micro = split.micro_batches[shard].get("a")
            if micro is None:
                assert rows.size == 0
                continue
            # Relative order within a shard matches the original batch order.
            assert np.all(np.diff(rows) > 0)
            np.testing.assert_array_equal(
                (micro.users + domain_shard_salt("a")) % 3, np.full(len(micro), shard)
            )
            np.testing.assert_array_equal(micro.users, batch.users[rows])
            np.testing.assert_array_equal(micro.items, batch.items[rows])
            np.testing.assert_array_equal(micro.labels, batch.labels[rows])
            reassembled[rows] = micro.users
        np.testing.assert_array_equal(reassembled, batch.users)

    def test_more_shards_than_users_leaves_empty_micro_batches(self):
        batch = self.make_batch([0, 1, 2])
        split = split_joint_batch({"a": batch}, 8)
        non_empty = [shard for shard in split.micro_batches if shard]
        assert len(non_empty) == 3
        assert sum(len(shard["a"]) for shard in non_empty) == 3

    def test_missing_and_empty_domains_are_skipped(self):
        batch = self.make_batch([4, 5])
        empty = self.make_batch([])
        split = split_joint_batch({"a": batch, "b": None, "c": empty}, 2)
        assert set(split.full_sizes) == {"a"}
        assert all("b" not in shard and "c" not in shard for shard in split.micro_batches)

    def test_single_shard_is_identity(self):
        batch = self.make_batch([3, 1, 2])
        split = split_joint_batch({"a": batch}, 1)
        np.testing.assert_array_equal(split.micro_batches[0]["a"].users, batch.users)
        np.testing.assert_array_equal(split.positions["a"][0], np.arange(3))


class TestGradientReduction:
    def test_fixed_order_sum_and_none_preservation(self):
        class FakeParam:
            def __init__(self):
                self.grad = None

        parameters = [FakeParam(), FakeParam()]
        shard_grads = [
            [np.array([1.0, 2.0]), np.array([5.0])],
            [np.array([10.0, 20.0]), np.array([7.0])],
        ]
        masks = [np.array([True, False]), np.array([True, False])]
        reduce_gradient_shards(parameters, shard_grads, masks)
        np.testing.assert_array_equal(parameters[0].grad, [11.0, 22.0])
        assert parameters[1].grad is None
        # The accumulator must not alias a shard's buffer.
        parameters[0].grad[0] = -1.0
        assert shard_grads[0][0][0] == 1.0


# ----------------------------------------------------------------------
# fixed-seed equivalence gates (float64)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestShardedEquivalence:
    """The PR-2/PR-3 equivalence-gate pattern extended to ``n_shards``."""

    def test_single_shard_replica_is_bit_identical_to_serial(self, task):
        serial = fit_history(task, "NMCDR")
        sharded = fit_history(task, "NMCDR", executor="sharded", n_shards=1)
        assert serial.epoch_losses == sharded.epoch_losses
        assert serial.validation_metrics == sharded.validation_metrics

    def test_four_shards_match_the_sampled_serial_stream(self, task):
        # Both sides build their step plans from the same pool machinery, so
        # the decomposition is gated bit-for-bit against the serial sampled
        # executor (which PR-2 gates against the full-graph forward).
        serial = fit_history(task, "NMCDR", sampled_subgraph_training=True)
        sharded = fit_history(
            task,
            "NMCDR",
            executor="sharded",
            n_shards=4,
            sampled_subgraph_training=True,
        )
        assert serial.epoch_losses == sharded.epoch_losses
        assert serial.validation_metrics == sharded.validation_metrics

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_sharded_nmcdr_matches_serial_at_ulp_level(self, task, n_shards):
        serial = fit_history(task, "NMCDR")
        sharded = fit_history(task, "NMCDR", executor="sharded", n_shards=n_shards)
        # Validation metrics are bit-identical; epoch losses are gated at
        # float64 ulp level (the per-shard gradient sum re-associates the
        # serial backward's reductions).
        assert serial.validation_metrics == sharded.validation_metrics
        np.testing.assert_allclose(
            serial.epoch_losses, sharded.epoch_losses, rtol=1e-11, atol=0.0
        )

    @pytest.mark.parametrize(
        "model_name,n_shards", [("GA-DTCDR", 2), ("GA-DTCDR", 4), ("HeroGraph", 4)]
    )
    def test_sharded_graph_baselines_are_bit_identical(self, task, model_name, n_shards):
        serial = fit_history(task, model_name)
        sharded = fit_history(task, model_name, executor="sharded", n_shards=n_shards)
        assert serial.epoch_losses == sharded.epoch_losses
        assert serial.validation_metrics == sharded.validation_metrics

    def test_sharded_runs_are_reproducible(self, task):
        first = fit_history(task, "NMCDR", executor="sharded", n_shards=4)
        second = fit_history(task, "NMCDR", executor="sharded", n_shards=4)
        assert first.epoch_losses == second.epoch_losses
        assert first.validation_metrics == second.validation_metrics

    def test_prefetched_pipeline_composes_with_sharding(self, task):
        plain = fit_history(task, "NMCDR", executor="sharded", n_shards=2)
        prefetched = fit_history(
            task, "NMCDR", executor="sharded", n_shards=2, prefetch_epochs=1
        )
        assert plain.epoch_losses == prefetched.epoch_losses
        assert plain.validation_metrics == prefetched.validation_metrics


# ----------------------------------------------------------------------
# partitioning edge cases through the real executor
# ----------------------------------------------------------------------
class TestShardedStepEdgeCases:
    def serial_and_sharded_executors(self, task, n_shards):
        """Two models with identical weights, one serial and one sharded."""
        executors = []
        for kind in ("serial", "sharded"):
            model = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3))
            optimizer = Adam(model.parameters(), lr=1e-3)
            if kind == "serial":
                executors.append(StepExecutor(model, optimizer, grad_clip_norm=5.0))
            else:
                executors.append(
                    ShardedStepExecutor(
                        model, optimizer, grad_clip_norm=5.0, n_shards=n_shards
                    )
                )
        return executors

    def one_batch(self, task, key="a", batch_size=64, seed=5):
        loader = InteractionDataLoader(
            task.domain(key).split, batch_size=batch_size, rng=np.random.default_rng(seed)
        )
        return next(iter(loader))

    def test_overlap_pairs_land_on_different_shards(self, task):
        # The per-domain salt decorrelates the two domains' shard maps, so
        # the equivalence gates above continuously exercise overlap partners
        # on different shards (the per-shard plans carry the partner closure).
        pairs = task.overlap_pairs
        shard_a = shard_assignments(pairs[:, 0], 2, salt=domain_shard_salt("a"))
        shard_b = shard_assignments(pairs[:, 1], 2, salt=domain_shard_salt("b"))
        assert np.any(shard_a != shard_b)

    def test_more_shards_than_batch_users_matches_serial(self, task):
        serial, sharded = self.serial_and_sharded_executors(task, n_shards=4)
        try:
            batch_a = self.one_batch(task, "a", batch_size=6)
            batch_b = self.one_batch(task, "b", batch_size=6)
            batches = {"a": batch_a, "b": batch_b}
            serial_loss = serial.run_step(batches)
            sharded_loss = sharded.run_step(batches)
            assert sharded_loss == pytest.approx(serial_loss, rel=1e-12)
        finally:
            sharded.close()

    def test_single_domain_step_preserves_grad_sparsity(self, task):
        serial, sharded = self.serial_and_sharded_executors(task, n_shards=2)
        try:
            batches = {"a": self.one_batch(task, "a")}
            serial_loss = serial.run_step(batches)
            sharded_loss = sharded.run_step(batches)
            assert sharded_loss == pytest.approx(serial_loss, rel=1e-12)
            # Domain-b-only parameters saw no examples: the reduced gradient
            # must stay None on both sides (Adam moments must not advance).
            serial_none = [p.grad is None for p in serial.optimizer.parameters]
            sharded_none = [p.grad is None for p in sharded.optimizer.parameters]
            assert serial_none == sharded_none
            assert any(serial_none)
            for serial_p, sharded_p in zip(
                serial.optimizer.parameters, sharded.optimizer.parameters
            ):
                if serial_p.grad is not None:
                    np.testing.assert_allclose(
                        serial_p.grad, sharded_p.grad, rtol=1e-9, atol=1e-12
                    )
        finally:
            sharded.close()

    def test_step_with_empty_micro_batch_matches_serial(self, task):
        serial, sharded = self.serial_and_sharded_executors(task, n_shards=2)
        try:
            batch = self.one_batch(task, "a", batch_size=32)
            assignments = shard_assignments(batch.users, 2, salt=domain_shard_salt("a"))
            rows = np.flatnonzero(assignments == assignments[0])
            even_only = Batch(
                users=batch.users[rows],
                items=batch.items[rows],
                labels=batch.labels[rows],
            )
            assert len(even_only) > 0
            # One shard receives no examples at all and must still lock-step.
            serial_loss = serial.run_step({"a": even_only})
            sharded_loss = sharded.run_step({"a": even_only})
            assert sharded_loss == pytest.approx(serial_loss, rel=1e-12)
        finally:
            sharded.close()


# ----------------------------------------------------------------------
# lifecycle, wiring and process hygiene
# ----------------------------------------------------------------------
class TestShardedLifecycle:
    def make_trainer(self, task, n_shards=2, **overrides):
        config = TrainerConfig(
            num_epochs=1,
            batch_size=128,
            seed=11,
            executor="sharded",
            n_shards=n_shards,
            **overrides,
        )
        model = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3))
        return CDRTrainer(model, task, config)

    def test_trainer_config_builds_sharded_executor(self, task):
        trainer = self.make_trainer(task)
        assert isinstance(trainer._executor, ShardedStepExecutor)
        assert trainer._executor.n_shards == 2

    def test_invalid_executor_and_shard_count_rejected(self):
        with pytest.raises(ValueError):
            TrainerConfig(executor="distributed")
        with pytest.raises(ValueError):
            TrainerConfig(n_shards=0)

    def test_no_worker_survives_fit(self, task):
        trainer = self.make_trainer(task)
        trainer.fit()
        assert shard_children() == []

    def test_close_is_idempotent_and_safe_before_open(self, task):
        trainer = self.make_trainer(task)
        executor = trainer._executor
        executor.close()  # never opened
        executor.open()
        assert executor.is_open and len(shard_children()) == 2
        executor.close()
        executor.close()
        assert not executor.is_open and shard_children() == []

    def test_killed_worker_raises_instead_of_hanging(self, task):
        trainer = self.make_trainer(task)
        executor = trainer._executor
        executor.open()
        executor._workers[1].terminate()
        executor._workers[1].join(timeout=5.0)
        batch = next(iter(trainer._loaders["a"]))
        with pytest.raises(RuntimeError, match="shard worker 1"):
            executor.run_step({"a": batch})
        assert shard_children() == []

    def test_worker_error_propagates_with_traceback(self, task):
        trainer = self.make_trainer(task)
        executor = trainer._executor
        bad = Batch(
            users=np.array([10**9], dtype=np.int64),
            items=np.array([0], dtype=np.int64),
            labels=np.array([1.0]),
        )
        with pytest.raises(RuntimeError, match="worker traceback"):
            executor.run_step({"a": bad})
        assert shard_children() == []

    def test_mid_epoch_crash_leaves_no_worker_processes(self, task):
        class ExplodingLoader:
            """Yields one real batch, then fails like a poisoned pipeline."""

            def __init__(self, loader):
                self.loader = loader

            def __len__(self):
                return len(self.loader)

            def __iter__(self):
                iterator = iter(self.loader)
                yield next(iterator)
                raise RuntimeError("poisoned batch stream")

        trainer = self.make_trainer(task)
        trainer._loaders["a"] = ExplodingLoader(trainer._loaders["a"])
        with pytest.raises(RuntimeError, match="poisoned batch stream"):
            trainer.fit()
        assert shard_children() == []

    def test_models_without_pointwise_loss_are_rejected(self, task):
        model = build_model("BPR", task, embedding_dim=16, seed=3)
        optimizer = Adam(model.parameters(), lr=1e-3)
        with pytest.raises(TypeError, match="serial StepExecutor"):
            ShardedStepExecutor(model, optimizer, n_shards=2)

    def test_dropout_models_are_rejected(self, task):
        model = NMCDR(task, NMCDRConfig(embedding_dim=16, seed=3, dropout=0.2))
        optimizer = Adam(model.parameters(), lr=1e-3)
        with pytest.raises(ValueError, match="dropout"):
            ShardedStepExecutor(model, optimizer, n_shards=2)

    def test_finalizer_shuts_workers_down_without_close(self, task):
        trainer = self.make_trainer(task)
        executor = trainer._executor
        executor.open()
        assert len(shard_children()) == 2
        finalizer = executor._finalizer
        # Dropping the last reference triggers the weakref.finalize teardown
        # (the same callback also runs at interpreter exit, so an executor
        # crash mid-epoch cannot leak worker processes).
        trainer._executor = None
        del executor
        import gc

        gc.collect()
        assert not finalizer.alive
        for process in shard_children():
            process.join(timeout=5.0)
        assert shard_children() == []
