"""Tests for the CLI, the CSV figure exports and the Random/Popularity anchors."""

import numpy as np
import pytest

from repro.baselines import PopularityModel, RandomModel, build_model
from repro.cli import build_parser, main
from repro.core import CDRTrainer, TrainerConfig
from repro.experiments import (
    ExperimentSettings,
    run_head_threshold_sweep,
    run_overlap_sweep,
)
from repro.experiments.figures import (
    hyperparameter_sweep_to_csv,
    overlap_sweep_to_csv,
    projection_to_csv,
)
from repro.metrics import RankingEvaluator

TINY = ExperimentSettings(
    scenario="cloth_sport",
    scale=0.25,
    num_epochs=1,
    num_eval_negatives=15,
    embedding_dim=8,
)


class TestSimpleBaselines:
    def test_random_model_is_at_chance(self, tiny_task):
        model = RandomModel(tiny_task, seed=0)
        evaluator = RankingEvaluator(
            tiny_task.domain_a.split, "a", num_negatives=30, rng=np.random.default_rng(0)
        )
        report = evaluator.evaluate(model)
        expected = 10.0 / evaluator.candidates.shape[1]
        assert report["hr@10"] == pytest.approx(expected, abs=0.12)

    def test_popularity_model_beats_random(self, tiny_task):
        popularity = PopularityModel(tiny_task, seed=0)
        random_model = RandomModel(tiny_task, seed=0)
        evaluator = RankingEvaluator(
            tiny_task.domain_a.split, "a", num_negatives=30, rng=np.random.default_rng(1)
        )
        assert (
            evaluator.evaluate(popularity)["ndcg@10"]
            >= evaluator.evaluate(random_model)["ndcg@10"]
        )

    def test_popularity_scores_match_training_counts(self, tiny_task):
        model = PopularityModel(tiny_task, seed=0)
        popularity = model.item_popularity("a")
        most_popular = int(np.argmax(popularity))
        least_popular = int(np.argmin(popularity))
        scores = model.score(
            "a",
            np.array([0, 0]),
            np.array([most_popular, least_popular]),
        )
        assert scores[0] >= scores[1]

    def test_simple_models_trainable_without_error(self, tiny_task):
        for name in ("Random", "Popularity"):
            model = build_model(name, tiny_task, embedding_dim=8)
            trainer = CDRTrainer(
                model, tiny_task, TrainerConfig(num_epochs=1, num_eval_negatives=10)
            )
            history = trainer.fit()
            assert np.isfinite(history.final_loss)


class TestFigureExports:
    def test_overlap_csv(self, tmp_path):
        sweep = run_overlap_sweep(
            "cloth_sport", model_names=("LR",), overlap_ratios=(0.5,), settings=TINY
        )
        content = overlap_sweep_to_csv(sweep, tmp_path / "overlap.csv")
        assert (tmp_path / "overlap.csv").exists()
        lines = content.strip().splitlines()
        assert lines[0].startswith("scenario,model,domain")
        assert len(lines) == 1 + 1 * 2 * 1  # header + models * domains * ratios

    def test_hyperparameter_csv(self, tmp_path):
        sweep = run_head_threshold_sweep("cloth_sport", thresholds=(5,), settings=TINY)
        content = hyperparameter_sweep_to_csv(sweep, tmp_path / "fig4.csv")
        assert "head_threshold" in content.splitlines()[0]
        assert len(content.strip().splitlines()) == 2

    def test_projection_csv(self):
        projection = {
            "coordinates": np.array([[0.0, 1.0], [2.0, 3.0]]),
            "is_head": np.array([True, False]),
            "user_indices": np.array([4, 7]),
        }
        content = projection_to_csv(projection)
        lines = content.strip().splitlines()
        assert lines[0] == "user_index,x,y,is_head"
        assert lines[1].startswith("4,")


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(
            ["overlap", "--scenario", "loan_fund", "--ratios", "0.5"],
        )
        assert args.command == "overlap"
        assert args.scenario == "loan_fund"
        with pytest.raises(SystemExit):
            parser.parse_args(["unknown-command"])

    def test_stats_command(self, capsys):
        assert main(["stats"]) == 0
        captured = capsys.readouterr()
        assert "music_movie" in captured.out
        assert "Loan" in captured.out

    def test_overlap_command_with_output(self, tmp_path, capsys):
        exit_code = main(
            [
                "overlap",
                "--scenario", "cloth_sport",
                "--scale", "0.25",
                "--epochs", "1",
                "--negatives", "15",
                "--embedding-dim", "8",
                "--models", "LR", "NMCDR",
                "--ratios", "0.5",
                "--output", str(tmp_path),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "NMCDR win fraction" in captured.out
        assert (tmp_path / "overlap_cloth_sport.csv").exists()

    def test_threshold_command(self, capsys):
        exit_code = main(
            [
                "threshold",
                "--scenario", "cloth_sport",
                "--scale", "0.25",
                "--epochs", "1",
                "--negatives", "15",
                "--embedding-dim", "8",
                "--values", "5",
            ]
        )
        assert exit_code == 0
        assert "head_threshold" in capsys.readouterr().out
