"""Table IX — ablation of the NMCDR components (w/o-Igm, w/o-Cgm, w/o-Inc, w/o-Sup)."""

from __future__ import annotations

from conftest import bench_settings, run_once, write_report

from repro.experiments import fast_mode, run_ablation
from repro.experiments.ablation import ABLATION_MODEL_NAMES


def _run():
    if fast_mode():
        scenarios = ("cloth_sport",)
    else:
        scenarios = ("music_movie", "cloth_sport", "phone_elec", "loan_fund")
    return {
        scenario: run_ablation(
            scenario,
            overlap_ratio=0.5,
            settings=bench_settings(scenario),
            model_names=ABLATION_MODEL_NAMES,
        )
        for scenario in scenarios
    }


def test_bench_table9_ablation(benchmark):
    results = run_once(benchmark, _run)

    lines = ["Table IX: ablation study at Ku=50%"]
    for scenario, ablation in results.items():
        for domain_key in ("a", "b"):
            lines.append("")
            lines.append(ablation.format_table(domain_key))
        contributions = ablation.component_contributions("a")
        lines.append("")
        lines.append(f"component contributions (NDCG@10 drop when removed, domain A): {contributions}")
    write_report("table9_ablation", "\n".join(lines))

    for scenario, ablation in results.items():
        # The full model beats the majority of its ablated variants across the
        # two domains (per-variant deltas are small and noisy at this scale,
        # exactly as in Table IX where differences are <2 NDCG points).
        wins = 0
        comparisons = 0
        for variant in ABLATION_MODEL_NAMES:
            if variant == "NMCDR":
                continue
            for domain_key in ("a", "b"):
                comparisons += 1
                if ablation.full_beats_variant(variant, domain_key):
                    wins += 1
        assert wins >= comparisons / 2, (
            f"full NMCDR should outperform most ablated variants on {scenario} "
            f"(won {wins}/{comparisons})"
        )
