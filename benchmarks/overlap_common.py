"""Shared implementation of the Tables II–V overlap-sweep benches."""

from __future__ import annotations

from conftest import bench_settings, run_once, sweep_models, sweep_overlap_ratios, write_report

from repro.experiments import run_overlap_sweep
from repro.experiments.paper_reference import improvement_reference_row


def run_overlap_bench(benchmark, scenario: str, report_name: str) -> None:
    """Run the overlap sweep for one scenario, write the report, assert the claims."""
    settings = bench_settings(scenario)
    ratios = sweep_overlap_ratios()
    models = sweep_models()

    sweep = run_once(
        benchmark,
        run_overlap_sweep,
        scenario,
        model_names=models,
        overlap_ratios=ratios,
        settings=settings,
    )

    lines = [f"{report_name}: overlap-ratio sweep on {scenario} (measured values are fractions x100 = %)"]
    for domain_key in ("a", "b"):
        lines.append("")
        lines.append(sweep.format_table(domain_key))
        domain_name = (
            sweep.per_ratio[0].task_summary["domain_a"]["name"]
            if domain_key == "a"
            else sweep.per_ratio[0].task_summary["domain_b"]["name"]
        )
        lines.append(
            f"NMCDR win fraction ({domain_name}): "
            f"{sweep.nmcdr_win_fraction(domain_key):.2f}  |  "
            f"mean improvement over best baseline: {sweep.mean_improvement(domain_key):.1f}%"
        )
        try:
            paper_improvements = improvement_reference_row(scenario, domain_name)
            mean_paper = sum(pair[0] for pair in paper_improvements) / len(paper_improvements)
            lines.append(f"paper mean NDCG improvement over second-best: {mean_paper:.1f}%")
        except KeyError:
            pass
    write_report(report_name, "\n".join(lines))

    # Headline claim: NMCDR is the strongest model at (almost) every overlap
    # ratio.  At the reproduction's scale individual points are noisy (the
    # paper's own margins on the Loan/Fund domains are <2 NDCG points), so the
    # check aggregates over the whole sweep and both domains rather than
    # requiring a win at every single point.
    combined_win_fraction = (sweep.nmcdr_win_fraction("a") + sweep.nmcdr_win_fraction("b")) / 2
    assert combined_win_fraction >= 0.5, (
        f"NMCDR should win at least half of all sweep points across both domains "
        f"(got {combined_win_fraction:.2f})"
    )
    # NMCDR beats the best baseline on average in at least one domain and never
    # collapses in the other (stays within 15% of the best baseline on average).
    improvements = [sweep.mean_improvement("a"), sweep.mean_improvement("b")]
    assert max(improvements) > 0.0
    assert min(improvements) > -15.0
