"""Shared helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper on scaled-down
synthetic data, asserts the qualitative claim it supports, writes a
paper-vs-measured report under ``benchmarks/results/`` and times the
experiment with pytest-benchmark.

Two modes:

* **fast** (default): reduced sweeps / model subsets so the whole suite
  finishes in minutes on a laptop CPU.
* **full**: set ``REPRO_FULL=1`` to run all sweep points and the complete
  model roster (closer to the paper's tables, considerably slower).
"""

from __future__ import annotations

from pathlib import Path


from repro.experiments import ExperimentSettings, fast_mode

RESULTS_DIR = Path(__file__).parent / "results"


def bench_settings(scenario: str, **overrides) -> ExperimentSettings:
    """Experiment settings sized for the current bench mode."""
    if fast_mode():
        defaults = dict(
            scenario=scenario,
            scale=0.6,
            num_epochs=12,
            num_eval_negatives=99,
            embedding_dim=32,
            batch_size=256,
        )
    else:
        defaults = dict(
            scenario=scenario,
            scale=1.0,
            num_epochs=20,
            num_eval_negatives=99,
            embedding_dim=32,
            batch_size=256,
        )
    defaults.update(overrides)
    return ExperimentSettings(**defaults)


def sweep_overlap_ratios():
    """Overlap ratios exercised by the Tables II–V benches."""
    if fast_mode():
        return (0.1, 0.5, 0.9)
    return (0.001, 0.01, 0.10, 0.50, 0.90)


def sweep_models():
    """Model roster exercised by the Tables II–V benches."""
    if fast_mode():
        return ("LR", "PLE", "GA-DTCDR", "PTUPCDR", "NMCDR")
    return (
        "LR",
        "BPR",
        "NeuMF",
        "MMoE",
        "PLE",
        "CoNet",
        "MiNet",
        "GA-DTCDR",
        "DML",
        "HeroGraph",
        "PTUPCDR",
        "NMCDR",
    )


def write_report(name: str, content: str) -> Path:
    """Persist a bench's textual report under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        function,
        args=args,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
