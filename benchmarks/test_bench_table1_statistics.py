"""Table I — dataset statistics of the four CDR scenarios.

Regenerates the synthetic counterpart of Table I and checks that the
qualitative shape of the paper's datasets is preserved: relative domain
sizes, relative densities and the overlap counts.
"""

from __future__ import annotations

from conftest import run_once, write_report

from repro.data import (
    SCENARIO_NAMES,
    format_statistics_table,
    load_scenario,
    paper_table1_reference,
    scenario_statistics,
)


def _generate_all_statistics():
    datasets = {name: load_scenario(name, scale=0.6) for name in SCENARIO_NAMES}
    stats = [scenario_statistics(dataset) for dataset in datasets.values()]
    return datasets, stats


def test_bench_table1_statistics(benchmark):
    datasets, stats = run_once(benchmark, _generate_all_statistics)

    lines = ["Table I reproduction (synthetic, scaled down)", ""]
    lines.append(format_statistics_table(stats))
    lines.append("")
    lines.append("Paper-reported full-scale statistics:")
    for name in SCENARIO_NAMES:
        reference = paper_table1_reference(name)
        for domain in reference["domains"]:
            lines.append(
                f"  {name:<14}{domain['name']:<8}users={domain['users']:>8} "
                f"items={domain['items']:>7} ratings={domain['ratings']:>9} "
                f"density={domain['density']:.4%}"
            )
    write_report("table1_statistics", "\n".join(lines))

    # Qualitative shape checks against Table I.
    music_movie = datasets["music_movie"]
    cloth_sport = datasets["cloth_sport"]
    loan_fund = datasets["loan_fund"]

    # Movie is the larger/denser partner of Music (more ratings), as in the paper.
    assert music_movie.domain_b.num_interactions > music_movie.domain_a.num_interactions
    # Sport has more users than Cloth.
    assert cloth_sport.domain_b.num_users > cloth_sport.domain_a.num_users
    # Loan–Fund has far more interactions per item than the Amazon-style pairs.
    assert (
        loan_fund.domain_a.average_interactions_per_item
        > 2 * cloth_sport.domain_a.average_interactions_per_item
    )
    # Every scenario has a non-trivial overlapped user population.
    for dataset in datasets.values():
        assert dataset.num_overlapping >= 10
