"""Fresh-process probe for the eager-vs-traced paired step-wall ratio.

Run as a script (``python benchmarks/traced_replay_probe.py [scale]``) with
``src`` on ``PYTHONPATH``; prints a JSON record to stdout.

Why a subprocess instead of measuring inline in the bench suite: eager's
step wall is sensitive to process history — the allocator state a long
pytest run accumulates (adapted malloc thresholds, recycled large blocks,
huge-page coalescing) changes what eager's per-step multi-megabyte
temporaries cost, by tens of percent in either direction.  Traced replay
never allocates per step (arena-backed slabs, capacity-grown scratch), so
it is insensitive, and the *ratio* measured inside a warm suite process
reflects the suite's allocator history rather than the regime a real
training launch sees.  A fresh process per measurement makes the record
reproducible regardless of what ran before it.

Pairing is ABBA at block granularity (ET TE ET ...): both executors consume
the same batch stream; alternating which mode runs first cancels slow drift
in machine load.  Per-step interleaving would be wrong here — it evicts the
traced program's resident slabs between every step, a cache state that
never occurs in real training.  The first block-pair (trace recording plus
cold caches) is dropped from the timing, not from the stats.
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.core import NMCDR, NMCDRConfig, build_task
from repro.core.engine import StepExecutor
from repro.data import load_scenario
from repro.data.dataloader import InteractionDataLoader
from repro.optim import Adam
from repro.tensor import engine


def paired_step_walls(task, sampled: bool, block: int = 6, num_blocks: int = 8):
    """ABBA block-paired eager vs traced serial step walls on one task."""
    executors = {}
    for traced in (False, True):
        model = NMCDR(task, NMCDRConfig(embedding_dim=32, seed=0))
        if sampled:
            model.configure_subgraph_sampling(True, num_hops=1, fanout=8)
        optimizer = Adam(model.parameters(), lr=1e-3)
        executor = StepExecutor(model, optimizer, traced=traced)
        executor.open()
        executors[traced] = executor
    iterators = [
        iter(
            InteractionDataLoader(
                task.domain(key).split,
                batch_size=128,
                rng=np.random.default_rng(index + 1),
            )
        )
        for index, key in enumerate(("a", "b"))
    ]
    walls = {False: [], True: []}
    losses_match = True
    for pair in range(num_blocks):
        batches = []
        for _ in range(block):
            batch_a, batch_b = (next(iterator, None) for iterator in iterators)
            batches.append({"a": batch_a, "b": batch_b})
        order = (False, True) if pair % 2 == 0 else (True, False)
        results = {}
        for traced in order:
            executor = executors[traced]
            started = time.perf_counter()
            results[traced] = [executor.run_step(batch) for batch in batches]
            walls[traced].append(time.perf_counter() - started)
        losses_match = losses_match and results[False] == results[True]
    stats = executors[True]._trace_runtime.stats.as_dict()
    for executor in executors.values():
        executor.close()
    steps = (num_blocks - 1) * block
    eager_wall, traced_wall = sum(walls[False][1:]), sum(walls[True][1:])
    return {
        "num_steps": steps,
        "eager_s_per_step": eager_wall / steps,
        "traced_s_per_step": traced_wall / steps,
        "traced_step_ratio": traced_wall / eager_wall,
        "losses_match": losses_match,
        "hits": stats["hits"],
        "misses": stats["misses"],
        "fallbacks": stats["fallbacks"],
        "hit_rate": stats["hit_rate"],
    }


def main(argv):
    scale = float(argv[1]) if len(argv) > 1 else 18.0
    with engine.engine_dtype("float32"):
        task = build_task(
            load_scenario("cloth_sport", scale=scale, seed=13), head_threshold=7
        )
        record = {
            "serial": paired_step_walls(task, sampled=False),
            "serial_sampled": paired_step_walls(task, sampled=True),
        }
    json.dump(record, sys.stdout)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main(sys.argv)
