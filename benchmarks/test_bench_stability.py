"""Section II.H — empirical check of the model-stability bound (Eq. 31)."""

from __future__ import annotations

import numpy as np
from conftest import bench_settings, run_once, write_report

from repro.core import CDRTrainer, NMCDR, build_task, stability_report
from repro.experiments.runner import prepare_dataset


def _run():
    settings = bench_settings("cloth_sport", overlap_ratio=0.5)
    dataset = prepare_dataset(settings)
    task = build_task(dataset, head_threshold=settings.head_threshold)
    model = NMCDR(task, settings.nmcdr_config())
    CDRTrainer(model, task, settings.trainer_config()).fit()

    reports = {}
    for scale in (0.01, 0.05, 0.2):
        reports[scale] = {
            key: stability_report(model, key, perturbation_scale=scale, rng=np.random.default_rng(0))
            for key in ("a", "b")
        }
    return reports


def test_bench_stability(benchmark):
    reports = run_once(benchmark, _run)

    lines = ["Stability analysis (Sec. II.H): Eq. 31 coefficient vs empirical score deviation", ""]
    header = f"{'perturbation':>14}{'domain':>8}{'bound coeff':>14}{'mean dev':>12}{'max dev':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for scale, per_domain in reports.items():
        for key, report in per_domain.items():
            lines.append(
                f"{scale:>14.2f}{key:>8}{report.theoretical_bound_coefficient:>14.4f}"
                f"{report.mean_empirical_deviation:>12.5f}{report.max_empirical_deviation:>12.5f}"
            )
    lines.append("")
    lines.append(
        "Claim: prediction deviation grows with the perturbation magnitude and stays well "
        "below the Lipschitz-style bound, i.e. the model is stable but not degenerate."
    )
    write_report("stability", "\n".join(lines))

    scales = sorted(reports)
    for key in ("a", "b"):
        deviations = [reports[scale][key].mean_empirical_deviation for scale in scales]
        # deviation grows (weakly) with the perturbation scale
        assert deviations[-1] >= deviations[0]
        # bound coefficient is finite and positive
        assert reports[scales[0]][key].theoretical_bound_coefficient > 0
