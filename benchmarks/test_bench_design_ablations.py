"""Design-choice ablations beyond Table IX.

The paper notes that the heterogeneous graph encoder's message-mapping
function "can be replaced with any proposed graph neural network kernels such
as GCN and GAT" and uses three stacked aggregation layers in the matching
module.  This bench sweeps both design choices (kernel type, number of
matching layers) on one scenario so the sensitivity of the architecture is
documented, mirroring the DESIGN.md ablation list.
"""

from __future__ import annotations

from conftest import bench_settings, run_once, write_report

from repro.core import CDRTrainer, NMCDR, build_task
from repro.experiments import fast_mode
from repro.experiments.runner import prepare_dataset


def _evaluate_config(task, settings, **overrides):
    config = settings.nmcdr_config().variant(**overrides)
    model = NMCDR(task, config)
    trainer = CDRTrainer(model, task, settings.trainer_config())
    trainer.fit()
    metrics = trainer.evaluate(subset="test")
    return {
        "ndcg_a": metrics["a"]["ndcg@10"],
        "ndcg_b": metrics["b"]["ndcg@10"],
        "hr_a": metrics["a"]["hr@10"],
        "hr_b": metrics["b"]["hr@10"],
    }


def _run():
    settings = bench_settings("cloth_sport", overlap_ratio=0.5)
    dataset = prepare_dataset(settings)
    task = build_task(dataset, head_threshold=settings.head_threshold)

    kernels = ("vanilla", "gcn") if fast_mode() else ("vanilla", "gcn", "gat")
    kernel_results = {
        kernel: _evaluate_config(task, settings, gnn_kernel=kernel) for kernel in kernels
    }

    layer_counts = (1, 2) if fast_mode() else (1, 2, 3)
    layer_results = {
        layers: _evaluate_config(task, settings, num_matching_layers=layers)
        for layers in layer_counts
    }
    return kernel_results, layer_results


def test_bench_design_ablations(benchmark):
    kernel_results, layer_results = run_once(benchmark, _run)

    lines = ["Design-choice ablations on cloth_sport at Ku=50% (NDCG@10 / HR@10)"]
    lines.append("")
    lines.append("GNN kernel of the heterogeneous graph encoder:")
    for kernel, metrics in kernel_results.items():
        lines.append(
            f"  {kernel:<10} Cloth {metrics['ndcg_a']:.4f}/{metrics['hr_a']:.4f}   "
            f"Sport {metrics['ndcg_b']:.4f}/{metrics['hr_b']:.4f}"
        )
    lines.append("")
    lines.append("Number of stacked intra+inter matching layers:")
    for layers, metrics in layer_results.items():
        lines.append(
            f"  layers={layers:<3} Cloth {metrics['ndcg_a']:.4f}/{metrics['hr_a']:.4f}   "
            f"Sport {metrics['ndcg_b']:.4f}/{metrics['hr_b']:.4f}"
        )
    write_report("design_ablations", "\n".join(lines))

    # Robustness claims: swapping the kernel or stacking more matching layers
    # should not collapse the model (stays within 2x of the best setting).
    all_scores = [metrics["ndcg_a"] for metrics in kernel_results.values()]
    all_scores += [metrics["ndcg_a"] for metrics in layer_results.values()]
    assert min(all_scores) > 0.4 * max(all_scores)
    for metrics in list(kernel_results.values()) + list(layer_results.values()):
        assert 0.0 < metrics["ndcg_a"] <= 1.0
        assert 0.0 < metrics["ndcg_b"] <= 1.0
