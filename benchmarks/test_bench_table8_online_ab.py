"""Tables VII/VIII — simulated online A/B test on the financial serving domains."""

from __future__ import annotations

from conftest import run_once, write_report

from repro.experiments import DEFAULT_AB_GROUPS, OnlineDomainSpec, fast_mode, run_online_ab


def _run():
    if fast_mode():
        groups = ("Control", "PLE", "DML", "NMCDR")
        domains = (
            OnlineDomainSpec("Loan", 300, 50, base_cvr=0.105),
            OnlineDomainSpec("Fund", 200, 40, base_cvr=0.061),
        )
        impressions = 1500
        epochs = 10
    else:
        groups = DEFAULT_AB_GROUPS
        domains = (
            OnlineDomainSpec("Loan", 500, 70, base_cvr=0.105),
            OnlineDomainSpec("Fund", 320, 50, base_cvr=0.061),
            OnlineDomainSpec("Account", 400, 60, base_cvr=0.019),
        )
        impressions = 4000
        epochs = 15
    return run_online_ab(
        groups=groups,
        domain_specs=domains,
        impressions_per_domain=impressions,
        num_epochs=epochs,
        embedding_dim=32,
        seed=11,
    )


def test_bench_table8_online_ab(benchmark):
    result = run_once(benchmark, _run)

    lines = [result.format_table(), ""]
    for domain_name in next(iter(result.cvr.values())):
        improvement = result.improvement_over_best_baseline(domain_name)
        lines.append(f"NMCDR CVR improvement over best baseline in {domain_name}: {improvement:.1f}%")
    paper_improvement = {
        "Loan": 6.81,
        "Fund": 4.70,
        "Account": 6.58,
    }
    lines.append(f"paper improvements: {paper_improvement}")
    write_report("table8_online_ab", "\n".join(lines))

    # Every model-driven group should beat the popularity control in at least
    # one domain, and NMCDR should be the best serving group overall.
    domains = list(next(iter(result.cvr.values())).keys())
    nmcdr_mean = sum(result.cvr["NMCDR"][name] for name in domains) / len(domains)
    control_mean = sum(result.cvr["Control"][name] for name in domains) / len(domains)
    assert nmcdr_mean > control_mean, "NMCDR serving group must beat the popularity control"
    for group in result.cvr:
        if group in ("NMCDR", "Control"):
            continue
        group_mean = sum(result.cvr[group][name] for name in domains) / len(domains)
        assert nmcdr_mean >= group_mean * 0.95, (
            f"NMCDR should be at least on par with {group} (got {nmcdr_mean:.4f} vs {group_mean:.4f})"
        )
