"""Table II — bi-directional Music–Movie CDR with varying user overlap ratio."""

from overlap_common import run_overlap_bench


def test_bench_table2_music_movie(benchmark):
    run_overlap_bench(benchmark, "music_movie", "table2_music_movie")
