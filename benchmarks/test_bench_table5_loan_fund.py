"""Table V — bi-directional Loan–Fund (financial) CDR with varying user overlap ratio."""

from overlap_common import run_overlap_bench


def test_bench_table5_loan_fund(benchmark):
    run_overlap_bench(benchmark, "loan_fund", "table5_loan_fund")
