"""Fig. 5 — head/tail user embedding alignment through the NMCDR pipeline.

The paper shows t-SNE plots of head (data-rich) and tail (data-sparse) user
embeddings after (a) the graph encoder, (b) the intra-to-inter node matching
module and (c) the intra node complementing module, arguing that the tail
distribution progressively aligns with the head distribution.  Without a
plotting backend the bench reports numeric alignment scores per stage (lower =
better aligned) plus the 2-D t-SNE coordinates of the final stage.
"""

from __future__ import annotations

import numpy as np
from conftest import bench_settings, run_once, write_report

from repro.analysis import stagewise_alignment, tsne_projection
from repro.core import CDRTrainer, NMCDR, build_task
from repro.experiments import fast_mode
from repro.experiments.paper_reference import FIGURE_TRENDS
from repro.experiments.runner import prepare_dataset


def _run():
    settings = bench_settings("cloth_sport", overlap_ratio=0.5)
    dataset = prepare_dataset(settings)
    task = build_task(dataset, head_threshold=settings.head_threshold)
    model = NMCDR(task, settings.nmcdr_config())
    CDRTrainer(model, task, settings.trainer_config()).fit()
    model.prepare_for_evaluation()

    alignment = {
        key: stagewise_alignment(model, key, rng=np.random.default_rng(0)) for key in ("a", "b")
    }
    projection = tsne_projection(
        model,
        "a",
        stage="user_g4",
        max_users=80 if fast_mode() else 200,
        rng=np.random.default_rng(0),
    )
    return alignment, projection


def test_bench_fig5_embedding_alignment(benchmark):
    alignment, projection = run_once(benchmark, _run)

    lines = ["Fig. 5: head/tail embedding alignment per pipeline stage (lower = more aligned)"]
    for key, scores in alignment.items():
        lines.append("")
        lines.append(f"domain {key}:")
        header = f"  {'stage':<10}{'centroid_dist':>15}{'mmd':>12}{'between/within':>17}"
        lines.append(header)
        for score in scores:
            lines.append(
                f"  {score.stage:<10}{score.centroid_distance:>15.4f}{score.mmd:>12.4f}"
                f"{score.between_within_ratio:>17.4f}"
            )
    head_count = int(projection["is_head"].sum())
    lines.append("")
    lines.append(
        f"t-SNE projection of stage user_g4 (domain a): {projection['coordinates'].shape[0]} users, "
        f"{head_count} head / {projection['coordinates'].shape[0] - head_count} tail"
    )
    lines.append("")
    lines.append(f"paper trend: {FIGURE_TRENDS['fig5']}")
    write_report("fig5_embedding_alignment", "\n".join(lines))

    # The paper's claim: alignment improves from the encoder output (user_g1)
    # to the complementing output (user_g4).  Check the MMD does not increase
    # for the majority of (domain, metric) combinations.
    improvements = 0
    total = 0
    for scores in alignment.values():
        by_stage = {score.stage: score for score in scores}
        for metric in ("mmd", "centroid_distance"):
            total += 1
            if getattr(
                by_stage["user_g4"],
                metric,
            ) <= getattr(by_stage["user_g1"], metric) * 1.25:
                improvements += 1
    assert improvements >= total / 2, "head/tail alignment should not degrade through the pipeline"
    assert np.all(np.isfinite(projection["coordinates"]))
