"""Section III.B.6 — model efficiency: parameter counts and per-batch timings."""

from __future__ import annotations

from conftest import bench_settings, run_once, write_report

from repro.analysis import measure_efficiency
from repro.baselines import build_model
from repro.core import build_task
from repro.experiments import format_comparison_table
from repro.experiments.paper_reference import EFFICIENCY_REFERENCE
from repro.experiments.runner import prepare_dataset

MODELS = ("PLE", "MiNet", "HeroGraph", "NMCDR")


def _run():
    settings = bench_settings("cloth_sport", overlap_ratio=0.5)
    dataset = prepare_dataset(settings)
    task = build_task(dataset, head_threshold=settings.head_threshold)
    reports = {}
    for name in MODELS:
        model = build_model(name, task, embedding_dim=settings.embedding_dim, seed=settings.seed)
        reports[name] = measure_efficiency(
            model, task, batch_size=settings.batch_size, num_train_batches=4, num_test_batches=4
        )
    return reports


def test_bench_efficiency(benchmark):
    reports = run_once(benchmark, _run)

    lines = ["Model efficiency (Sec. III.B.6): parameters and per-batch timings", ""]
    lines.append(
        format_comparison_table(
            "parameter count (millions)",
            {name: EFFICIENCY_REFERENCE[name]["parameters_m"] for name in MODELS},
            {name: reports[name].num_parameters / 1e6 for name in MODELS},
            unit="millions of parameters; reproduction uses D=32 instead of 128",
        )
    )
    lines.append("")
    lines.append(
        format_comparison_table(
            "training seconds per batch",
            {name: EFFICIENCY_REFERENCE[name]["train_s_per_batch"] for name in MODELS},
            {name: reports[name].train_seconds_per_batch for name in MODELS},
            unit="seconds (paper: A100 GPU; reproduction: CPU numpy)",
        )
    )
    lines.append("")
    lines.append(
        format_comparison_table(
            "test seconds per batch",
            {name: EFFICIENCY_REFERENCE[name]["test_s_per_batch"] for name in MODELS},
            {name: reports[name].test_seconds_per_batch for name in MODELS},
        )
    )
    write_report("efficiency", "\n".join(lines))

    # Qualitative claims of Sec. III.B.6: all four models are in the same
    # order of magnitude, and NMCDR is smaller than MiNet and HeroGraph.
    parameter_counts = {name: reports[name].num_parameters for name in MODELS}
    assert parameter_counts["NMCDR"] < parameter_counts["MiNet"] * 10
    assert parameter_counts["NMCDR"] < parameter_counts["HeroGraph"] * 10
    largest = max(parameter_counts.values())
    smallest = min(parameter_counts.values())
    assert largest <= smallest * 30, "parameter counts should stay within ~one order of magnitude"
    for name in MODELS:
        assert reports[name].train_seconds_per_batch > 0
        assert reports[name].test_seconds_per_batch > 0
