"""Section III.B.6 — model efficiency: parameter counts and per-batch timings.

Besides the textual paper-vs-measured report this bench emits
``BENCH_efficiency.json`` at the repository root: a machine-readable record
of the per-model timings so the performance trajectory across PRs can be
tracked without parsing tables (the CI perf gate compares it against the
committed copy).

Timing benches run on the engine's **float32** fast path — the paper-table
parity suite stays float64, and ``tests/test_numeric_parity.py`` asserts the
paper-table metrics agree across dtypes to 1e-4, which is what makes the
flip safe.  The subgraph-scaling bench additionally sweeps synthetic graph
sizes and records NMCDR's full-graph and sampled-subgraph train-s/batch so
the O(graph) → O(batch) claim stays machine-checkable.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np
from conftest import bench_settings, run_once, write_report

from repro.analysis import measure_efficiency
from repro.baselines import build_model
from repro.core import NMCDR, NMCDRConfig, build_task
from repro.data import load_scenario
from repro.data.dataloader import InteractionDataLoader
from repro.experiments import fast_mode, format_comparison_table
from repro.experiments.paper_reference import EFFICIENCY_REFERENCE
from repro.experiments.runner import prepare_dataset
from repro.optim import Adam
from repro.tensor import engine

MODELS = ("PLE", "MiNet", "HeroGraph", "NMCDR")

#: Synthetic graph-size multipliers swept by the subgraph-scaling bench.
SCALING_SCALES = (2.0, 6.0, 18.0)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run():
    settings = bench_settings("cloth_sport", overlap_ratio=0.5)
    dataset = prepare_dataset(settings)
    task = build_task(dataset, head_threshold=settings.head_threshold)
    reports = {}
    with engine.engine_dtype("float32"):
        for name in MODELS:
            model = build_model(
                name, task, embedding_dim=settings.embedding_dim, seed=settings.seed
            )
            reports[name] = measure_efficiency(
                model,
                task,
                batch_size=settings.batch_size,
                num_train_batches=12,
                num_test_batches=8,
            )
    return reports


def _time_train_steps(task, sampled: bool, num_steps: int = 8, batch_size: int = 128) -> float:
    """Median seconds per training step for one NMCDR mode on one task."""
    model = NMCDR(task, NMCDRConfig(embedding_dim=32, seed=0))
    if sampled:
        # One hop with a fanout cap: the bounded (approximate) configuration
        # whose step cost is a function of the batch, not the graph.
        model.configure_subgraph_sampling(True, num_hops=1, fanout=8)
    optimizer = Adam(model.parameters(), lr=1e-3)
    iterators = [
        iter(
            InteractionDataLoader(
                task.domain(key).split,
                batch_size=batch_size,
                rng=np.random.default_rng(index + 1),
            )
        )
        for index, key in enumerate(("a", "b"))
    ]
    times = []
    for _ in range(num_steps):
        batch_a, batch_b = (next(iterator, None) for iterator in iterators)
        if batch_a is None and batch_b is None:
            break
        started = time.perf_counter()
        optimizer.zero_grad()
        loss = model.compute_batch_loss({"a": batch_a, "b": batch_b})
        loss.backward()
        optimizer.step()
        model.invalidate_cache()
        times.append(time.perf_counter() - started)
    return float(np.median(times))


def _run_scaling():
    points = []
    with engine.engine_dtype("float32"):
        for scale in SCALING_SCALES:
            dataset = load_scenario("cloth_sport", scale=scale, seed=13)
            task = build_task(dataset, head_threshold=7)
            graph_a, graph_b = task.domain_a.train_graph, task.domain_b.train_graph
            points.append(
                {
                    "scale": scale,
                    "num_users": graph_a.num_users + graph_b.num_users,
                    "num_items": graph_a.num_items + graph_b.num_items,
                    "num_edges": graph_a.num_edges + graph_b.num_edges,
                    "full_train_s_per_batch": _time_train_steps(task, sampled=False),
                    "sampled_train_s_per_batch": _time_train_steps(task, sampled=True),
                }
            )
    return points


def _update_bench_json(fields: dict) -> dict:
    """Merge ``fields`` into ``BENCH_efficiency.json`` (read-modify-write).

    The main efficiency table and the subgraph-scaling sweep are separate
    tests but share one machine-readable record, so each merges its section
    instead of clobbering the other's.
    """
    path = REPO_ROOT / "BENCH_efficiency.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(fields)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_bench_efficiency(benchmark):
    reports = run_once(benchmark, _run)

    lines = ["Model efficiency (Sec. III.B.6): parameters and per-batch timings", ""]
    lines.append(
        format_comparison_table(
            "parameter count (millions)",
            {name: EFFICIENCY_REFERENCE[name]["parameters_m"] for name in MODELS},
            {name: reports[name].num_parameters / 1e6 for name in MODELS},
            unit="millions of parameters; reproduction uses D=32 instead of 128",
        )
    )
    lines.append("")
    lines.append(
        format_comparison_table(
            "training seconds per batch",
            {name: EFFICIENCY_REFERENCE[name]["train_s_per_batch"] for name in MODELS},
            {name: reports[name].train_seconds_per_batch for name in MODELS},
            unit="seconds (paper: A100 GPU; reproduction: CPU numpy)",
        )
    )
    lines.append("")
    lines.append(
        format_comparison_table(
            "test seconds per batch",
            {name: EFFICIENCY_REFERENCE[name]["test_s_per_batch"] for name in MODELS},
            {name: reports[name].test_seconds_per_batch for name in MODELS},
        )
    )
    write_report("efficiency", "\n".join(lines))

    nmcdr = reports["NMCDR"]
    payload = {
        "bench": "efficiency",
        "mode": "fast" if fast_mode() else "full",
        "method": (
            "train/test s-per-batch are medians over 12/8 batches; *_mean fields "
            "use the seed's mean methodology (the pre-PR-1 0.0305 reference was a "
            "mean of 4 batches including warm-up); timings run on the float32 "
            "engine fast path since PR 2 (paper-table parity stays float64)"
        ),
        "engine_dtype": "float32",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "models": {name: reports[name].as_dict() for name in MODELS},
        # NMCDR relative to the fastest baseline in the same run — a
        # hardware-independent summary of the engine overhead.
        "nmcdr_train_slowdown_vs_fastest_baseline": nmcdr.train_seconds_per_batch
        / min(reports[name].train_seconds_per_batch for name in MODELS if name != "NMCDR"),
    }
    _update_bench_json(payload)

    # Qualitative claims of Sec. III.B.6: all four models are in the same
    # order of magnitude, and NMCDR is smaller than MiNet and HeroGraph.
    parameter_counts = {name: reports[name].num_parameters for name in MODELS}
    assert parameter_counts["NMCDR"] < parameter_counts["MiNet"] * 10
    assert parameter_counts["NMCDR"] < parameter_counts["HeroGraph"] * 10
    largest = max(parameter_counts.values())
    smallest = min(parameter_counts.values())
    assert largest <= smallest * 30, "parameter counts should stay within ~one order of magnitude"
    for name in MODELS:
        assert reports[name].train_seconds_per_batch > 0
        assert reports[name].test_seconds_per_batch > 0


def test_bench_subgraph_scaling(benchmark):
    """Sampled-subgraph training decouples NMCDR's step cost from graph size.

    Sweeps ≥3 synthetic graph sizes and records both modes' train-s/batch:
    full-graph forwards grow roughly linearly with the node count while the
    sampled mode (1 hop, fanout 8 — a bounded subgraph per batch) stays
    near-flat.  The ratios below use generous margins so scheduler noise on
    shared CI hardware cannot flip the structural claim.
    """
    points = run_once(benchmark, _run_scaling)

    lines = ["Subgraph-scaling sweep: NMCDR train seconds per batch (float32 engine)", ""]
    lines.append(f"{'scale':>6} {'users':>8} {'edges':>8} {'full (ms)':>10} {'sampled (ms)':>12}")
    for point in points:
        lines.append(
            f"{point['scale']:>6} {point['num_users']:>8} {point['num_edges']:>8} "
            f"{point['full_train_s_per_batch'] * 1e3:>10.2f} "
            f"{point['sampled_train_s_per_batch'] * 1e3:>12.2f}"
        )
    write_report("efficiency_subgraph_scaling", "\n".join(lines))
    # Self-describing section: the two bench tests merge into one JSON file,
    # so each section carries its own provenance and cannot silently pass
    # for data from another run or machine.
    _update_bench_json(
        {
            "subgraph_scaling": {
                "engine_dtype": "float32",
                "python": platform.python_version(),
                "machine": platform.machine(),
                "points": points,
            }
        }
    )

    assert len(points) >= 3
    smallest, largest = points[0], points[-1]
    size_ratio = largest["num_users"] / smallest["num_users"]
    full_ratio = largest["full_train_s_per_batch"] / smallest["full_train_s_per_batch"]
    sampled_ratio = (
        largest["sampled_train_s_per_batch"] / smallest["sampled_train_s_per_batch"]
    )
    assert size_ratio >= 4, "the sweep must span meaningfully different graph sizes"
    # Full-graph mode tracks graph size (~linear growth across the sweep).
    assert full_ratio > 2.5, (
        f"full-graph mode should scale with the graph: {full_ratio:.2f}x over {size_ratio:.1f}x nodes"
    )
    # Sampled mode grows sub-linearly (near-flat) and ends up faster outright.
    assert sampled_ratio < 0.6 * full_ratio, (
        f"sampled mode should grow sub-linearly: {sampled_ratio:.2f}x vs full {full_ratio:.2f}x"
    )
    assert (
        largest["sampled_train_s_per_batch"] < largest["full_train_s_per_batch"]
    ), "sampled training should beat full-graph training outright on the largest graph"
