"""Section III.B.6 — model efficiency: parameter counts and per-batch timings.

Besides the textual paper-vs-measured report this bench emits
``BENCH_efficiency.json`` at the repository root: a machine-readable record
of the per-model timings so the performance trajectory across PRs can be
tracked without parsing tables (the CI perf gate compares it against the
committed copy).

Timing benches run on the engine's **float32** fast path — the paper-table
parity suite stays float64, and ``tests/test_numeric_parity.py`` asserts the
paper-table metrics agree across dtypes to 1e-4, which is what makes the
flip safe.  The subgraph-scaling bench additionally sweeps synthetic graph
sizes and records NMCDR's full-graph and sampled-subgraph train-s/batch so
the O(graph) → O(batch) claim stays machine-checkable.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np
from conftest import bench_settings, run_once, write_report

from repro.analysis import measure_efficiency
from repro.baselines import build_model
from repro.core import CDRTrainer, NMCDR, NMCDRConfig, TrainerConfig, build_task
from repro.core.subgraph_plan import build_subgraph_plan
from repro.data import load_scenario
from repro.data.dataloader import InteractionDataLoader
from repro.experiments import fast_mode, format_comparison_table
from repro.experiments.paper_reference import EFFICIENCY_REFERENCE
from repro.experiments.runner import prepare_dataset
from repro.optim import Adam
from repro.tensor import engine

MODELS = ("PLE", "MiNet", "HeroGraph", "NMCDR")

#: Synthetic graph-size multipliers swept by the subgraph-scaling bench.
SCALING_SCALES = (2.0, 6.0, 18.0)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run():
    settings = bench_settings("cloth_sport", overlap_ratio=0.5)
    dataset = prepare_dataset(settings)
    task = build_task(dataset, head_threshold=settings.head_threshold)
    reports = {}
    with engine.engine_dtype("float32"):
        for name in MODELS:
            model = build_model(
                name, task, embedding_dim=settings.embedding_dim, seed=settings.seed
            )
            reports[name] = measure_efficiency(
                model,
                task,
                batch_size=settings.batch_size,
                num_train_batches=12,
                num_test_batches=8,
            )
    return reports


def _time_train_steps(task, sampled: bool, num_steps: int = 8, batch_size: int = 128) -> float:
    """Median seconds per training step for one NMCDR mode on one task."""
    model = NMCDR(task, NMCDRConfig(embedding_dim=32, seed=0))
    if sampled:
        # One hop with a fanout cap: the bounded (approximate) configuration
        # whose step cost is a function of the batch, not the graph.
        model.configure_subgraph_sampling(True, num_hops=1, fanout=8)
    optimizer = Adam(model.parameters(), lr=1e-3)
    iterators = [
        iter(
            InteractionDataLoader(
                task.domain(key).split,
                batch_size=batch_size,
                rng=np.random.default_rng(index + 1),
            )
        )
        for index, key in enumerate(("a", "b"))
    ]
    times = []
    for _ in range(num_steps):
        batch_a, batch_b = (next(iterator, None) for iterator in iterators)
        if batch_a is None and batch_b is None:
            break
        started = time.perf_counter()
        optimizer.zero_grad()
        loss = model.compute_batch_loss({"a": batch_a, "b": batch_b})
        loss.backward()
        optimizer.step()
        model.invalidate_cache()
        times.append(time.perf_counter() - started)
    return float(np.median(times))


def _run_scaling():
    points = []
    with engine.engine_dtype("float32"):
        for scale in SCALING_SCALES:
            dataset = load_scenario("cloth_sport", scale=scale, seed=13)
            task = build_task(dataset, head_threshold=7)
            graph_a, graph_b = task.domain_a.train_graph, task.domain_b.train_graph
            points.append(
                {
                    "scale": scale,
                    "num_users": graph_a.num_users + graph_b.num_users,
                    "num_items": graph_a.num_items + graph_b.num_items,
                    "num_edges": graph_a.num_edges + graph_b.num_edges,
                    "full_train_s_per_batch": _time_train_steps(task, sampled=False),
                    "sampled_train_s_per_batch": _time_train_steps(task, sampled=True),
                }
            )
    return points


def _update_bench_json(fields: dict) -> dict:
    """Merge ``fields`` into ``BENCH_efficiency.json`` (read-modify-write).

    The main efficiency table and the subgraph-scaling sweep are separate
    tests but share one machine-readable record, so each merges its section
    instead of clobbering the other's.
    """
    path = REPO_ROOT / "BENCH_efficiency.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(fields)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_bench_efficiency(benchmark):
    reports = run_once(benchmark, _run)

    lines = ["Model efficiency (Sec. III.B.6): parameters and per-batch timings", ""]
    lines.append(
        format_comparison_table(
            "parameter count (millions)",
            {name: EFFICIENCY_REFERENCE[name]["parameters_m"] for name in MODELS},
            {name: reports[name].num_parameters / 1e6 for name in MODELS},
            unit="millions of parameters; reproduction uses D=32 instead of 128",
        )
    )
    lines.append("")
    lines.append(
        format_comparison_table(
            "training seconds per batch",
            {name: EFFICIENCY_REFERENCE[name]["train_s_per_batch"] for name in MODELS},
            {name: reports[name].train_seconds_per_batch for name in MODELS},
            unit="seconds (paper: A100 GPU; reproduction: CPU numpy)",
        )
    )
    lines.append("")
    lines.append(
        format_comparison_table(
            "test seconds per batch",
            {name: EFFICIENCY_REFERENCE[name]["test_s_per_batch"] for name in MODELS},
            {name: reports[name].test_seconds_per_batch for name in MODELS},
        )
    )
    write_report("efficiency", "\n".join(lines))

    nmcdr = reports["NMCDR"]
    payload = {
        "bench": "efficiency",
        "mode": "fast" if fast_mode() else "full",
        "method": (
            "train/test s-per-batch are medians over 12/8 batches; *_mean fields "
            "use the seed's mean methodology (the pre-PR-1 0.0305 reference was a "
            "mean of 4 batches including warm-up); timings run on the float32 "
            "engine fast path since PR 2 (paper-table parity stays float64)"
        ),
        "engine_dtype": "float32",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "models": {name: reports[name].as_dict() for name in MODELS},
        # NMCDR relative to the fastest baseline in the same run — a
        # hardware-independent summary of the engine overhead.
        "nmcdr_train_slowdown_vs_fastest_baseline": nmcdr.train_seconds_per_batch
        / min(reports[name].train_seconds_per_batch for name in MODELS if name != "NMCDR"),
    }
    _update_bench_json(payload)

    # Qualitative claims of Sec. III.B.6: all four models are in the same
    # order of magnitude, and NMCDR is smaller than MiNet and HeroGraph.
    parameter_counts = {name: reports[name].num_parameters for name in MODELS}
    assert parameter_counts["NMCDR"] < parameter_counts["MiNet"] * 10
    assert parameter_counts["NMCDR"] < parameter_counts["HeroGraph"] * 10
    largest = max(parameter_counts.values())
    smallest = min(parameter_counts.values())
    assert largest <= smallest * 30, "parameter counts should stay within ~one order of magnitude"
    for name in MODELS:
        assert reports[name].train_seconds_per_batch > 0
        assert reports[name].test_seconds_per_batch > 0


def _run_pipeline_overlap():
    """Overlap + plan-build record at the largest scaling-bench size.

    Two measurements:

    * **Pipeline overlap** — NMCDR sampled training (1 hop, fanout 8,
      scheduled plans) with the *legacy rng-parity* negative sampler, whose
      per-epoch materialisation cost stands in for any data pipeline with
      expensive epoch-boundary prep (the vectorised default sampler made
      prep ~1% of wall time, where overlap is unmeasurable).  Serial vs
      epoch-prefetched runs are loss-identical; the prefetch run hides most
      of the data wait behind the training steps.
    * **Plan build** — median per-step plan-construction time of the PR-2
      path (per-step rebuild with the scipy fancy-indexing extraction, kept
      as ``induced_subgraph_scipy``) vs the incremental ``PlanSchedule``
      with the CSR-native extraction, at the model's exactness depth.
    """
    import repro.graph.sampling as sampling_module

    scale = SCALING_SCALES[-1]
    with engine.engine_dtype("float32"):
        dataset = load_scenario("cloth_sport", scale=scale, seed=13)
        task = build_task(dataset, head_threshold=7)

        def fit(prefetch_epochs):
            model = NMCDR(task, NMCDRConfig(embedding_dim=32, seed=0))
            config = TrainerConfig(
                num_epochs=3,
                batch_size=2048,
                seed=5,
                sampled_subgraph_training=True,
                subgraph_num_hops=1,
                subgraph_fanout=8,
                scheduled_subgraph_plans=True,
                prefetch_epochs=prefetch_epochs,
            )
            trainer = CDRTrainer(model, task, config)
            for loader in trainer._loaders.values():
                loader.vectorized_negatives = False  # the expensive-prep stand-in
            return trainer.fit()

        serial = fit(0)
        prefetched = fit(1)
        assert serial.epoch_losses == prefetched.epoch_losses, (
            "prefetching must not change the batch stream"
        )

        def plan_build_ms(scheduled, pr2_extraction, num_steps=16):
            # Deterministic matching pools (max_matching_neighbors=None, a
            # paper-faithful configuration): the regime where the schedule's
            # static-closure caching and delta expansion fully engage.
            if pr2_extraction:
                original = sampling_module.induced_subgraph
                sampling_module.induced_subgraph = sampling_module.induced_subgraph_scipy
            try:
                model = NMCDR(
                    task, NMCDRConfig(embedding_dim=32, seed=0, max_matching_neighbors=None)
                )
                model.configure_subgraph_sampling(True, scheduled=scheduled)
                iterators = [
                    iter(
                        InteractionDataLoader(
                            task.domain(key).split,
                            batch_size=256,
                            rng=np.random.default_rng(index + 1),
                        )
                    )
                    for index, key in enumerate(("a", "b"))
                ]
                times = []
                for _ in range(num_steps):
                    batches = {
                        key: next(iterator, None)
                        for key, iterator in zip(("a", "b"), iterators)
                    }
                    started = time.perf_counter()
                    if scheduled:
                        model.plan_schedule.plan_for(batches)
                    else:
                        build_subgraph_plan(
                            task,
                            model.config,
                            batches,
                            model._sampler,
                            model._subgraph_settings,
                            model._subgraph_caches,
                        )
                    times.append(time.perf_counter() - started)
                return float(np.median(times)) * 1e3
            finally:
                if pr2_extraction:
                    sampling_module.induced_subgraph = original

        pr2_ms = plan_build_ms(scheduled=False, pr2_extraction=True)
        scheduled_ms = plan_build_ms(scheduled=True, pr2_extraction=False)

    return {
        "scale": scale,
        "num_epochs": 3,
        "sampler": "legacy-parity (per-user loop; expensive-prep stand-in)",
        "serial_fit_wall_s": serial.fit_wall_seconds,
        "prefetch_fit_wall_s": prefetched.fit_wall_seconds,
        "serial_data_wait_s": serial.data_wait_seconds_total,
        "prefetch_data_wait_s": prefetched.data_wait_seconds_total,
        "serial_step_s": serial.step_seconds_total,
        "prefetch_step_s": prefetched.step_seconds_total,
        "wall_reduction": 1.0 - prefetched.fit_wall_seconds / serial.fit_wall_seconds,
        "plan_build": {
            "pr2_per_step_ms": pr2_ms,
            "scheduled_ms": scheduled_ms,
            "speedup": pr2_ms / scheduled_ms,
        },
    }


def test_bench_pipeline_overlap(benchmark):
    """Prefetching hides the data wait; scheduled plans beat PR-2 rebuilds.

    The structural claims gated here are deliberately noise-tolerant for
    shared CI hardware: the prefetched run must hide most of the consumer's
    data wait (the wall reduction itself is recorded, not tightly gated —
    GIL contention makes it hardware-dependent), and the incremental plan
    schedule with CSR-native extraction must build plans faster than the
    PR-2 per-step/scipy path.
    """
    record = run_once(benchmark, _run_pipeline_overlap)

    lines = [
        "Pipeline overlap (epoch-prefetch) and incremental plan builds",
        "",
        f"scale {record['scale']}: serial fit wall {record['serial_fit_wall_s']:.2f}s "
        f"(data wait {record['serial_data_wait_s']:.2f}s) vs prefetched "
        f"{record['prefetch_fit_wall_s']:.2f}s (data wait "
        f"{record['prefetch_data_wait_s']:.2f}s) — "
        f"wall reduction {record['wall_reduction'] * 100:.1f}%",
        f"plan build: PR-2 per-step {record['plan_build']['pr2_per_step_ms']:.2f} ms "
        f"vs scheduled {record['plan_build']['scheduled_ms']:.2f} ms "
        f"({record['plan_build']['speedup']:.2f}x)",
    ]
    write_report("efficiency_pipeline_overlap", "\n".join(lines))
    _update_bench_json(
        {
            "pipeline_overlap": {
                "engine_dtype": "float32",
                "python": platform.python_version(),
                "machine": platform.machine(),
                **record,
            }
        }
    )

    # The worker must hide the bulk of the data wait behind training.
    assert record["prefetch_data_wait_s"] < 0.6 * record["serial_data_wait_s"], record
    # And prefetching must never cost wall time beyond noise.
    assert record["prefetch_fit_wall_s"] < 1.05 * record["serial_fit_wall_s"], record
    # Incremental schedule + CSR-native extraction beats the PR-2 rebuild.
    assert record["plan_build"]["scheduled_ms"] < 0.9 * record["plan_build"]["pr2_per_step_ms"], record


def test_bench_subgraph_scaling(benchmark):
    """Sampled-subgraph training decouples NMCDR's step cost from graph size.

    Sweeps ≥3 synthetic graph sizes and records both modes' train-s/batch:
    full-graph forwards grow roughly linearly with the node count while the
    sampled mode (1 hop, fanout 8 — a bounded subgraph per batch) stays
    near-flat.  The ratios below use generous margins so scheduler noise on
    shared CI hardware cannot flip the structural claim.
    """
    points = run_once(benchmark, _run_scaling)

    lines = ["Subgraph-scaling sweep: NMCDR train seconds per batch (float32 engine)", ""]
    lines.append(f"{'scale':>6} {'users':>8} {'edges':>8} {'full (ms)':>10} {'sampled (ms)':>12}")
    for point in points:
        lines.append(
            f"{point['scale']:>6} {point['num_users']:>8} {point['num_edges']:>8} "
            f"{point['full_train_s_per_batch'] * 1e3:>10.2f} "
            f"{point['sampled_train_s_per_batch'] * 1e3:>12.2f}"
        )
    write_report("efficiency_subgraph_scaling", "\n".join(lines))
    # Self-describing section: the two bench tests merge into one JSON file,
    # so each section carries its own provenance and cannot silently pass
    # for data from another run or machine.
    _update_bench_json(
        {
            "subgraph_scaling": {
                "engine_dtype": "float32",
                "python": platform.python_version(),
                "machine": platform.machine(),
                "points": points,
            }
        }
    )

    assert len(points) >= 3
    smallest, largest = points[0], points[-1]
    size_ratio = largest["num_users"] / smallest["num_users"]
    full_ratio = largest["full_train_s_per_batch"] / smallest["full_train_s_per_batch"]
    sampled_ratio = (
        largest["sampled_train_s_per_batch"] / smallest["sampled_train_s_per_batch"]
    )
    assert size_ratio >= 4, "the sweep must span meaningfully different graph sizes"
    # Full-graph mode tracks graph size (~linear growth across the sweep).
    assert full_ratio > 2.5, (
        f"full-graph mode should scale with the graph: {full_ratio:.2f}x over {size_ratio:.1f}x nodes"
    )
    # Sampled mode grows sub-linearly (near-flat) and ends up faster outright.
    assert sampled_ratio < 0.6 * full_ratio, (
        f"sampled mode should grow sub-linearly: {sampled_ratio:.2f}x vs full {full_ratio:.2f}x"
    )
    assert (
        largest["sampled_train_s_per_batch"] < largest["full_train_s_per_batch"]
    ), "sampled training should beat full-graph training outright on the largest graph"


def _run_sharded_scaling():
    """Sharded-executor fit walls at the largest scaling-bench size.

    Serial vs ``n_shards ∈ {1, 2, 4}``, NMCDR sampled training (1 hop,
    fanout 8) with a large batch so the per-shard micro-batch work
    dominates the shared pool-closure work each worker replicates.  Besides
    the measured walls the record carries a **projected multi-core wall**
    for each shard count — parent-side overhead plus an even split of the
    workers' busy time — because the measured speedup is only meaningful on
    a machine with at least ``n_shards`` idle cores (``cpu_count`` is
    recorded; on a single-core container every sharded wall is necessarily
    a slowdown and only the projection and the overhead bounds are
    informative).
    """
    import os

    from repro.profiling import profiler

    scale = SCALING_SCALES[-1]
    shard_counts = (1, 2, 4)
    cpu_count = (
        len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    )
    with engine.engine_dtype("float32"):
        dataset = load_scenario("cloth_sport", scale=scale, seed=13)
        task = build_task(dataset, head_threshold=7)

        def fit(executor, n_shards):
            model = NMCDR(task, NMCDRConfig(embedding_dim=32, seed=0))
            config = TrainerConfig(
                num_epochs=1,
                batch_size=8192,
                seed=5,
                sampled_subgraph_training=True,
                subgraph_num_hops=1,
                subgraph_fanout=8,
                executor=executor,
                n_shards=n_shards,
            )
            trainer = CDRTrainer(model, task, config)
            profiler.reset()
            profiler.enable()
            try:
                history = trainer.fit()
            finally:
                scopes = {
                    name: stats["seconds"]
                    for name, stats in profiler.as_dict()["scopes"].items()
                }
                profiler.disable()
            return history, scopes

        serial, _ = fit("serial", 1)
        points = []
        for n_shards in shard_counts:
            history, scopes = fit("sharded", n_shards)
            busy = scopes.get("train/shard_wait", 0.0)
            overhead = sum(
                scopes.get(name, 0.0)
                for name in (
                    "train/publish",
                    "train/dispatch",
                    "train/reduce",
                    "train/optimizer",
                )
            )
            # The projection is only meaningful when the workers were
            # time-sliced on fewer cores than shards: there, the parent's
            # shard_wait approximates the *sum* of worker busy time and an
            # even split estimates the parallel wall.  With >= n_shards
            # cores the workers already ran concurrently — shard_wait *is*
            # the parallel wall, and dividing it again would double-count
            # the parallelism — so the measured speedup is the truth and
            # no projection is recorded.
            if cpu_count < n_shards:
                projected_wall = overhead + busy / n_shards
                projected_speedup = serial.step_seconds_total / projected_wall
            else:
                projected_wall = None
                projected_speedup = None
            points.append(
                {
                    "n_shards": n_shards,
                    "fit_wall_s": history.fit_wall_seconds,
                    "speedup_vs_serial": serial.fit_wall_seconds / history.fit_wall_seconds,
                    "worker_busy_s": busy,
                    "parent_overhead_s": overhead,
                    "projected_multicore_step_wall_s": projected_wall,
                    "projected_multicore_speedup": projected_speedup,
                    "epoch_losses": history.epoch_losses,
                }
            )
        replica_matches_serial = points[0]["epoch_losses"] == serial.epoch_losses

    return {
        "scale": scale,
        "num_epochs": 1,
        "batch_size": 8192,
        "subgraph": "1 hop, fanout 8",
        "cpu_count": cpu_count,
        "serial_fit_wall_s": serial.fit_wall_seconds,
        "serial_step_s": serial.step_seconds_total,
        "num_steps": serial.num_batches,
        "replica_matches_serial": replica_matches_serial,
        "points": [
            {key: value for key, value in point.items() if key != "epoch_losses"}
            for point in points
        ],
    }


def test_bench_sharded_scaling(benchmark):
    """Sharded executor: correctness canary, overhead bound, scaling record.

    Hard assertions stay machine-independent: the ``n_shards=1`` replica
    must replay the serial loss stream bit-for-bit, and its fit wall must
    stay within a generous constant factor of serial (the IPC + publish
    overhead bound).  Actual speedup is only gated when the machine has
    enough cores — that check lives in ``scripts/check_perf_regression.py``
    so CI (multi-core runners) enforces it while single-core containers
    record the projection honestly.
    """
    record = run_once(benchmark, _run_sharded_scaling)

    lines = [
        "Sharded data-parallel executor: fit wall vs shard count "
        f"(scale {record['scale']}, batch {record['batch_size']}, {record['subgraph']})",
        "",
        f"cpu_count={record['cpu_count']}  serial fit wall {record['serial_fit_wall_s']:.2f}s "
        f"({record['num_steps']} steps)",
    ]
    for point in record["points"]:
        projection = (
            f", {point['projected_multicore_speedup']:.2f}x projected on "
            f"{point['n_shards']} idle cores"
            if point["projected_multicore_speedup"] is not None
            else ""
        )
        lines.append(
            f"n_shards={point['n_shards']}: wall {point['fit_wall_s']:.2f}s "
            f"(speedup {point['speedup_vs_serial']:.2f}x measured{projection})"
        )
    write_report("efficiency_sharded_scaling", "\n".join(lines))
    _update_bench_json(
        {
            "sharded_scaling": {
                "engine_dtype": "float32",
                "python": platform.python_version(),
                "machine": platform.machine(),
                **record,
            }
        }
    )

    assert record["replica_matches_serial"], (
        "n_shards=1 must replay the serial loss stream bit-for-bit"
    )
    replica = record["points"][0]
    assert replica["fit_wall_s"] < 3.0 * record["serial_fit_wall_s"], (
        "single-shard IPC overhead exploded: "
        f"{replica['fit_wall_s']:.2f}s vs serial {record['serial_fit_wall_s']:.2f}s"
    )
    # On machines with the cores to exploit, parallel execution must not be
    # lost entirely (0.9 floor mirrors scripts/check_perf_regression.py:
    # break-even is too thin against shared-runner contention, while a
    # single-core-like wall lands around 0.4x).
    if record["cpu_count"] >= 4:
        best = max(point["speedup_vs_serial"] for point in record["points"])
        assert best > 0.9, (
            f"parallel execution lost: best sharded speedup {best:.2f}x "
            f"on a {record['cpu_count']}-core machine"
        )


POOL_SWEEP = (64, 512, 2048)


def _pool_step_config(pool_sharding, batch_size):
    return TrainerConfig(
        num_epochs=1,
        batch_size=batch_size,
        seed=5,
        sampled_subgraph_training=True,
        subgraph_num_hops=1,
        subgraph_fanout=8,
        executor="sharded",
        n_shards=2,
        pool_sharding=pool_sharding,
    )


def _run_sharded_pool_scaling():
    """Per-shard cost vs matching-pool size: replicated vs pool-sharded.

    The replicated executor folds the whole pool closure into every shard's
    subgraph, so per-shard work carries an O(pool) term — the Amdahl floor
    called out in ROADMAP.  Pool sharding splits the closure across shards
    and exchanges only the pool users' encoder activations, so per-shard
    work follows ``batch + pool/n_shards``.  The record carries two
    complementary views:

    * **structural** (deterministic, machine-independent): the largest
      shard's subgraph node count under each mode — the quantity per-shard
      encoder cost follows;
    * **measured**: fit walls and per-step walls of short n_shards=2 runs
      plus the parent's gather/scatter overhead, honest about ``cpu_count``
      (on a single-core container pool sharding still wins at large pools
      because the pool closure is encoded once instead of ``n_shards``
      times).

    The float64 equivalence canary (exactness settings, small scale) records
    whether pool-sharded training matches the replicated executor at the
    PR-4 tolerances: metrics bit-identical, epoch losses ≤ 1e-11 rtol.
    """
    import os

    from repro.core.subgraph_plan import (
        build_pool_exchange,
        build_pool_sharded_plan,
        build_subgraph_plan_from_pools,
        sample_matching_pools,
    )
    from repro.data.shard import split_joint_batch
    from repro.graph import MatchingNeighborSampler
    from repro.profiling import profiler

    scale = SCALING_SCALES[-1]
    batch_size = 512
    max_steps = 10
    n_shards = 2
    cpu_count = (
        len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    )

    def fit(pool_size, pool_sharding, task):
        model = NMCDR(
            task,
            NMCDRConfig(embedding_dim=32, seed=0, max_matching_neighbors=pool_size),
        )
        trainer = CDRTrainer(
            model, task, _pool_step_config(pool_sharding, batch_size)
        )
        training_engine = trainer.build_engine()
        pipeline = training_engine.build_pipeline(trainer._loaders)
        profiler.reset()
        profiler.enable()
        try:
            history = training_engine.fit(pipeline, max_steps=max_steps)
        finally:
            scopes = {
                name: stats["seconds"]
                for name, stats in profiler.as_dict()["scopes"].items()
            }
            profiler.disable()
        return history, scopes

    def max_shard_nodes(task, config, pool_sharding):
        """Deterministic structural cost: the largest shard's subgraph size."""
        model = NMCDR(task, config)
        model.configure_subgraph_sampling(True, num_hops=1, fanout=8)
        sampler = MatchingNeighborSampler(
            config.max_matching_neighbors, rng=np.random.default_rng(3)
        )
        intra, inter = sample_matching_pools(task, config, sampler)
        loaders = {
            key: iter(
                InteractionDataLoader(
                    task.domain(key).split,
                    batch_size=batch_size,
                    rng=np.random.default_rng(index + 1),
                )
            )
            for index, key in enumerate(("a", "b"))
        }
        batches = {key: next(loader) for key, loader in loaders.items()}
        split = split_joint_batch(batches, n_shards)
        exchange = build_pool_exchange(task, intra, inter, n_shards)
        sizes = []
        for shard in range(n_shards):
            micro = split.micro_batches[shard]
            if pool_sharding:
                plan = build_pool_sharded_plan(
                    task,
                    config,
                    micro,
                    intra,
                    inter,
                    exchange,
                    shard,
                    model._subgraph_settings,
                    model._subgraph_caches,
                )
            else:
                plan = build_subgraph_plan_from_pools(
                    task,
                    config,
                    micro,
                    intra,
                    inter,
                    model._subgraph_settings,
                    model._subgraph_caches,
                )
            sizes.append(
                sum(
                    plan.domain(key).local_rows
                    + (
                        plan.domain(key).subgraph.num_items
                        if plan.domain(key).subgraph is not None
                        else 0
                    )
                    for key in ("a", "b")
                )
            )
        return max(sizes)

    points = []
    with engine.engine_dtype("float32"):
        dataset = load_scenario("cloth_sport", scale=scale, seed=13)
        task = build_task(dataset, head_threshold=7)
        for pool_size in POOL_SWEEP:
            config = NMCDRConfig(
                embedding_dim=32, seed=0, max_matching_neighbors=pool_size
            )
            replicated_hist, _ = fit(pool_size, False, task)
            pooled_hist, pooled_scopes = fit(pool_size, True, task)
            steps = max(replicated_hist.num_batches, 1)
            points.append(
                {
                    "pool_size": pool_size,
                    "replicated_max_shard_nodes": max_shard_nodes(task, config, False),
                    "pool_sharded_max_shard_nodes": max_shard_nodes(task, config, True),
                    "replicated_fit_wall_s": replicated_hist.fit_wall_seconds,
                    "pool_sharded_fit_wall_s": pooled_hist.fit_wall_seconds,
                    "replicated_step_wall_s": replicated_hist.step_seconds_total / steps,
                    "pool_sharded_step_wall_s": pooled_hist.step_seconds_total
                    / max(pooled_hist.num_batches, 1),
                    "gather_overhead_s": pooled_scopes.get("train/pool_gather", 0.0)
                    + pooled_scopes.get("train/pool_scatter", 0.0),
                }
            )

    # Equivalence canary: exactness settings, float64, short fixed-seed fits.
    with engine.engine_dtype("float64"):
        canary_task = build_task(
            load_scenario("cloth_sport", scale=0.3, seed=13), head_threshold=7
        )

        def canary_fit(pool_sharding):
            model = NMCDR(canary_task, NMCDRConfig(embedding_dim=16, seed=3))
            config = TrainerConfig(
                num_epochs=2,
                batch_size=128,
                seed=11,
                eval_every=1,
                num_eval_negatives=20,
                executor="sharded",
                n_shards=2,
                pool_sharding=pool_sharding,
            )
            return CDRTrainer(model, canary_task, config).fit()

        replicated = canary_fit(False)
        pooled = canary_fit(True)
        loss_rel_err = max(
            abs(a - b) / abs(a)
            for a, b in zip(replicated.epoch_losses, pooled.epoch_losses)
        )
        equivalence = {
            "dtype": "float64",
            "n_shards": 2,
            "metrics_bit_identical": replicated.validation_metrics
            == pooled.validation_metrics,
            "loss_max_rel_err": loss_rel_err,
        }

    return {
        "scale": scale,
        "batch_size": batch_size,
        "max_steps": max_steps,
        "n_shards": n_shards,
        "subgraph": "1 hop, fanout 8",
        "cpu_count": cpu_count,
        "points": points,
        "equivalence": equivalence,
    }


def test_bench_sharded_pool_scaling(benchmark):
    """Pool sharding: equivalence canary + per-shard cost decoupled from pools.

    Hard assertions stay machine-independent: the float64 canary must match
    the replicated executor at the PR-4 tolerances, and the *structural*
    per-shard subgraph growth (the quantity encoder cost follows) must be
    decisively flatter under pool sharding.  Wall-clock claims are recorded
    honestly with ``cpu_count`` and gated machine-aware in
    ``scripts/check_perf_regression.py``.
    """
    record = run_once(benchmark, _run_sharded_pool_scaling)

    lines = [
        "Pool-sharded executor: per-shard cost vs matching-pool size "
        f"(scale {record['scale']}, batch {record['batch_size']}, "
        f"n_shards={record['n_shards']}, {record['subgraph']})",
        "",
        f"cpu_count={record['cpu_count']}  "
        f"canary: metrics bit-identical={record['equivalence']['metrics_bit_identical']}, "
        f"loss rel err {record['equivalence']['loss_max_rel_err']:.2e}",
    ]
    for point in record["points"]:
        lines.append(
            f"pool={point['pool_size']:>5}: max shard nodes "
            f"{point['replicated_max_shard_nodes']:>6} repl vs "
            f"{point['pool_sharded_max_shard_nodes']:>6} pool-sharded | "
            f"step wall {point['replicated_step_wall_s'] * 1e3:7.1f} ms vs "
            f"{point['pool_sharded_step_wall_s'] * 1e3:7.1f} ms "
            f"(gather {point['gather_overhead_s'] * 1e3:6.1f} ms total)"
        )
    write_report("efficiency_sharded_pool_scaling", "\n".join(lines))
    _update_bench_json(
        {
            "sharded_pool_scaling": {
                "engine_dtype": "float32",
                "python": platform.python_version(),
                "machine": platform.machine(),
                **record,
            }
        }
    )

    equivalence = record["equivalence"]
    assert equivalence["metrics_bit_identical"], (
        "pool-sharded validation metrics diverged from the replicated executor"
    )
    assert equivalence["loss_max_rel_err"] <= 1e-11, (
        f"pool-sharded losses beyond ulp tolerance: {equivalence['loss_max_rel_err']:.2e}"
    )
    smallest, largest = record["points"][0], record["points"][-1]
    replicated_growth = (
        largest["replicated_max_shard_nodes"] / smallest["replicated_max_shard_nodes"]
    )
    pooled_growth = (
        largest["pool_sharded_max_shard_nodes"]
        / smallest["pool_sharded_max_shard_nodes"]
    )
    # The replicated per-shard subgraph must visibly track the pool while the
    # pool-sharded one stays decisively flatter (the owned slice is 1/n of
    # the closure; the micro-batch part is shared).
    assert replicated_growth > 1.15, (
        f"sweep too small to exercise the pool term: replicated per-shard "
        f"subgraph grew only {replicated_growth:.2f}x"
    )
    # Expected slope ratio ≈ 1/n_shards (each shard owns 1/n of the closure)
    # plus the shared micro-batch overlap; 0.75 catches "decoupling lost"
    # while tolerating closure overlap at n_shards=2 (measured ≈ 0.6).
    assert (pooled_growth - 1.0) < 0.75 * (replicated_growth - 1.0), (
        f"pool-sharded per-shard subgraph no longer decoupled from the pool: "
        f"{pooled_growth:.2f}x vs replicated {replicated_growth:.2f}x"
    )
    # Total-work claim, valid on any core count: at the largest pool the
    # pool closure is encoded once instead of n_shards times, so the
    # pool-sharded wall must not exceed the replicated wall by more than
    # IPC noise.
    assert largest["pool_sharded_fit_wall_s"] < 1.25 * largest["replicated_fit_wall_s"], (
        "pool sharding slower than replicating the pool at the largest pool "
        f"size: {largest['pool_sharded_fit_wall_s']:.2f}s vs "
        f"{largest['replicated_fit_wall_s']:.2f}s"
    )


def _run_shm_exchange():
    """Exchange-plane transport cost: shm plane vs pickled pipes.

    Sweeps the matching-pool size — the quantity every data-plane payload
    scales with — and fits short pool-sharded runs under both transports,
    eager and traced.  Per point the record carries the fit/step walls, the
    parent's ``train/pool_gather`` + ``train/pool_scatter`` scope seconds
    (the same counters ``repro profile`` prints, so the gate and the
    profiler read one source of truth) and the executor's comms counters:
    data-plane bytes through shared memory vs pickled over pipes, pipe
    fallbacks, and parent-side copy seconds.

    The float64 canary fits the exactness configuration under both
    transports, eager and traced: the plane is a transport, so losses and
    validation metrics must be **bit-identical**, not merely close.
    """
    import os

    from repro.profiling import profiler

    scale = SCALING_SCALES[-1]
    batch_size = 512
    max_steps = 10
    n_shards = 2
    cpu_count = (
        len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    )

    def fit(pool_size, shm, traced, task):
        model = NMCDR(
            task,
            NMCDRConfig(embedding_dim=32, seed=0, max_matching_neighbors=pool_size),
        )
        config = TrainerConfig(
            num_epochs=1,
            batch_size=batch_size,
            seed=5,
            sampled_subgraph_training=True,
            subgraph_num_hops=1,
            subgraph_fanout=8,
            executor="sharded",
            n_shards=n_shards,
            pool_sharding=True,
            traced_steps=traced,
            shm_exchange=shm,
        )
        trainer = CDRTrainer(model, task, config)
        training_engine = trainer.build_engine()
        pipeline = training_engine.build_pipeline(trainer._loaders)
        profiler.reset()
        profiler.enable()
        try:
            history = training_engine.fit(pipeline, max_steps=max_steps)
        finally:
            scopes = {
                name: stats["seconds"]
                for name, stats in profiler.as_dict()["scopes"].items()
            }
            profiler.disable()
        stats = trainer._executor.comms_stats
        return {
            "fit_wall_s": history.fit_wall_seconds,
            "step_wall_s": history.step_seconds_total / max(history.num_batches, 1),
            "exchange_overhead_s": scopes.get("train/pool_gather", 0.0)
            + scopes.get("train/pool_scatter", 0.0),
            "data_plane_shm_bytes": int(stats.total("shm_bytes")),
            "data_plane_pipe_bytes": int(stats.total("pipe_bytes")),
            "pipe_fallbacks": stats.pipe_fallbacks,
            "fallback_data_bytes": stats.fallback_data_bytes,
            "copy_s": stats.copy_seconds(),
            "region_grows": stats.grows,
        }

    points = []
    with engine.engine_dtype("float32"):
        dataset = load_scenario("cloth_sport", scale=scale, seed=13)
        task = build_task(dataset, head_threshold=7)
        for pool_size in POOL_SWEEP:
            for traced in (False, True):
                points.append(
                    {
                        "pool_size": pool_size,
                        "traced": traced,
                        "shm": fit(pool_size, True, traced, task),
                        "pickled": fit(pool_size, False, traced, task),
                    }
                )

    with engine.engine_dtype("float64"):
        canary_task = build_task(
            load_scenario("cloth_sport", scale=0.3, seed=13), head_threshold=7
        )

        def canary_fit(shm, traced):
            model = NMCDR(canary_task, NMCDRConfig(embedding_dim=16, seed=3))
            config = TrainerConfig(
                num_epochs=2,
                batch_size=128,
                seed=11,
                eval_every=1,
                num_eval_negatives=20,
                executor="sharded",
                n_shards=2,
                pool_sharding=True,
                traced_steps=traced,
                shm_exchange=shm,
            )
            return CDRTrainer(model, canary_task, config).fit()

        equivalence = {"dtype": "float64", "n_shards": 2}
        for traced in (False, True):
            shm_hist = canary_fit(True, traced)
            piped_hist = canary_fit(False, traced)
            equivalence["traced" if traced else "eager"] = {
                "losses_bit_identical": shm_hist.epoch_losses
                == piped_hist.epoch_losses,
                "metrics_bit_identical": shm_hist.validation_metrics
                == piped_hist.validation_metrics,
            }

    return {
        "scale": scale,
        "batch_size": batch_size,
        "max_steps": max_steps,
        "n_shards": n_shards,
        "subgraph": "1 hop, fanout 8",
        "cpu_count": cpu_count,
        "points": points,
        "equivalence": equivalence,
    }


def test_bench_shm_exchange(benchmark):
    """Shm exchange plane: bit-identical transport, zero pickled data bytes.

    Hard assertions stay machine-independent: the float64 canary must be
    bit-identical across transports (eager and traced), the plane runs must
    move zero data-plane bytes over pipes, and the pickled runs zero over
    shared memory.  The wall comparison — plane gather+scatter overhead
    strictly below the pickled transport's at the largest pool — is paired
    (both transports timed back to back in this process), with the
    cross-machine version gated cpu-aware in
    ``scripts/check_perf_regression.py``.
    """
    record = run_once(benchmark, _run_shm_exchange)

    lines = [
        "Shm exchange plane vs pickled pipes: pool-sharded transport cost "
        f"(scale {record['scale']}, batch {record['batch_size']}, "
        f"n_shards={record['n_shards']}, {record['subgraph']})",
        "",
        f"cpu_count={record['cpu_count']}  canary (float64): "
        + "  ".join(
            f"{mode}: losses bit-identical={record['equivalence'][mode]['losses_bit_identical']}"
            for mode in ("eager", "traced")
        ),
    ]
    for point in record["points"]:
        shm, piped = point["shm"], point["pickled"]
        mode = "traced" if point["traced"] else "eager "
        lines.append(
            f"pool={point['pool_size']:>5} {mode}: exchange overhead "
            f"{shm['exchange_overhead_s'] * 1e3:7.1f} ms shm vs "
            f"{piped['exchange_overhead_s'] * 1e3:7.1f} ms pickled | "
            f"data plane {shm['data_plane_shm_bytes'] / 1e6:8.1f} MB shm+"
            f"{shm['data_plane_pipe_bytes'] / 1e6:.1f} MB pipe vs "
            f"{piped['data_plane_pipe_bytes'] / 1e6:8.1f} MB pipe"
        )
    write_report("efficiency_shm_exchange", "\n".join(lines))
    _update_bench_json(
        {
            "shm_exchange": {
                "engine_dtype": "float32",
                "python": platform.python_version(),
                "machine": platform.machine(),
                **record,
            }
        }
    )

    for mode in ("eager", "traced"):
        canary = record["equivalence"][mode]
        assert canary["losses_bit_identical"], (
            f"shm exchange changed the {mode} loss stream (transports must be "
            "bit-identical)"
        )
        assert canary["metrics_bit_identical"], (
            f"shm exchange changed the {mode} validation metrics"
        )
    for point in record["points"]:
        label = f"pool={point['pool_size']} traced={point['traced']}"
        shm, piped = point["shm"], point["pickled"]
        assert shm["data_plane_pipe_bytes"] == 0, (
            f"{label}: plane run moved {shm['data_plane_pipe_bytes']} data-plane "
            "bytes over pipes (steady state must be zero)"
        )
        assert shm["fallback_data_bytes"] == 0, (
            f"{label}: plane run hit {shm['pipe_fallbacks']} pipe fallbacks"
        )
        assert shm["data_plane_shm_bytes"] > 0, f"{label}: comms metering lost"
        assert piped["data_plane_shm_bytes"] == 0, (
            f"{label}: pickled run unexpectedly used shared memory"
        )
        assert piped["data_plane_pipe_bytes"] > 0, f"{label}: pipe metering lost"
    # Paired wall claim at the largest pool (both transports timed in this
    # process): eliminating pickling must make the exchange rounds cheaper.
    largest_eager = next(
        p
        for p in record["points"]
        if p["pool_size"] == POOL_SWEEP[-1] and not p["traced"]
    )
    assert (
        largest_eager["shm"]["exchange_overhead_s"]
        < largest_eager["pickled"]["exchange_overhead_s"]
    ), (
        "shm exchange overhead not below the pickled transport at pool "
        f"{POOL_SWEEP[-1]}: "
        f"{largest_eager['shm']['exchange_overhead_s'] * 1e3:.1f} ms vs "
        f"{largest_eager['pickled']['exchange_overhead_s'] * 1e3:.1f} ms"
    )


def _run_traced_replay():
    """Eager vs traced step wall at the scale-18 config, serial + n_shards=2.

    The gated configuration is full-graph NMCDR training — the stable-shape
    regime whose ``full_train_s_per_batch`` the subgraph-scaling bench
    already records at this scale, and the one traced replay was built for
    (one program, zero slab rebinds after recording).  The sampled-subgraph
    ratio is recorded alongside as the shape-polymorphic stress case: there
    every step rebinds edge-sized slots and the replay win narrows to noise,
    which the record states honestly rather than hiding.

    The serial measurements run in a **fresh subprocess**
    (``traced_replay_probe.py``): eager's step wall swings by tens of
    percent with the allocator state a warm suite process accumulates,
    while traced replay (no per-step allocation) is insensitive, so the
    paired ratio is only reproducible when measured in the process state a
    real training launch sees.  The float64 canary re-runs a short
    exactness fit both ways and must match bit-for-bit.
    """
    import os
    import subprocess
    import sys

    from repro.profiling import profiler

    scale = SCALING_SCALES[-1]
    sharded_batch = 1024
    sharded_max_steps = 12
    cpu_count = (
        len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    )
    probe = Path(__file__).resolve().with_name("traced_replay_probe.py")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (str(REPO_ROOT / "src"), env.get("PYTHONPATH"))
        if part
    )
    completed = subprocess.run(
        [sys.executable, str(probe), str(scale)],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    )
    probe_record = json.loads(completed.stdout)
    serial = probe_record["serial"]
    serial_sampled = probe_record["serial_sampled"]
    with engine.engine_dtype("float32"):
        dataset = load_scenario("cloth_sport", scale=scale, seed=13)
        task = build_task(dataset, head_threshold=7)

        def sharded_fit(traced):
            model = NMCDR(task, NMCDRConfig(embedding_dim=32, seed=0))
            config = TrainerConfig(
                num_epochs=1,
                batch_size=sharded_batch,
                seed=5,
                executor="sharded",
                n_shards=2,
                traced_steps=traced,
            )
            trainer = CDRTrainer(model, task, config)
            training_engine = trainer.build_engine()
            pipeline = training_engine.build_pipeline(trainer._loaders)
            profiler.reset()
            profiler.enable()
            try:
                history = training_engine.fit(pipeline, max_steps=sharded_max_steps)
            finally:
                trace_section = profiler.as_dict().get("trace")
                profiler.disable()
            return history, trace_section

        # ABBA at fit granularity: worker spawn + recording costs land
        # symmetrically in both orders.
        eager_hists, traced_hists = [], []
        trace_sections = []
        for traced in (False, True, True, False):
            history, trace_section = sharded_fit(traced)
            (traced_hists if traced else eager_hists).append(history)
            if traced:
                trace_sections.append(trace_section)
        eager_step = sum(h.step_seconds_total for h in eager_hists)
        traced_step = sum(h.step_seconds_total for h in traced_hists)
        sharded = {
            "n_shards": 2,
            "batch_size": sharded_batch,
            "max_steps": sharded_max_steps,
            "eager_step_wall_s": eager_step / 2,
            "traced_step_wall_s": traced_step / 2,
            "traced_step_ratio": traced_step / eager_step,
            "losses_match": all(
                h.epoch_losses == eager_hists[0].epoch_losses
                for h in eager_hists + traced_hists
            ),
            "trace": trace_sections[-1],
        }

    # Equivalence canary: exactness settings, float64, short fixed-seed fits.
    with engine.engine_dtype("float64"):
        canary_task = build_task(
            load_scenario("cloth_sport", scale=0.3, seed=13), head_threshold=7
        )

        def canary_fit(traced):
            model = NMCDR(canary_task, NMCDRConfig(embedding_dim=16, seed=3))
            config = TrainerConfig(
                num_epochs=2,
                batch_size=128,
                seed=11,
                eval_every=1,
                num_eval_negatives=20,
                traced_steps=traced,
            )
            return CDRTrainer(model, canary_task, config).fit()

        eager_history = canary_fit(False)
        traced_history = canary_fit(True)
        equivalence = {
            "dtype": "float64",
            "metrics_bit_identical": eager_history.validation_metrics
            == traced_history.validation_metrics,
            "losses_bit_identical": eager_history.epoch_losses
            == traced_history.epoch_losses,
        }

    return {
        "scale": scale,
        "batch_size": 128,
        "cpu_count": cpu_count,
        "serial": serial,
        "serial_sampled": serial_sampled,
        "sharded": sharded,
        "equivalence": equivalence,
    }


def test_bench_traced_replay(benchmark):
    """Traced step replay: bit-exactness canary + paired step-wall record.

    Hard assertions stay machine-independent: the float64 canary must match
    eager bit-for-bit, every paired loss stream must agree, and the trace
    cache must actually serve (hit rate, no fallbacks).  The wall-ratio
    claims (traced <= 0.9x eager on the gated full-graph config) live in
    ``scripts/check_perf_regression.py`` with the other machine-aware gates.
    """
    record = run_once(benchmark, _run_traced_replay)

    serial, sampled, sharded = (
        record["serial"],
        record["serial_sampled"],
        record["sharded"],
    )
    lines = [
        "Traced step programs: record once per plan signature, replay a flat "
        f"buffer program (scale {record['scale']}, batch {record['batch_size']})",
        "",
        f"cpu_count={record['cpu_count']}  canary: metrics bit-identical="
        f"{record['equivalence']['metrics_bit_identical']}, losses bit-identical="
        f"{record['equivalence']['losses_bit_identical']}",
        f"serial full-graph : eager {serial['eager_s_per_step'] * 1e3:7.2f} ms/step, "
        f"traced {serial['traced_s_per_step'] * 1e3:7.2f} ms/step "
        f"(ratio {serial['traced_step_ratio']:.3f}, hit rate {serial['hit_rate']:.3f})",
        f"serial sampled    : eager {sampled['eager_s_per_step'] * 1e3:7.2f} ms/step, "
        f"traced {sampled['traced_s_per_step'] * 1e3:7.2f} ms/step "
        f"(ratio {sampled['traced_step_ratio']:.3f}, hit rate {sampled['hit_rate']:.3f})",
        f"sharded n=2 full  : eager {sharded['eager_step_wall_s']:7.2f} s, "
        f"traced {sharded['traced_step_wall_s']:7.2f} s "
        f"(ratio {sharded['traced_step_ratio']:.3f})",
    ]
    write_report("efficiency_traced_replay", "\n".join(lines))
    _update_bench_json(
        {
            "traced_replay": {
                "engine_dtype": "float32",
                "python": platform.python_version(),
                "machine": platform.machine(),
                **record,
            }
        }
    )

    assert record["equivalence"]["metrics_bit_identical"], (
        "traced validation metrics diverged from eager in float64"
    )
    assert record["equivalence"]["losses_bit_identical"], (
        "traced epoch losses diverged from eager in float64"
    )
    for name, section in (("serial", serial), ("sampled", sampled)):
        assert section["losses_match"], f"{name}: traced loss stream diverged from eager"
        assert section["fallbacks"] == 0, (
            f"{name}: guard fallbacks on a homogeneous stream: {section['fallbacks']}"
        )
        assert section["hit_rate"] >= 0.95, (
            f"{name}: trace cache barely serving: hit rate {section['hit_rate']:.3f}"
        )
    assert sharded["losses_match"], "sharded: traced loss stream diverged from eager"


def _run_serving():
    """Serving-tier profile: store build/refresh cost, latency, exactness.

    Runs at the engine's default **float64** because the headline claim is
    bit-exactness, not raw speed: every response in the canary batch —
    including one guaranteed cold-start user, constructed by stripping a
    single overlapping user's domain-b history before the split — must match
    full-model rescoring float-for-float.  The timing numbers (throughput,
    per-request latency percentiles, full build vs incremental refresh) are
    recorded on the same store so the perf gate can track the serving path
    across PRs on matching hardware.
    """
    from repro.data.schema import CDRDataset, DomainData
    from repro.serve import RepresentationStore, ScoreRequest, Scorer, exact_top_k

    settings = bench_settings("cloth_sport", overlap_ratio=0.5)
    dataset = prepare_dataset(settings)

    # Guarantee a cold-start user: strip one overlapping user's domain-b
    # history (the leave-one-out split skips zero-interaction users, so the
    # roster and overlap table are unchanged and the user trains cold).
    domain_b = dataset.domain_b
    overlap_globals = np.intersect1d(
        dataset.domain_a.global_user_ids, domain_b.global_user_ids
    )
    cold_user = int(np.where(domain_b.global_user_ids == overlap_globals[0])[0][0])
    keep = domain_b.users != cold_user
    dataset = CDRDataset(
        name=dataset.name,
        domain_a=dataset.domain_a,
        domain_b=DomainData(
            name=domain_b.name,
            num_users=domain_b.num_users,
            num_items=domain_b.num_items,
            users=domain_b.users[keep],
            items=domain_b.items[keep],
            timestamps=domain_b.timestamps[keep],
            global_user_ids=domain_b.global_user_ids,
        ),
        metadata=dataset.metadata,
    )
    task = build_task(dataset, head_threshold=settings.head_threshold)

    model = build_model(
        "NMCDR", task, embedding_dim=settings.embedding_dim, seed=settings.seed
    )
    CDRTrainer(
        model,
        task,
        TrainerConfig(
            num_epochs=2,
            batch_size=settings.batch_size,
            num_eval_negatives=settings.num_eval_negatives,
            seed=settings.seed,
        ),
    ).fit()

    from repro.core.checkpoint import generator_state, set_generator_state
    from repro.tensor.trace import model_rng_sources

    rng_snapshot = [generator_state(rng) for rng in model_rng_sources(model)]

    start = time.perf_counter()
    store = RepresentationStore.build(model, task, params_version=0)
    full_build_s = time.perf_counter() - start
    scorer = Scorer(model, store)

    # ------------------------------------------------------------------
    # exactness canary: every answer equals full-model rescoring
    # ------------------------------------------------------------------
    reference = build_model(
        "NMCDR", task, embedding_dim=settings.embedding_dim, seed=settings.seed
    )
    reference.load_state_dict(model.state_dict())
    for rng, state in zip(model_rng_sources(reference), rng_snapshot):
        set_generator_state(rng, state)
    reference.prepare_for_evaluation()

    canary_requests = [
        ScoreRequest("a", 0, k=10),
        ScoreRequest("a", task.domain_a.num_users // 2, k=10),
        ScoreRequest("b", cold_user, k=10),  # routed through the matching module
        ScoreRequest("b", int(np.flatnonzero(store.tables["b"].warm)[0]), k=10),
    ]
    responses = scorer.score_batch(canary_requests)
    exact = True
    cold_routed = 0
    for request, response in zip(canary_requests, responses):
        candidates = np.arange(store.tables[request.domain].num_items, dtype=np.int64)
        scores = reference.score(
            request.domain,
            np.full(candidates.shape[0], request.user, dtype=np.int64),
            candidates,
        )
        top = exact_top_k(scores, request.k)
        exact = exact and (
            response.items.tolist() == candidates[top].tolist()
            and response.scores.tolist() == scores[top].tolist()
        )
        cold_routed += int(response.cold_start)

    # ------------------------------------------------------------------
    # throughput (batched) and per-request latency percentiles
    # ------------------------------------------------------------------
    request_rng = np.random.default_rng(7)
    num_requests, k = 256, 10

    def _random_requests(count):
        return [
            ScoreRequest(
                key,
                int(request_rng.integers(0, store.tables[key].num_users)),
                k=k,
            )
            for _ in range(count)
            for key in ("a", "b")
        ][:count]

    batch = _random_requests(num_requests)
    start = time.perf_counter()
    scorer.score_batch(batch)
    batched_wall_s = time.perf_counter() - start

    latencies = []
    for request in _random_requests(128):
        start = time.perf_counter()
        scorer.score(request)
        latencies.append(time.perf_counter() - start)
    latencies = np.asarray(latencies)

    # ------------------------------------------------------------------
    # incremental refresh vs full rebuild (one domain's encoder changed).
    # Both paired walls are min-of-5 in this process: at fast-mode scale a
    # single build is a few ms, so first-call warmup noise would otherwise
    # swamp the skipped-encode saving the gate is about.
    # ------------------------------------------------------------------
    refresh_walls, rebuild_walls = [], []
    for _ in range(5):
        model.domain_a_params.encoder.parameters()[0].data += 1e-3
        start = time.perf_counter()
        refresh_stats = store.refresh(model, params_version=1)
        refresh_walls.append(time.perf_counter() - start)
        start = time.perf_counter()
        rebuilt = RepresentationStore.build(
            model, task, params_version=1, rng_states=rng_snapshot
        )
        rebuild_walls.append(time.perf_counter() - start)
    incremental_refresh_s = min(refresh_walls)
    rebuild_s = min(rebuild_walls)
    refresh_exact = all(
        np.array_equal(getattr(store.tables[key], stage), getattr(rebuilt.tables[key], stage))
        for key in ("a", "b")
        for stage in ("user_g1", "user_g3", "user_g4", "items")
    )

    # ------------------------------------------------------------------
    # resilience drill: load shedding, deadlines and the degradation
    # ladder must answer *typed* (never hang, never raise through the
    # loop), and pure rejection must stay cheap — the request path's
    # overload behaviour is a serving metric like any other.
    # ------------------------------------------------------------------
    from repro.core import faults as fault_inject
    from repro.serve import ServeHealth

    health = ServeHealth()
    typed_ok = True

    shed_only = Scorer(model, store, queue_limit=0, health=health)
    shed_batch = _random_requests(256)
    start = time.perf_counter()
    shed_responses = shed_only.score_batch(shed_batch, collect_errors=True)
    shed_wall_s = time.perf_counter() - start
    typed_ok &= all(
        getattr(r, "error", None) == "overload" for r in shed_responses
    )

    expired = Scorer(model, store, default_deadline_ms=0.0, health=health)
    typed_ok &= all(
        getattr(r, "error", None) == "deadline_exceeded"
        for r in expired.score_batch(_random_requests(8), collect_errors=True)
    )

    laddered = Scorer(model, store, hard_staleness=4, health=health)
    saved_staleness = store.meta["max_staleness"]
    store.meta["max_staleness"] = 2
    rungs = []
    try:
        for lag in (1, 3, 9):  # stale / cold-path / past-the-ladder
            fault_inject.configure(fault_inject.FaultSpec("store_stale", lag=lag))
            outcome = laddered.score_batch(
                [ScoreRequest("a", 0, k=5)], collect_errors=True
            )[0]
            rungs.append(getattr(outcome, "error", None) or outcome.degraded)
    finally:
        store.meta["max_staleness"] = saved_staleness
        fault_inject.clear()
    ladder_ok = rungs == ["stale", "cold_path", "unavailable"]

    import os

    return {
        "scale": settings.scale,
        "embedding_dim": settings.embedding_dim,
        "cpu_count": os.cpu_count(),
        "num_users": int(task.domain_a.num_users + task.domain_b.num_users),
        "num_items": int(task.domain_a.num_items + task.domain_b.num_items),
        "num_requests": num_requests,
        "k": k,
        "exactness_canary": bool(exact),
        "cold_requests_routed": cold_routed,
        "refresh_bit_identical": bool(refresh_exact),
        "refresh_recomputed_encode": refresh_stats["recomputed_encode"],
        "full_build_s": full_build_s,
        "incremental_refresh_s": incremental_refresh_s,
        "rebuild_s": rebuild_s,
        "throughput_req_s": num_requests / batched_wall_s,
        "latency_p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "latency_p95_ms": float(np.percentile(latencies, 95) * 1e3),
        "resilience_typed_ok": bool(typed_ok),
        "ladder_ok": bool(ladder_ok),
        "ladder_rungs": rungs,
        "shed_req_s": len(shed_batch) / shed_wall_s,
        "resilience_counters": health.snapshot()["requests"],
    }


def test_bench_serving(benchmark):
    """Serving tier: exact answers, cold-start routing, refresh economics.

    Hard assertions are machine-independent: the canary batch (including the
    constructed cold-start user) is bit-identical to full-model rescoring,
    the incrementally refreshed store equals a rebuild from the same rng
    snapshot, and the one-domain incremental refresh beats the full rebuild
    timed back to back in this process.  Cross-machine latency/throughput
    regressions are gated cpu-aware in ``scripts/check_perf_regression.py``.
    """
    record = run_once(benchmark, _run_serving)

    lines = [
        "Serving tier: persistent representation store + batched exact top-K "
        f"(scale {record['scale']}, dim {record['embedding_dim']}, "
        f"{record['num_users']} users / {record['num_items']} items)",
        "",
        f"cpu_count={record['cpu_count']}  exactness canary: "
        f"{record['exactness_canary']} (cold-start requests routed: "
        f"{record['cold_requests_routed']})",
        f"store: full build {record['full_build_s'] * 1e3:7.1f} ms, "
        f"incremental refresh (encoder-{'/'.join(record['refresh_recomputed_encode'])}) "
        f"{record['incremental_refresh_s'] * 1e3:7.1f} ms vs rebuild "
        f"{record['rebuild_s'] * 1e3:7.1f} ms, bit-identical="
        f"{record['refresh_bit_identical']}",
        f"scoring: {record['throughput_req_s']:8.1f} req/s batched "
        f"(k={record['k']}, full catalogue), latency p50 "
        f"{record['latency_p50_ms']:.2f} ms / p95 {record['latency_p95_ms']:.2f} ms",
        f"resilience: typed outcomes {record['resilience_typed_ok']}, ladder "
        f"{'→'.join(record['ladder_rungs'])} ok={record['ladder_ok']}, "
        f"load shedding {record['shed_req_s']:8.1f} rejections/s",
    ]
    write_report("efficiency_serving", "\n".join(lines))
    _update_bench_json(
        {
            "serving": {
                "engine_dtype": "float64",
                "python": platform.python_version(),
                "machine": platform.machine(),
                **record,
            }
        }
    )

    assert record["exactness_canary"], (
        "store-backed top-K diverged from full-model rescoring"
    )
    assert record["cold_requests_routed"] >= 1, (
        "no request exercised the cold-start matching-module route"
    )
    assert record["refresh_bit_identical"], (
        "incremental refresh diverged from a full rebuild"
    )
    assert record["incremental_refresh_s"] < record["rebuild_s"], (
        "one-domain incremental refresh not cheaper than a full rebuild: "
        f"{record['incremental_refresh_s'] * 1e3:.1f} ms vs "
        f"{record['rebuild_s'] * 1e3:.1f} ms"
    )
    assert record["resilience_typed_ok"], (
        "overload/deadline drill produced an untyped outcome "
        f"(counters: {record['resilience_counters']})"
    )
    assert record["ladder_ok"], (
        "degradation ladder walked the wrong rungs: "
        f"{record['ladder_rungs']} (expected stale → cold_path → unavailable)"
    )
