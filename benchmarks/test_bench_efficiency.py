"""Section III.B.6 — model efficiency: parameter counts and per-batch timings.

Besides the textual paper-vs-measured report this bench emits
``BENCH_efficiency.json`` at the repository root: a machine-readable record
of the per-model timings so the performance trajectory across PRs can be
tracked without parsing tables.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from conftest import bench_settings, run_once, write_report

from repro.analysis import measure_efficiency
from repro.baselines import build_model
from repro.core import build_task
from repro.experiments import fast_mode, format_comparison_table
from repro.experiments.paper_reference import EFFICIENCY_REFERENCE
from repro.experiments.runner import prepare_dataset

MODELS = ("PLE", "MiNet", "HeroGraph", "NMCDR")

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run():
    settings = bench_settings("cloth_sport", overlap_ratio=0.5)
    dataset = prepare_dataset(settings)
    task = build_task(dataset, head_threshold=settings.head_threshold)
    reports = {}
    for name in MODELS:
        model = build_model(name, task, embedding_dim=settings.embedding_dim, seed=settings.seed)
        reports[name] = measure_efficiency(
            model, task, batch_size=settings.batch_size, num_train_batches=12, num_test_batches=8
        )
    return reports


def test_bench_efficiency(benchmark):
    reports = run_once(benchmark, _run)

    lines = ["Model efficiency (Sec. III.B.6): parameters and per-batch timings", ""]
    lines.append(
        format_comparison_table(
            "parameter count (millions)",
            {name: EFFICIENCY_REFERENCE[name]["parameters_m"] for name in MODELS},
            {name: reports[name].num_parameters / 1e6 for name in MODELS},
            unit="millions of parameters; reproduction uses D=32 instead of 128",
        )
    )
    lines.append("")
    lines.append(
        format_comparison_table(
            "training seconds per batch",
            {name: EFFICIENCY_REFERENCE[name]["train_s_per_batch"] for name in MODELS},
            {name: reports[name].train_seconds_per_batch for name in MODELS},
            unit="seconds (paper: A100 GPU; reproduction: CPU numpy)",
        )
    )
    lines.append("")
    lines.append(
        format_comparison_table(
            "test seconds per batch",
            {name: EFFICIENCY_REFERENCE[name]["test_s_per_batch"] for name in MODELS},
            {name: reports[name].test_seconds_per_batch for name in MODELS},
        )
    )
    write_report("efficiency", "\n".join(lines))

    nmcdr = reports["NMCDR"]
    payload = {
        "bench": "efficiency",
        "mode": "fast" if fast_mode() else "full",
        "method": (
            "train/test s-per-batch are medians over 12/8 batches; *_mean fields "
            "use the seed's mean methodology (the pre-PR-1 0.0305 reference was a "
            "mean of 4 batches including warm-up)"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "models": {name: reports[name].as_dict() for name in MODELS},
        # NMCDR relative to the fastest baseline in the same run — a
        # hardware-independent summary of the engine overhead.
        "nmcdr_train_slowdown_vs_fastest_baseline": nmcdr.train_seconds_per_batch
        / min(reports[name].train_seconds_per_batch for name in MODELS if name != "NMCDR"),
    }
    (REPO_ROOT / "BENCH_efficiency.json").write_text(json.dumps(payload, indent=2) + "\n")

    # Qualitative claims of Sec. III.B.6: all four models are in the same
    # order of magnitude, and NMCDR is smaller than MiNet and HeroGraph.
    parameter_counts = {name: reports[name].num_parameters for name in MODELS}
    assert parameter_counts["NMCDR"] < parameter_counts["MiNet"] * 10
    assert parameter_counts["NMCDR"] < parameter_counts["HeroGraph"] * 10
    largest = max(parameter_counts.values())
    smallest = min(parameter_counts.values())
    assert largest <= smallest * 30, "parameter counts should stay within ~one order of magnitude"
    for name in MODELS:
        assert reports[name].train_seconds_per_batch > 0
        assert reports[name].test_seconds_per_batch > 0
