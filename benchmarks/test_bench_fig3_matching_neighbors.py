"""Fig. 3 — sensitivity of NMCDR to the number of matching neighbours."""

from __future__ import annotations

from conftest import bench_settings, run_once, write_report

from repro.experiments import fast_mode, run_matching_neighbors_sweep
from repro.experiments.paper_reference import FIGURE_TRENDS


def _run():
    scenario = "cloth_sport"
    counts = (8, 32, 128) if fast_mode() else (8, 16, 32, 64, 128, 256)
    return run_matching_neighbors_sweep(
        scenario,
        neighbor_counts=counts,
        overlap_ratio=0.5,
        settings=bench_settings(scenario),
    )


def test_bench_fig3_matching_neighbors(benchmark):
    sweep = run_once(benchmark, _run)

    lines = [
        "Fig. 3: impact of the number of matching neighbours (scaled: the paper sweeps 128-1024)",
        "",
        sweep.format_table(),
        "",
        f"best neighbour count (avg NDCG@10): {sweep.best_value():.0f}",
        f"relative spread across the sweep: {sweep.relative_spread():.3f}",
        "",
        f"paper trend: {FIGURE_TRENDS['fig3']}",
    ]
    write_report("fig3_matching_neighbors", "\n".join(lines))

    averaged = sweep.average_series()
    assert all(value == value for value in averaged), "sweep produced NaN metrics"
    # The paper's figure varies by only a few relative percent across the sweep;
    # the model must not collapse at any neighbour count.
    assert min(averaged) > 0.5 * max(averaged)
