"""Table VI — Cloth–Sport and Loan–Fund under different data-density settings."""

from __future__ import annotations

from conftest import bench_settings, run_once, write_report

from repro.experiments import fast_mode, run_density_sweep
from repro.experiments.paper_reference import DENSITY_RATIOS


def _run_both_scenarios():
    scenarios = ("cloth_sport", "loan_fund")
    models = (
        ("LR", "GA-DTCDR", "PTUPCDR", "NMCDR")
        if fast_mode()
        else ("LR", "MMoE", "PLE", "GA-DTCDR", "DML", "HeroGraph", "PTUPCDR", "NMCDR")
    )
    ratios = (0.5, 1.0) if fast_mode() else DENSITY_RATIOS
    return {
        scenario: run_density_sweep(
            scenario,
            model_names=models,
            density_ratios=ratios,
            overlap_ratio=0.5,
            settings=bench_settings(scenario),
        )
        for scenario in scenarios
    }


def test_bench_table6_density(benchmark):
    sweeps = run_once(benchmark, _run_both_scenarios)

    lines = ["Table VI: data-density sweep (Ds) at Ku=50%"]
    for scenario, sweep in sweeps.items():
        for domain_key in ("a", "b"):
            lines.append("")
            lines.append(sweep.format_table(domain_key))
    lines.append("")
    lines.append(
        "Paper claim: all models degrade with sparser data; NMCDR stays best at every density."
    )
    write_report("table6_density", "\n".join(lines))

    # Reproduced claims, aggregated over scenarios and domains:
    # (1) every model (and in particular NMCDR) degrades as interactions are
    #     removed — the direction of the paper's Table VI trend;
    # (2) at the highest density of the sweep NMCDR is the best model for the
    #     majority of (scenario, domain) combinations.
    # At the reproduction's scale the *sparsest* settings are dominated by the
    # popularity signal (LR), a deviation recorded in EXPERIMENTS.md; the paper
    # itself notes that extreme sparsity makes every model's representation
    # learning hard and shrinks NMCDR's margin.
    dense_wins = 0
    combinations = 0
    for scenario, sweep in sweeps.items():
        assert sweep.degradation_with_sparsity("NMCDR", "a") or sweep.degradation_with_sparsity(
            "NMCDR", "b"
        )
        densest = sweep.per_ratio[-1]
        for domain_key in ("a", "b"):
            combinations += 1
            if densest.best_model(domain_key) == "NMCDR":
                dense_wins += 1
    assert dense_wins >= combinations / 2, (
        f"NMCDR should be the best model at the highest density for most domains "
        f"(won {dense_wins}/{combinations})"
    )
