"""Table III — bi-directional Cloth–Sport CDR with varying user overlap ratio."""

from overlap_common import run_overlap_bench


def test_bench_table3_cloth_sport(benchmark):
    run_overlap_bench(benchmark, "cloth_sport", "table3_cloth_sport")
