"""Fig. 4 — sensitivity of NMCDR to the head/tail discrimination threshold K_head."""

from __future__ import annotations

from conftest import bench_settings, run_once, write_report

from repro.experiments import fast_mode, run_head_threshold_sweep
from repro.experiments.paper_reference import FIGURE_TRENDS


def _run():
    scenario = "cloth_sport"
    thresholds = (3, 7, 11) if fast_mode() else (3, 5, 7, 9, 11, 13)
    return run_head_threshold_sweep(
        scenario,
        thresholds=thresholds,
        overlap_ratio=0.5,
        settings=bench_settings(scenario),
    )


def test_bench_fig4_head_tail_threshold(benchmark):
    sweep = run_once(benchmark, _run)

    lines = [
        "Fig. 4: impact of the head/tail user discrimination threshold K_head",
        "",
        sweep.format_table(),
        "",
        f"best threshold (avg NDCG@10): {sweep.best_value():.0f}",
        f"relative spread across the sweep: {sweep.relative_spread():.3f}",
        "",
        f"paper trend: {FIGURE_TRENDS['fig4']}",
    ]
    write_report("fig4_head_tail_threshold", "\n".join(lines))

    # The paper's Fig. 4 claim is robustness: small variation across thresholds.
    assert sweep.relative_spread() < 0.5, "model performance should be robust to K_head"
