"""Table IV — bi-directional Phone–Elec CDR with varying user overlap ratio."""

from overlap_common import run_overlap_bench


def test_bench_table4_phone_elec(benchmark):
    run_overlap_bench(benchmark, "phone_elec", "table4_phone_elec")
