"""NeuMF baseline (He et al., 2017) — neural collaborative filtering.

Combines a generalised matrix factorisation (GMF) branch (element-wise product
of user/item factors) with an MLP branch over concatenated embeddings; the two
branch outputs are fused by a final linear layer followed by a sigmoid.
Single-domain: each domain has independent parameters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.task import CDRTask
from ..nn import MLP, Embedding, Linear
from ..tensor import Tensor, ops
from .base import BaselineModel

__all__ = ["NeuMFModel"]


class NeuMFModel(BaselineModel):
    """Single-domain neural matrix factorisation."""

    display_name = "NeuMF"

    def __init__(
        self,
        task: CDRTask,
        embedding_dim: int = 32,
        mlp_hidden: Sequence[int] = (32, 16),
        seed: int = 0,
    ) -> None:
        super().__init__(task, seed=seed)
        rng = np.random.default_rng(seed)
        self.embedding_dim = int(embedding_dim)
        for key in ("a", "b"):
            domain = task.domain(key)
            self.add_module(
                f"gmf_user_{key}", Embedding(domain.num_users, embedding_dim, rng=rng)
            )
            self.add_module(
                f"gmf_item_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )
            self.add_module(
                f"mlp_user_{key}", Embedding(domain.num_users, embedding_dim, rng=rng)
            )
            self.add_module(
                f"mlp_item_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )
            self.add_module(
                f"mlp_{key}",
                MLP([2 * embedding_dim, *mlp_hidden], activation="relu", rng=rng),
            )
            fusion_in = embedding_dim + int(mlp_hidden[-1])
            self.add_module(f"fusion_{key}", Linear(fusion_in, 1, rng=rng))

    def batch_scores(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        gmf = getattr(self, f"gmf_user_{domain_key}")(users) * getattr(
            self, f"gmf_item_{domain_key}"
        )(items)
        mlp_input = ops.concat(
            [
                getattr(self, f"mlp_user_{domain_key}")(users),
                getattr(self, f"mlp_item_{domain_key}")(items),
            ],
            axis=1,
        )
        mlp_hidden = getattr(self, f"mlp_{domain_key}")(mlp_input)
        fused = getattr(
            self,
            f"fusion_{domain_key}",
        )(ops.concat([gmf, mlp_hidden], axis=1))
        return ops.sigmoid(fused)
