"""Registry mapping the paper's baseline names to model factories.

Names follow Section III.A.3: LR, BPR, NeuMF (single-domain); MMoE, PLE
(multi-task); CoNet, MiNet, GA-DTCDR, DML, HeroGraph, PTUPCDR (cross-domain).
The registry also builds NMCDR and its ablation variants, so experiment code
can request any row of the paper's tables by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.config import NMCDRConfig
from ..core.nmcdr import NMCDR
from ..core.task import CDRTask
from ..core.variants import variant_config
from .bpr import BPRModel
from .conet import CoNetModel
from .dml import DMLModel
from .gadtcdr import GADTCDRModel
from .herograph import HeroGraphModel
from .lr import LRModel
from .minet import MiNetModel
from .mmoe import MMoEModel
from .neumf import NeuMFModel
from .ple import PLEModel
from .ptupcdr import PTUPCDRModel
from .simple import PopularityModel, RandomModel

__all__ = [
    "BASELINE_NAMES",
    "ALL_MODEL_NAMES",
    "EXTRA_MODEL_NAMES",
    "MODEL_GROUPS",
    "build_model",
    "available_models",
]

BASELINE_NAMES = (
    "LR",
    "BPR",
    "NeuMF",
    "MMoE",
    "PLE",
    "CoNet",
    "MiNet",
    "GA-DTCDR",
    "DML",
    "HeroGraph",
    "PTUPCDR",
)

ALL_MODEL_NAMES = BASELINE_NAMES + ("NMCDR",)

#: The grouping used in the result tables of the paper.
MODEL_GROUPS: Dict[str, List[str]] = {
    "single_domain": ["LR", "BPR", "NeuMF"],
    "multi_task": ["MMoE", "PLE"],
    "cross_domain": ["CoNet", "MiNet", "GA-DTCDR", "DML", "HeroGraph", "PTUPCDR"],
    "ours": ["NMCDR"],
}

#: Calibration anchors available through :func:`build_model` but not part of
#: the paper's tables (and therefore excluded from ``BASELINE_NAMES``).
EXTRA_MODEL_NAMES = ("Random", "Popularity")

_BASELINE_FACTORIES: Dict[str, Callable] = {
    "Random": RandomModel,
    "Popularity": PopularityModel,
    "LR": LRModel,
    "BPR": BPRModel,
    "NeuMF": NeuMFModel,
    "MMoE": MMoEModel,
    "PLE": PLEModel,
    "CoNet": CoNetModel,
    "MiNet": MiNetModel,
    "GA-DTCDR": GADTCDRModel,
    "DML": DMLModel,
    "HeroGraph": HeroGraphModel,
    "PTUPCDR": PTUPCDRModel,
}


def available_models() -> List[str]:
    """All names accepted by :func:`build_model` (baselines, NMCDR, variants)."""
    return (
        list(ALL_MODEL_NAMES)
        + list(EXTRA_MODEL_NAMES)
        + ["NMCDR/w/o-Igm", "NMCDR/w/o-Cgm", "NMCDR/w/o-Inc", "NMCDR/w/o-Sup"]
    )


def build_model(
    name: str,
    task: CDRTask,
    embedding_dim: int = 32,
    seed: int = 0,
    nmcdr_config: Optional[NMCDRConfig] = None,
):
    """Instantiate a model by its table name for the given task.

    ``"NMCDR"`` builds the full model; ``"NMCDR/w/o-Igm"`` (and the other three
    ``w/o-*`` suffixes) build the corresponding Table IX ablation variant.
    """
    if name in _BASELINE_FACTORIES:
        return _BASELINE_FACTORIES[name](task, embedding_dim=embedding_dim, seed=seed)
    if name == "NMCDR" or name.startswith("NMCDR/"):
        base = nmcdr_config or NMCDRConfig(embedding_dim=embedding_dim, seed=seed)
        if name == "NMCDR":
            return NMCDR(task, base)
        variant_name = name.split("/", 1)[1]
        return NMCDR(task, variant_config(variant_name, base))
    raise KeyError(f"unknown model '{name}'; known: {available_models()}")
