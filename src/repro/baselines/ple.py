"""PLE baseline (Tang et al., 2020) — progressive layered extraction.

Like MMoE, the two domains are two tasks; unlike MMoE, the experts are split
into a *shared* group and per-task *specific* groups, and each task's gate
only mixes the shared experts with its own specific experts.  This explicit
separation is what the paper credits for PLE outperforming MMoE ("task-shared
and task-specific components can avoid harmful parameter interference").
A single extraction layer is used (sufficient at the reproduction scale).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.task import CDRTask
from ..nn import MLP, Embedding, Linear, ModuleList
from ..tensor import Tensor, ops
from .base import BaselineModel
from .mmoe import build_global_user_index

__all__ = ["PLEModel"]


class PLEModel(BaselineModel):
    """Progressive layered extraction with shared and task-specific experts."""

    display_name = "PLE"

    def __init__(
        self,
        task: CDRTask,
        embedding_dim: int = 32,
        num_shared_experts: int = 2,
        num_specific_experts: int = 1,
        expert_hidden: Sequence[int] = (32,),
        tower_hidden: Sequence[int] = (16,),
        seed: int = 0,
    ) -> None:
        super().__init__(task, seed=seed)
        rng = np.random.default_rng(seed)
        self.embedding_dim = int(embedding_dim)
        self.num_shared_experts = int(num_shared_experts)
        self.num_specific_experts = int(num_specific_experts)

        num_global, index_a, index_b = build_global_user_index(task)
        self._global_index = {"a": index_a, "b": index_b}
        self.shared_user_embedding = Embedding(num_global, embedding_dim, rng=rng)
        for key in ("a", "b"):
            domain = task.domain(key)
            self.add_module(
                f"item_embedding_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )

        input_dim = 2 * embedding_dim
        expert_out = int(expert_hidden[-1])
        self.shared_experts = ModuleList(
            [
                MLP([input_dim, *expert_hidden], activation="relu", rng=rng)
                for _ in range(num_shared_experts)
            ]
        )
        for key in ("a", "b"):
            self.add_module(
                f"specific_experts_{key}",
                ModuleList(
                    [
                        MLP([input_dim, *expert_hidden], activation="relu", rng=rng)
                        for _ in range(num_specific_experts)
                    ]
                ),
            )
            num_selectable = num_shared_experts + num_specific_experts
            self.add_module(f"gate_{key}", Linear(input_dim, num_selectable, rng=rng))
            self.add_module(
                f"tower_{key}", MLP([expert_out, *tower_hidden, 1], activation="relu", rng=rng)
            )

    def _input_features(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        global_users = self._global_index[domain_key][np.asarray(users, dtype=np.int64)]
        user_vectors = self.shared_user_embedding(global_users)
        item_vectors = getattr(self, f"item_embedding_{domain_key}")(items)
        return ops.concat([user_vectors, item_vectors], axis=1)

    def batch_scores(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        features = self._input_features(domain_key, users, items)
        expert_outputs = [expert(features) for expert in self.shared_experts]
        expert_outputs += [
            expert(features) for expert in getattr(self, f"specific_experts_{domain_key}")
        ]
        stacked = ops.stack(expert_outputs, axis=1)
        gate = ops.softmax(getattr(self, f"gate_{domain_key}")(features), axis=1)
        gate = gate.reshape(gate.shape[0], len(expert_outputs), 1)
        mixed = (stacked * gate).sum(axis=1)
        logits = getattr(self, f"tower_{domain_key}")(mixed)
        return ops.sigmoid(logits)
