"""LR baseline (Richardson et al., 2007) — generalised linear click model.

The paper describes LR as "a generalized linear approach which stacks several
multi-layer perceptrons"; following the original citation we keep the model
linear: the score of a user–item pair is a sigmoid over the sum of a global
bias, a user bias, an item bias and a linear interaction of small user/item
embeddings.  This captures popularity and per-user activity — exactly the
"stable generalisation" behaviour the paper observes for LR — without any
cross-domain transfer.
"""

from __future__ import annotations


import numpy as np

from ..core.task import CDRTask
from ..nn import Embedding, Linear, Parameter, init
from ..tensor import Tensor, ops
from .base import BaselineModel

__all__ = ["LRModel"]


class LRModel(BaselineModel):
    """Single-domain generalised linear recommender."""

    display_name = "LR"

    def __init__(self, task: CDRTask, embedding_dim: int = 8, seed: int = 0) -> None:
        super().__init__(task, seed=seed)
        rng = np.random.default_rng(seed)
        self.embedding_dim = int(embedding_dim)
        for key in ("a", "b"):
            domain = task.domain(key)
            self.add_module(
                f"user_embedding_{key}", Embedding(domain.num_users, embedding_dim, rng=rng)
            )
            self.add_module(
                f"item_embedding_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )
            self.register_parameter(
                f"user_bias_{key}",
                Parameter(init.zeros((domain.num_users, 1))),
            )
            self.register_parameter(
                f"item_bias_{key}",
                Parameter(init.zeros((domain.num_items, 1))),
            )
            self.add_module(f"linear_{key}", Linear(2 * embedding_dim, 1, rng=rng))

    def batch_scores(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        user_vectors = getattr(self, f"user_embedding_{domain_key}")(users)
        item_vectors = getattr(self, f"item_embedding_{domain_key}")(items)
        user_bias = ops.gather_rows(getattr(self, f"user_bias_{domain_key}"), users)
        item_bias = ops.gather_rows(getattr(self, f"item_bias_{domain_key}"), items)
        linear = getattr(self, f"linear_{domain_key}")
        logits = linear(
            ops.concat([user_vectors, item_vectors], axis=1),
        ) + user_bias + item_bias
        return ops.sigmoid(logits)
