"""Shared infrastructure for the comparison baselines (Section III.A.3).

Every baseline implements a single method, :meth:`BaselineModel.batch_scores`,
returning interaction probabilities for a batch of (user, item) pairs of one
domain.  The base class turns that into the trainer protocol used by
:class:`repro.core.CDRTrainer` (joint BCE loss over both domains, evaluation
scoring under ``no_grad``), so baselines and NMCDR are trained and evaluated
by exactly the same loop — the fair-comparison setup of the paper.

Baselines that need a different objective (e.g. BPR's pairwise loss) override
:meth:`domain_batch_loss`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..data.dataloader import Batch
from ..data.negative_sampling import NegativeSampler
from ..graph import SubgraphCache
from ..graph.sampling import DomainSubgraph, InteractionGraph
from ..nn import Module, losses
from ..tensor import Tensor, no_grad
from ..core.task import CDRTask, DOMAIN_KEYS

__all__ = ["BaselineModel", "SubgraphSamplingMixin"]


class SubgraphSamplingMixin:
    """Opt-in sampled-subgraph *training* for baselines with graph encoders.

    Mirrors :meth:`repro.core.NMCDR.configure_subgraph_sampling`: when
    enabled, the model's training-time ``batch_scores`` restricts graph
    propagation to the induced k-hop subgraph around the batch, with one
    :class:`~repro.graph.SubgraphCache` per named graph.  Evaluation
    (``self.training == False``) always runs the full-graph path.
    """

    #: Hops required for exact restricted propagation (the encoder depth of
    #: the subclass; every graph baseline here uses one layer).
    subgraph_exact_hops = 1

    _subgraph_num_hops: Optional[int] = None
    _subgraph_fanout: Optional[int] = None
    _subgraph_caches: Optional[Dict[str, SubgraphCache]] = None

    def configure_subgraph_sampling(
        self,
        enabled: bool = True,
        *,
        num_hops: Optional[int] = None,
        fanout: Optional[int] = None,
        cache_size: int = 16,
        scheduled: bool = False,
    ) -> None:
        """Enable restricted training-time propagation; see the class docstring.

        ``scheduled`` is accepted for trainer uniformity with
        :meth:`repro.core.NMCDR.configure_subgraph_sampling`.  The baselines
        here draw no matching pools, so their per-step plan *is* already the
        degenerate schedule (seeds = the batch, memoised by signature in the
        subgraph cache); the flag changes nothing about the plans and the
        scheduled mode is identical by construction.
        """
        if not enabled:
            self._subgraph_num_hops = None
            self._subgraph_fanout = None
            self._subgraph_caches = None
            return
        resolved = int(num_hops) if num_hops is not None else self.subgraph_exact_hops
        if resolved < 1:
            raise ValueError("num_hops must be >= 1")
        self._subgraph_num_hops = resolved
        self._subgraph_fanout = fanout
        self._subgraph_cache_size = int(cache_size)
        self._subgraph_caches = {}

    def on_epoch_start(self, epoch: int) -> None:
        """Training-engine epoch hook (pool-free models have no epoch state)."""

    @property
    def subgraph_sampling_enabled(self) -> bool:
        return self._subgraph_num_hops is not None

    def _use_sampled_forward(self) -> bool:
        """Sampling applies to training steps only; scoring stays exact."""
        return self._subgraph_num_hops is not None and self.training

    def _subgraph_for(
        self,
        cache_key: str,
        graph: InteractionGraph,
        seed_users,
        seed_items,
    ) -> DomainSubgraph:
        cache = self._subgraph_caches.get(cache_key)
        if cache is None:
            cache = SubgraphCache(getattr(self, "_subgraph_cache_size", 16))
            self._subgraph_caches[cache_key] = cache
        return cache.get(
            graph,
            seed_users,
            seed_items,
            num_hops=self._subgraph_num_hops,
            fanout=self._subgraph_fanout,
        )


class BaselineModel(Module):
    """Base class adapting a per-batch scorer to the joint CDR trainer protocol."""

    #: human-readable name used in experiment tables; subclasses override.
    display_name = "Baseline"

    def __init__(self, task: CDRTask, seed: int = 0) -> None:
        super().__init__()
        self.task = task
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self._negative_samplers: Dict[str, NegativeSampler] = {}

    # ------------------------------------------------------------------
    # subclass interface
    # ------------------------------------------------------------------
    def batch_scores(self, domain_key: str, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Return interaction probabilities (shape ``(n, 1)`` or ``(n,)``)."""
        raise NotImplementedError

    def extra_losses(self) -> Optional[Tensor]:
        """Optional model-level regularisation terms added once per step."""
        return None

    # ------------------------------------------------------------------
    # trainer protocol
    # ------------------------------------------------------------------
    def domain_batch_loss(self, domain_key: str, batch: Batch) -> Tensor:
        """Pointwise BCE loss for one domain's mini-batch."""
        predictions = self.batch_scores(domain_key, batch.users, batch.items)
        return losses.binary_cross_entropy(predictions, batch.labels.reshape(-1, 1))

    def compute_batch_loss(self, batches: Dict[str, Optional[Batch]]) -> Tensor:
        total: Optional[Tensor] = None
        for key in DOMAIN_KEYS:
            batch = batches.get(key)
            if batch is None or len(batch) == 0:
                continue
            loss = self.domain_batch_loss(key, batch)
            total = loss if total is None else total + loss
        if total is None:
            raise ValueError("compute_batch_loss needs at least one non-empty batch")
        extra = self.extra_losses()
        if extra is not None:
            total = total + extra
        return total

    def prepare_for_evaluation(self) -> None:
        """Hook called before scoring; default switches to eval mode."""
        self.eval()

    def invalidate_cache(self) -> None:
        """Hook called after each optimiser step; default restores train mode."""
        self.train()

    def score(self, domain_key: str, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        with no_grad():
            predictions = self.batch_scores(domain_key, users, items)
        return predictions.data.reshape(-1)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def negative_sampler(self, domain_key: str) -> NegativeSampler:
        """Lazily constructed per-domain negative sampler (pairwise losses)."""
        if domain_key not in self._negative_samplers:
            self._negative_samplers[domain_key] = NegativeSampler(
                self.task.domain(domain_key).split.train_domain(),
                rng=np.random.default_rng(self.rng.integers(0, 2**32 - 1)),
            )
        return self._negative_samplers[domain_key]

    def overlap_partner_lookup(self, domain_key: str) -> np.ndarray:
        """Array mapping local user index -> partner index in the other domain (-1 if none)."""
        return self.task.partner_lookup(domain_key)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(scenario={self.task.dataset.name!r})"
