"""Shared infrastructure for the comparison baselines (Section III.A.3).

Every baseline implements a single method, :meth:`BaselineModel.batch_scores`,
returning interaction probabilities for a batch of (user, item) pairs of one
domain.  The base class turns that into the trainer protocol used by
:class:`repro.core.CDRTrainer` (joint BCE loss over both domains, evaluation
scoring under ``no_grad``), so baselines and NMCDR are trained and evaluated
by exactly the same loop — the fair-comparison setup of the paper.

Baselines that need a different objective (e.g. BPR's pairwise loss) override
:meth:`domain_batch_loss`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.sharded import ShardLoss
from ..core.task import CDRTask, DOMAIN_KEYS
from ..data.dataloader import Batch
from ..data.negative_sampling import NegativeSampler
from ..graph import SubgraphCache
from ..graph.sampling import DomainSubgraph, InteractionGraph
from ..nn import ModelCapabilities, Module, losses
from ..tensor import Tensor, no_grad, ops

__all__ = ["BaselineModel", "SubgraphSamplingMixin"]


class SubgraphSamplingMixin:
    """Opt-in sampled-subgraph *training* for baselines with graph encoders.

    Mirrors :meth:`repro.core.NMCDR.configure_subgraph_sampling`: when
    enabled, the model's training-time ``batch_scores`` restricts graph
    propagation to the induced k-hop subgraph around the batch, with one
    :class:`~repro.graph.SubgraphCache` per named graph.  Evaluation
    (``self.training == False``) always runs the full-graph path.
    """

    #: Hops required for exact restricted propagation (the encoder depth of
    #: the subclass; every graph baseline here uses one layer).
    subgraph_exact_hops = 1

    _subgraph_num_hops: Optional[int] = None
    _subgraph_fanout: Optional[int] = None
    _subgraph_caches: Optional[Dict[str, SubgraphCache]] = None

    def configure_subgraph_sampling(
        self,
        enabled: bool = True,
        *,
        num_hops: Optional[int] = None,
        fanout: Optional[int] = None,
        cache_size: int = 16,
        scheduled: bool = False,
    ) -> None:
        """Enable restricted training-time propagation; see the class docstring.

        ``scheduled`` is accepted for trainer uniformity with
        :meth:`repro.core.NMCDR.configure_subgraph_sampling`.  The baselines
        here draw no matching pools, so their per-step plan *is* already the
        degenerate schedule (seeds = the batch, memoised by signature in the
        subgraph cache); the flag changes nothing about the plans and the
        scheduled mode is identical by construction.
        """
        if not enabled:
            self._subgraph_num_hops = None
            self._subgraph_fanout = None
            self._subgraph_caches = None
            return
        resolved = int(num_hops) if num_hops is not None else self.subgraph_exact_hops
        if resolved < 1:
            raise ValueError("num_hops must be >= 1")
        self._subgraph_num_hops = resolved
        self._subgraph_fanout = fanout
        self._subgraph_cache_size = int(cache_size)
        self._subgraph_caches = {}

    @property
    def subgraph_sampling_enabled(self) -> bool:
        return self._subgraph_num_hops is not None

    def _use_sampled_forward(self) -> bool:
        """Sampling applies to training steps only; scoring stays exact."""
        return self._subgraph_num_hops is not None and self.training

    def _subgraph_for(
        self,
        cache_key: str,
        graph: InteractionGraph,
        seed_users,
        seed_items,
    ) -> DomainSubgraph:
        cache = self._subgraph_caches.get(cache_key)
        if cache is None:
            cache = SubgraphCache(getattr(self, "_subgraph_cache_size", 16))
            self._subgraph_caches[cache_key] = cache
        return cache.get(
            graph,
            seed_users,
            seed_items,
            num_hops=self._subgraph_num_hops,
            fanout=self._subgraph_fanout,
        )


class BaselineModel(Module):
    """Base class adapting a per-batch scorer to the joint CDR trainer protocol."""

    #: human-readable name used in experiment tables; subclasses override.
    display_name = "Baseline"

    def __init__(self, task: CDRTask, seed: int = 0) -> None:
        super().__init__()
        self.task = task
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self._negative_samplers: Dict[str, NegativeSampler] = {}

    # ------------------------------------------------------------------
    # subclass interface
    # ------------------------------------------------------------------
    def batch_scores(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        """Return interaction probabilities (shape ``(n, 1)`` or ``(n,)``)."""
        raise NotImplementedError

    def extra_losses(self) -> Optional[Tensor]:
        """Optional model-level regularisation terms added once per step."""
        return None

    # ------------------------------------------------------------------
    # trainer protocol
    # ------------------------------------------------------------------
    def domain_batch_loss(self, domain_key: str, batch: Batch) -> Tensor:
        """Pointwise BCE loss for one domain's mini-batch."""
        predictions = self.batch_scores(domain_key, batch.users, batch.items)
        return losses.binary_cross_entropy(predictions, batch.labels.reshape(-1, 1))

    def compute_batch_loss(self, batches: Dict[str, Optional[Batch]]) -> Tensor:
        total: Optional[Tensor] = None
        for key in DOMAIN_KEYS:
            batch = batches.get(key)
            if batch is None or len(batch) == 0:
                continue
            loss = self.domain_batch_loss(key, batch)
            total = loss if total is None else total + loss
        if total is None:
            raise ValueError("compute_batch_loss needs at least one non-empty batch")
        extra = self.extra_losses()
        if extra is not None:
            total = total + extra
        return total

    # ------------------------------------------------------------------
    # capability declaration
    # ------------------------------------------------------------------
    def capabilities(self) -> ModelCapabilities:
        """Declared protocol support: pool-free pointwise models.

        ``sharding`` mirrors :meth:`supports_sharding` (subclasses that
        override the pointwise loss lose it automatically);
        ``subgraph_sampling`` is declared by mixing in
        :class:`SubgraphSamplingMixin`.  Baselines draw no matching pools,
        plan no pool exchange and have no encode/match split — their whole
        forward is ``batch_scores``.
        """
        return ModelCapabilities(
            sharding=self.supports_sharding(),
            subgraph_sampling=isinstance(self, SubgraphSamplingMixin),
        )

    # ------------------------------------------------------------------
    # sharded execution protocol
    # ------------------------------------------------------------------
    def supports_sharding(self) -> bool:
        """Whether the sharded executor can decompose this model's steps.

        The sharded loss decomposition assumes the default pointwise BCE
        objective (per-example terms that sum across shards) and a step
        that consumes no rng; models overriding ``domain_batch_loss`` or
        ``compute_batch_loss`` (e.g. BPR's pairwise loss, which draws its
        own negatives inside the step) must train on the serial executor.
        """
        return (
            type(self).domain_batch_loss is BaselineModel.domain_batch_loss
            and type(self).compute_batch_loss is BaselineModel.compute_batch_loss
        )

    def plan_pool_exchange(self, pools, n_shards: int):
        """Pool-sharded protocol hook: pointwise baselines have no pools.

        Returning ``None`` tells :class:`repro.core.sharded.
        PoolShardedStepExecutor` there is nothing to exchange — its steps
        then degenerate to the replicated single-phase protocol (the
        baselines' graph work is already a pure function of the micro-batch
        closure, so there is no Amdahl floor to shard away).
        """
        del pools, n_shards
        return None

    def compute_shard_loss(
        self,
        batches: Dict[str, Optional[Batch]],
        *,
        pools=None,
        full_sizes: Optional[Dict[str, int]] = None,
        localize: bool = False,
        include_extra: bool = True,
    ) -> ShardLoss:
        """One shard's pointwise loss over its micro-batches (worker-side).

        Mirrors :meth:`compute_batch_loss` with the per-domain mean
        normalised by the step's *full* batch size (``full_sizes``) so
        per-shard losses and gradients sum to the full-batch quantities.
        Graph baselines with sampled-subgraph support localise inside
        ``batch_scores`` (the worker enables it when ``localize`` is set),
        so nothing else is needed here.  ``extra_losses`` is charged to
        shard 0 only (``include_extra``) — it is batch-independent and must
        enter the reduced gradient exactly once.
        """
        del pools, localize  # pool-free models; locality lives in batch_scores
        if not self.supports_sharding():
            raise NotImplementedError(
                f"{type(self).__name__} overrides the pointwise loss and cannot "
                "be decomposed into shard losses"
            )
        if not include_extra and not any(
            batch is not None and len(batch) > 0 for batch in batches.values()
        ):
            return ShardLoss()
        total: Optional[Tensor] = None
        terms: Dict[str, np.ndarray] = {}
        value_dtype: Optional[str] = None
        for key in DOMAIN_KEYS:
            batch = batches.get(key)
            if batch is None or len(batch) == 0:
                continue
            predictions = self.batch_scores(key, batch.users, batch.items)
            labels = batch.labels.reshape(-1, 1)
            term_sum, raw = ops.binary_cross_entropy_probs(
                predictions, labels, reduction="sum", return_terms=True
            )
            # Raw pre-reduction terms (natural dtype) for the parent's
            # canonical ``mean`` over the reassembled full batch.
            terms[key] = raw
            full_size = (full_sizes or {}).get(key, len(batch))
            columns = max(raw.size // len(batch), 1)
            # The serial path reduces with ``mean`` over the full batch
            # array; scaling the shard's term sum by 1/(full array size)
            # hands the kernel's backward the exact per-term multiplier of
            # that mean, so shard gradients sum to the serial gradient.
            loss = term_sum * (1.0 / (full_size * columns))
            total = loss if total is None else total + loss
            value_dtype = str(loss.data.dtype)
        extra_value: Optional[float] = None
        if include_extra:
            extra = self.extra_losses()
            if extra is not None:
                total = extra if total is None else total + extra
                extra_value = float(extra.item())
                value_dtype = value_dtype or str(extra.data.dtype)
        return ShardLoss(
            loss=total,
            terms=terms,
            reductions={key: "mean" for key in terms},
            extra=extra_value,
            value_dtype=value_dtype,
        )

    # ------------------------------------------------------------------
    # traced step replay hooks (repro.tensor.trace)
    # ------------------------------------------------------------------
    def trace_signature(self):
        """Structural key component for traced step replay."""
        return (
            type(self).__name__,
            getattr(self, "_subgraph_num_hops", None),
            getattr(self, "_subgraph_fanout", None),
        )

    def trace_rng_sources(self):
        """Generators a training step may consume (rewound on trace fallback)."""
        sources = [self.rng] if isinstance(self.rng, np.random.Generator) else []
        for sampler in self._negative_samplers.values():
            rng = getattr(sampler, "rng", None) or getattr(sampler, "_rng", None)
            if isinstance(rng, np.random.Generator):
                sources.append(rng)
        return tuple(sources)

    def prepare_for_evaluation(self) -> None:
        """Hook called before scoring; default switches to eval mode."""
        self.eval()

    def invalidate_cache(self) -> None:
        """Hook called after each optimiser step; default restores train mode."""
        self.train()

    def score(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> np.ndarray:
        with no_grad():
            predictions = self.batch_scores(domain_key, users, items)
        return predictions.data.reshape(-1)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def negative_sampler(self, domain_key: str) -> NegativeSampler:
        """Lazily constructed per-domain negative sampler (pairwise losses)."""
        if domain_key not in self._negative_samplers:
            self._negative_samplers[domain_key] = NegativeSampler(
                self.task.domain(domain_key).split.train_domain(),
                rng=np.random.default_rng(self.rng.integers(0, 2**32 - 1)),
            )
        return self._negative_samplers[domain_key]

    def overlap_partner_lookup(self, domain_key: str) -> np.ndarray:
        """Array mapping local user index -> partner index in the other domain (-1 if none)."""
        return self.task.partner_lookup(domain_key)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(scenario={self.task.dataset.name!r})"
