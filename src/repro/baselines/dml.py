"""DML baseline (Li & Tuzhilin, 2021) — dual metric learning.

Each domain is a latent-factor model; a *latent orthogonal mapping* ``W``
relates the two domains' user spaces.  For overlapped users the training loss
adds dual mapping terms ``||u_a W - u_b||²`` and ``||u_b Wᵀ - u_a||²`` plus an
orthogonality regulariser ``||W Wᵀ - I||²``, so user relations are preserved
when transferring across domains.  Scoring in each domain combines the user's
own factor with the mapped factor of their partner (when one exists).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.task import CDRTask
from ..nn import Embedding, Linear, losses
from ..tensor import Tensor, ops
from .base import BaselineModel

__all__ = ["DMLModel"]


class DMLModel(BaselineModel):
    """Dual metric learning with a shared (approximately orthogonal) mapping."""

    display_name = "DML"

    def __init__(
        self,
        task: CDRTask,
        embedding_dim: int = 32,
        mapping_weight: float = 0.5,
        orthogonal_weight: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__(task, seed=seed)
        rng = np.random.default_rng(seed)
        self.embedding_dim = int(embedding_dim)
        self.mapping_weight = float(mapping_weight)
        self.orthogonal_weight = float(orthogonal_weight)
        self._partner_lookup = {key: self.overlap_partner_lookup(key) for key in ("a", "b")}
        for key in ("a", "b"):
            domain = task.domain(key)
            self.add_module(
                f"user_embedding_{key}", Embedding(domain.num_users, embedding_dim, rng=rng)
            )
            self.add_module(
                f"item_embedding_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )
        # Latent orthogonal mapping from domain A's user space to domain B's.
        self.mapping = Linear(embedding_dim, embedding_dim, bias=False, rng=rng)

    def _user_representation(self, domain_key: str, users: np.ndarray) -> Tensor:
        """Own factor plus the mapped partner factor for overlapped users."""
        users = np.asarray(users, dtype=np.int64)
        own = getattr(self, f"user_embedding_{domain_key}")(users)
        other_key = self.task.other_key(domain_key)
        partners = self._partner_lookup[domain_key][users]
        has_partner = partners >= 0
        if not has_partner.any():
            return own
        safe_partners = np.where(has_partner, partners, 0)
        partner = getattr(self, f"user_embedding_{other_key}")(safe_partners)
        if domain_key == "a":
            # partner lives in B-space; map back with W^T (orthogonal inverse).
            mapped = ops.matmul(partner, self.mapping.weight.transpose())
        else:
            mapped = self.mapping(partner)
        mask = Tensor(has_partner.astype(np.float64)[:, None])
        return own + 0.5 * mapped * mask

    def batch_scores(self, domain_key: str, users: np.ndarray, items: np.ndarray) -> Tensor:
        user_vectors = self._user_representation(domain_key, users)
        item_vectors = getattr(self, f"item_embedding_{domain_key}")(items)
        scores = (user_vectors * item_vectors).sum(axis=1, keepdims=True)
        return ops.sigmoid(scores)

    def extra_losses(self) -> Optional[Tensor]:
        """Dual mapping loss on overlapped users plus the orthogonality penalty."""
        pairs = self.task.overlap_pairs
        terms = []
        if pairs.size:
            users_a = self.user_embedding_a(pairs[:, 0])
            users_b = self.user_embedding_b(pairs[:, 1])
            mapped_a = self.mapping(users_a)
            mapped_back_b = ops.matmul(users_b, self.mapping.weight.transpose())
            terms.append(losses.mse_loss(mapped_a, users_b.detach()) * self.mapping_weight)
            terms.append(losses.mse_loss(mapped_back_b, users_a.detach()) * self.mapping_weight)
        gram = ops.matmul(self.mapping.weight, self.mapping.weight.transpose())
        identity = Tensor(np.eye(self.embedding_dim))
        terms.append(losses.mse_loss(gram, identity) * self.orthogonal_weight)
        total = terms[0]
        for term in terms[1:]:
            total = total + term
        return total
