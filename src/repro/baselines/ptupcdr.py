"""PTUPCDR baseline (Zhu et al., 2022) — personalized transfer of user preferences.

A meta network, fed with a *characteristic embedding* of the user's interaction
history in the source domain, generates a personalised bridge that transfers
the user's source-domain embedding into the target domain.  In the multi-target
setting the bridge is applied in both directions.  Non-overlapped users have no
source history and therefore no transferred preference (the bridge contributes
nothing), but — unlike fully-overlap methods — the per-user *personalised*
bridge still lets the small set of overlapped users be exploited efficiently,
which is why PTUPCDR is the strongest baseline at low overlap ratios.

Simplification vs. the original: the meta network generates a per-user
diagonal affine bridge (scale and shift vectors) instead of a full matrix, and
the "pre-trained" user/item embeddings are learned jointly with the bridge.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np
import scipy.sparse as sp

from ..core.task import CDRTask
from ..graph.message_passing import spmm
from ..nn import MLP, Embedding
from ..tensor import Tensor, ops
from .base import BaselineModel

__all__ = ["PTUPCDRModel"]


class PTUPCDRModel(BaselineModel):
    """Meta-network personalised bridges between the two domains' user spaces."""

    display_name = "PTUPCDR"

    def __init__(
        self,
        task: CDRTask,
        embedding_dim: int = 32,
        meta_hidden: Sequence[int] = (32,),
        seed: int = 0,
    ) -> None:
        super().__init__(task, seed=seed)
        rng = np.random.default_rng(seed)
        self.embedding_dim = int(embedding_dim)
        self._partner_lookup = {key: self.overlap_partner_lookup(key) for key in ("a", "b")}
        self._history_operator: Dict[str, sp.csr_matrix] = {}
        for key in ("a", "b"):
            domain = task.domain(key)
            self.add_module(
                f"user_embedding_{key}", Embedding(domain.num_users, embedding_dim, rng=rng)
            )
            self.add_module(
                f"item_embedding_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )
            # Meta network of the *incoming* bridge: characteristic embedding of
            # the source (other-domain) history -> diagonal affine bridge params.
            self.add_module(
                f"meta_network_{key}",
                MLP([embedding_dim, *meta_hidden, 2 * embedding_dim], activation="relu", rng=rng),
            )
            self._history_operator[key] = task.domain(key).train_graph.user_aggregation_matrix()

    def _characteristic_embedding(self, domain_key: str) -> Tensor:
        """Per-user characteristic embedding: mean of history item embeddings."""
        item_table = getattr(self, f"item_embedding_{domain_key}").all()
        return spmm(self._history_operator[domain_key], item_table)

    def _user_representation(self, domain_key: str, users: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        own = getattr(self, f"user_embedding_{domain_key}")(users)
        other_key = self.task.other_key(domain_key)
        partners = self._partner_lookup[domain_key][users]
        has_partner = partners >= 0
        if not has_partner.any():
            return own
        safe_partners = np.where(has_partner, partners, 0)

        # Characteristic embedding of the partner's history in the source domain.
        characteristics = ops.gather_rows(
            self._characteristic_embedding(other_key), safe_partners
        )
        bridge = getattr(self, f"meta_network_{domain_key}")(characteristics)
        scale = ops.tanh(bridge[:, : self.embedding_dim]) + 1.0
        shift = bridge[:, self.embedding_dim :]

        source_embedding = ops.gather_rows(
            getattr(self, f"user_embedding_{other_key}").all(), safe_partners
        )
        transferred = source_embedding * scale + shift
        mask = Tensor(has_partner.astype(np.float64)[:, None])
        return own + transferred * mask

    def batch_scores(self, domain_key: str, users: np.ndarray, items: np.ndarray) -> Tensor:
        user_vectors = self._user_representation(domain_key, users)
        item_vectors = getattr(self, f"item_embedding_{domain_key}")(items)
        scores = (user_vectors * item_vectors).sum(axis=1, keepdims=True)
        return ops.sigmoid(scores)
