"""MiNet baseline (Ouyang et al., 2020) — mixed interest network.

MiNet models three types of user interest for cross-domain CTR prediction:

* **long-term** interest — the user's embedding in the target domain;
* **short-term target-domain** interest — an aggregate of the user's observed
  item history in the target domain;
* **short-term source-domain** interest — an aggregate of the same person's
  item history in the other domain (zero for non-overlapped users).

The three interest vectors are fused by an interest-level attention and fed,
together with the candidate item embedding, into a prediction MLP.

Simplification vs. the original: history aggregation uses mean pooling instead
of item-level attention (interest-level attention is kept); this preserves the
model's qualitative behaviour — strong when overlapped histories exist, weak
when they do not — at a fraction of the cost.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np
import scipy.sparse as sp

from ..core.task import CDRTask
from ..graph.message_passing import spmm
from ..nn import MLP, Embedding, Linear
from ..tensor import Tensor, ops
from .base import BaselineModel

__all__ = ["MiNetModel"]


class MiNetModel(BaselineModel):
    """Three-interest cross-domain CTR model with interest-level attention."""

    display_name = "MiNet"

    def __init__(
        self,
        task: CDRTask,
        embedding_dim: int = 32,
        tower_hidden: Sequence[int] = (32, 16),
        seed: int = 0,
    ) -> None:
        super().__init__(task, seed=seed)
        rng = np.random.default_rng(seed)
        self.embedding_dim = int(embedding_dim)
        self._partner_lookup = {key: self.overlap_partner_lookup(key) for key in ("a", "b")}
        self._history_operator: Dict[str, sp.csr_matrix] = {}
        for key in ("a", "b"):
            domain = task.domain(key)
            self.add_module(
                f"user_embedding_{key}", Embedding(domain.num_users, embedding_dim, rng=rng)
            )
            self.add_module(
                f"item_embedding_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )
            self.add_module(f"interest_attention_{key}", Linear(embedding_dim, 1, rng=rng))
            self.add_module(
                f"tower_{key}",
                MLP([4 * embedding_dim, *tower_hidden, 1], activation="relu", rng=rng),
            )
            # Row-normalised user x item history operator (training interactions only).
            self._history_operator[key] = task.domain(key).train_graph.user_aggregation_matrix()

    def _history_interest(self, domain_key: str) -> Tensor:
        """Mean-pooled history item embedding for every user of a domain."""
        item_table = getattr(self, f"item_embedding_{domain_key}").all()
        return spmm(self._history_operator[domain_key], item_table)

    def batch_scores(self, domain_key: str, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        other_key = self.task.other_key(domain_key)

        long_term = getattr(self, f"user_embedding_{domain_key}")(users)
        target_history = ops.gather_rows(self._history_interest(domain_key), users)

        partners = self._partner_lookup[domain_key][users]
        has_partner = partners >= 0
        safe_partners = np.where(has_partner, partners, 0)
        source_history_all = self._history_interest(other_key)
        source_history = ops.gather_rows(source_history_all, safe_partners)
        source_history = source_history * Tensor(has_partner.astype(np.float64)[:, None])

        # Interest-level attention: softmax over the three interest channels.
        attention_layer = getattr(self, f"interest_attention_{domain_key}")
        interest_logits = ops.concat(
            [
                attention_layer(long_term),
                attention_layer(target_history),
                attention_layer(source_history),
            ],
            axis=1,
        )
        weights = ops.softmax(interest_logits, axis=1)
        w_long = weights[:, 0:1]
        w_target = weights[:, 1:2]
        w_source = weights[:, 2:3]

        item_vectors = getattr(self, f"item_embedding_{domain_key}")(items)
        features = ops.concat(
            [long_term * w_long, target_history * w_target, source_history * w_source, item_vectors],
            axis=1,
        )
        logits = getattr(self, f"tower_{domain_key}")(features)
        return ops.sigmoid(logits)
