"""Comparison baselines from Section III.A.3 of the paper."""

from .base import BaselineModel
from .bpr import BPRModel
from .conet import CoNetModel
from .dml import DMLModel
from .gadtcdr import GADTCDRModel
from .herograph import HeroGraphModel
from .lr import LRModel
from .minet import MiNetModel
from .mmoe import MMoEModel, build_global_user_index
from .neumf import NeuMFModel
from .ple import PLEModel
from .ptupcdr import PTUPCDRModel
from .registry import (
    ALL_MODEL_NAMES,
    BASELINE_NAMES,
    EXTRA_MODEL_NAMES,
    MODEL_GROUPS,
    available_models,
    build_model,
)
from .simple import PopularityModel, RandomModel

__all__ = [
    "BaselineModel",
    "LRModel",
    "BPRModel",
    "NeuMFModel",
    "MMoEModel",
    "PLEModel",
    "CoNetModel",
    "MiNetModel",
    "GADTCDRModel",
    "DMLModel",
    "HeroGraphModel",
    "PTUPCDRModel",
    "build_global_user_index",
    "RandomModel",
    "PopularityModel",
    "BASELINE_NAMES",
    "ALL_MODEL_NAMES",
    "EXTRA_MODEL_NAMES",
    "MODEL_GROUPS",
    "available_models",
    "build_model",
]
