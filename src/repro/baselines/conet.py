"""CoNet baseline (Hu et al., 2018) — collaborative cross networks.

Each domain owns an MLP tower over concatenated user/item embeddings; cross
connection units transfer the *other* domain's hidden state of the same user
into this domain's tower.  CoNet assumes fully overlapped users, so for
non-overlapped users the cross connection contributes nothing (a zero vector),
which is exactly why its performance degrades at small overlap ratios in the
paper's tables.

Simplification vs. the original: the cross connection operates on the user
representation entering the tower (one cross unit) rather than on every hidden
layer; the transfer is still a learnable linear map per direction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.task import CDRTask
from ..nn import MLP, Embedding, Linear
from ..tensor import Tensor, ops
from .base import BaselineModel

__all__ = ["CoNetModel"]


class CoNetModel(BaselineModel):
    """Dual MLP towers with cross-connection transfer for overlapped users."""

    display_name = "CoNet"

    def __init__(
        self,
        task: CDRTask,
        embedding_dim: int = 32,
        tower_hidden: Sequence[int] = (32, 16),
        seed: int = 0,
    ) -> None:
        super().__init__(task, seed=seed)
        rng = np.random.default_rng(seed)
        self.embedding_dim = int(embedding_dim)
        self._partner_lookup = {key: self.overlap_partner_lookup(key) for key in ("a", "b")}
        for key in ("a", "b"):
            domain = task.domain(key)
            self.add_module(
                f"user_embedding_{key}", Embedding(domain.num_users, embedding_dim, rng=rng)
            )
            self.add_module(
                f"item_embedding_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )
            # Cross-connection transfer matrix: other domain -> this domain.
            self.add_module(f"cross_transfer_{key}", Linear(embedding_dim, embedding_dim, rng=rng))
            self.add_module(
                f"tower_{key}",
                MLP([2 * embedding_dim, *tower_hidden, 1], activation="relu", rng=rng),
            )

    def _cross_user_representation(self, domain_key: str, users: np.ndarray) -> Tensor:
        """User embedding plus the transferred partner embedding (zero if none)."""
        users = np.asarray(users, dtype=np.int64)
        own = getattr(self, f"user_embedding_{domain_key}")(users)
        other_key = self.task.other_key(domain_key)
        partners = self._partner_lookup[domain_key][users]
        has_partner = partners >= 0
        if not has_partner.any():
            return own
        safe_partners = np.where(has_partner, partners, 0)
        partner_embeddings = getattr(self, f"user_embedding_{other_key}")(safe_partners)
        transferred = getattr(self, f"cross_transfer_{domain_key}")(partner_embeddings)
        mask = Tensor(has_partner.astype(np.float64)[:, None])
        return own + transferred * mask

    def batch_scores(self, domain_key: str, users: np.ndarray, items: np.ndarray) -> Tensor:
        user_vectors = self._cross_user_representation(domain_key, users)
        item_vectors = getattr(self, f"item_embedding_{domain_key}")(items)
        logits = getattr(self, f"tower_{domain_key}")(
            ops.concat([user_vectors, item_vectors], axis=1)
        )
        return ops.sigmoid(logits)
