"""Reference scorers that are not in the paper's tables but are useful sanity anchors.

* :class:`RandomModel` — uniform random scores; every ranking metric should sit
  at its chance level (HR@10 ≈ 10 / #candidates).
* :class:`PopularityModel` — scores items by their training popularity; the
  strongest *non-personalised* recommender and the serving policy used for the
  "Control" group of the online A/B simulation.

Both implement the same trainer/scorer protocol as the real baselines so they
can be dropped into any experiment for calibration.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.task import CDRTask
from ..data.dataloader import Batch
from ..nn import Parameter, init
from ..tensor import Tensor
from .base import BaselineModel

__all__ = ["RandomModel", "PopularityModel"]


class RandomModel(BaselineModel):
    """Scores every (user, item) pair with an independent uniform draw."""

    display_name = "Random"

    def __init__(self, task: CDRTask, embedding_dim: int = 0, seed: int = 0) -> None:
        super().__init__(task, seed=seed)
        # One dummy parameter so the shared trainer's optimiser has something
        # to hold; it receives zero gradient and never changes the scores.
        self.register_parameter("dummy", Parameter(init.zeros((1,))))
        self._score_rng = np.random.default_rng(seed)

    def batch_scores(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        draws = self._score_rng.random((len(users), 1))
        return Tensor(draws) + self.dummy * 0.0

    def domain_batch_loss(self, domain_key: str, batch: Batch) -> Tensor:
        # A constant-ish loss keeps the trainer loop well defined.
        return (self.dummy * self.dummy).sum() + 0.6931


class PopularityModel(BaselineModel):
    """Ranks items by their global popularity in the training split of each domain."""

    display_name = "Popularity"

    def __init__(self, task: CDRTask, embedding_dim: int = 0, seed: int = 0) -> None:
        super().__init__(task, seed=seed)
        self.register_parameter("dummy", Parameter(init.zeros((1,))))
        self._popularity: Dict[str, np.ndarray] = {}
        for key in ("a", "b"):
            split = task.domain(key).split
            counts = np.bincount(
                split.train_items,
                minlength=task.domain(key).num_items,
            )
            total = max(counts.sum(), 1)
            self._popularity[key] = counts / total

    def item_popularity(self, domain_key: str) -> np.ndarray:
        """Normalised training popularity of every item in the domain."""
        return self._popularity[domain_key]

    def batch_scores(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        scores = self._popularity[domain_key][np.asarray(items, dtype=np.int64)]
        return Tensor(scores.reshape(-1, 1)) + self.dummy * 0.0

    def domain_batch_loss(self, domain_key: str, batch: Batch) -> Tensor:
        return (self.dummy * self.dummy).sum() + 0.6931
