"""MMoE baseline (Ma et al., 2018) — multi-gate mixture-of-experts.

Treats the two domains as two tasks over a shared input representation.
Cross-domain knowledge flows through (i) a *shared* user embedding table
indexed by the global user identity (so overlapped users have one embedding
visible to both tasks) and (ii) the shared expert networks; each task has its
own gating network and prediction tower.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.task import CDRTask
from ..nn import MLP, Embedding, Linear, ModuleList
from ..tensor import Tensor, ops
from .base import BaselineModel

__all__ = ["MMoEModel", "build_global_user_index"]


def build_global_user_index(task: CDRTask):
    """Map every global user id appearing in either domain to a dense index.

    Returns ``(num_global_users, index_a, index_b)`` where ``index_a[local]``
    is the dense global index of that local user in domain A (same for B).
    Overlapped users map to the same dense index in both domains, which is how
    the multi-task and several CDR baselines share knowledge across domains.
    """
    ids_a = task.domain_a.domain.global_user_ids
    ids_b = task.domain_b.domain.global_user_ids
    unique_ids = np.unique(np.concatenate([ids_a, ids_b]))
    lookup = {int(gid): index for index, gid in enumerate(unique_ids)}
    index_a = np.asarray([lookup[int(gid)] for gid in ids_a], dtype=np.int64)
    index_b = np.asarray([lookup[int(gid)] for gid in ids_b], dtype=np.int64)
    return int(unique_ids.size), index_a, index_b


class MMoEModel(BaselineModel):
    """Multi-gate mixture-of-experts over shared user / per-domain item embeddings."""

    display_name = "MMoE"

    def __init__(
        self,
        task: CDRTask,
        embedding_dim: int = 32,
        num_experts: int = 3,
        expert_hidden: Sequence[int] = (32,),
        tower_hidden: Sequence[int] = (16,),
        seed: int = 0,
    ) -> None:
        super().__init__(task, seed=seed)
        rng = np.random.default_rng(seed)
        self.embedding_dim = int(embedding_dim)
        self.num_experts = int(num_experts)

        num_global, index_a, index_b = build_global_user_index(task)
        self._global_index = {"a": index_a, "b": index_b}
        self.shared_user_embedding = Embedding(num_global, embedding_dim, rng=rng)
        for key in ("a", "b"):
            domain = task.domain(key)
            self.add_module(
                f"item_embedding_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )

        input_dim = 2 * embedding_dim
        expert_out = int(expert_hidden[-1])
        self.experts = ModuleList(
            [
                MLP([input_dim, *expert_hidden], activation="relu", rng=rng)
                for _ in range(num_experts)
            ]
        )
        for key in ("a", "b"):
            self.add_module(f"gate_{key}", Linear(input_dim, num_experts, rng=rng))
            self.add_module(
                f"tower_{key}", MLP([expert_out, *tower_hidden, 1], activation="relu", rng=rng)
            )

    def _input_features(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        global_users = self._global_index[domain_key][np.asarray(users, dtype=np.int64)]
        user_vectors = self.shared_user_embedding(global_users)
        item_vectors = getattr(self, f"item_embedding_{domain_key}")(items)
        return ops.concat([user_vectors, item_vectors], axis=1)

    def batch_scores(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        features = self._input_features(domain_key, users, items)
        expert_outputs = [expert(features) for expert in self.experts]
        stacked = ops.stack(expert_outputs, axis=1)  # (batch, experts, hidden)
        gate = ops.softmax(getattr(self, f"gate_{domain_key}")(features), axis=1)
        gate = gate.reshape(gate.shape[0], self.num_experts, 1)
        mixed = (stacked * gate).sum(axis=1)
        logits = getattr(self, f"tower_{domain_key}")(mixed)
        return ops.sigmoid(logits)
