"""GA-DTCDR baseline (Zhu et al., 2020) — graphical & attentional dual-target CDR.

Each domain runs a graph encoder over its user–item interaction graph; for
overlapped users an element-wise attention network fuses the two domains'
embeddings of the same person into a single shared representation used in both
domains.  Non-overlapped users keep their single-domain graph embedding, so
the model's strength grows with the overlap ratio — matching the trends in
Tables II–V.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.encoder import HeterogeneousGraphEncoder
from ..core.task import CDRTask
from ..nn import MLP, Embedding, Linear
from ..tensor import Tensor, ops
from .base import BaselineModel, SubgraphSamplingMixin

__all__ = ["GADTCDRModel"]


class GADTCDRModel(SubgraphSamplingMixin, BaselineModel):
    """Per-domain GNN encoders with element-wise attention fusion for overlapped users."""

    display_name = "GA-DTCDR"

    def __init__(
        self,
        task: CDRTask,
        embedding_dim: int = 32,
        tower_hidden: Sequence[int] = (32,),
        seed: int = 0,
    ) -> None:
        super().__init__(task, seed=seed)
        rng = np.random.default_rng(seed)
        self.embedding_dim = int(embedding_dim)
        self._partner_lookup = {key: self.overlap_partner_lookup(key) for key in ("a", "b")}
        for key in ("a", "b"):
            domain = task.domain(key)
            self.add_module(
                f"user_embedding_{key}", Embedding(domain.num_users, embedding_dim, rng=rng)
            )
            self.add_module(
                f"item_embedding_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )
            self.add_module(
                f"encoder_{key}",
                HeterogeneousGraphEncoder(embedding_dim, embedding_dim, num_layers=1, rng=rng),
            )
            # Element-wise attention over [own ; partner] producing a gate per dimension.
            self.add_module(f"fusion_gate_{key}", Linear(2 * embedding_dim, embedding_dim, rng=rng))
            self.add_module(
                f"tower_{key}",
                MLP([2 * embedding_dim, *tower_hidden, 1], activation="relu", rng=rng),
            )

    def _encode(self, domain_key: str, subgraph=None):
        """Encode one domain, optionally restricted to an induced subgraph."""
        if subgraph is None:
            domain = self.task.domain(domain_key)
            graph = domain.train_graph
            user_g0 = getattr(self, f"user_embedding_{domain_key}").all()
            item_g0 = getattr(self, f"item_embedding_{domain_key}").all()
        else:
            graph = subgraph.graph
            user_g0 = getattr(self, f"user_embedding_{domain_key}")(subgraph.user_ids)
            item_g0 = getattr(self, f"item_embedding_{domain_key}")(subgraph.item_ids)
        return getattr(self, f"encoder_{domain_key}")(graph, user_g0, item_g0)

    def batch_scores(self, domain_key: str, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        other_key = self.task.other_key(domain_key)
        partners = self._partner_lookup[domain_key][users]
        has_partner = partners >= 0
        sampled = self._use_sampled_forward()

        if sampled:
            # Restrict both encoders to the k-hop subgraphs around the rows
            # this batch actually reads: the batch pairs in the own domain and
            # the overlap partners in the other (exact for num_hops >= 1).
            own_subgraph = self._subgraph_for(
                domain_key, self.task.domain(domain_key).train_graph, users, items
            )
            own_users, own_items = self._encode(domain_key, own_subgraph)
            lookup_users = own_subgraph.local_users(users)
            lookup_items = own_subgraph.local_items(items)
        else:
            own_users, own_items = self._encode(domain_key)
            lookup_users, lookup_items = users, items

        user_vectors = ops.gather_rows(own_users, lookup_users)
        if has_partner.any():
            if sampled:
                partner_ids = np.unique(partners[has_partner])
                other_subgraph = self._subgraph_for(
                    other_key,
                    self.task.domain(other_key).train_graph,
                    partner_ids,
                    np.empty(0, dtype=np.int64),
                )
                other_users, _ = self._encode(other_key, other_subgraph)
                # Rows without a partner gather an arbitrary in-subgraph row;
                # the mask below zeroes their contribution.
                safe_partners = other_subgraph.local_users(
                    np.where(has_partner, partners, partner_ids[0])
                )
            else:
                other_users, _ = self._encode(other_key)
                safe_partners = np.where(has_partner, partners, 0)
            partner_vectors = ops.gather_rows(other_users, safe_partners)
            gate = ops.sigmoid(
                getattr(self, f"fusion_gate_{domain_key}")(
                    ops.concat([user_vectors, partner_vectors], axis=1)
                )
            )
            fused = gate * user_vectors + (1.0 - gate) * partner_vectors
            mask = Tensor(has_partner.astype(np.float64)[:, None])
            user_vectors = fused * mask + user_vectors * (1.0 - mask)

        item_vectors = ops.gather_rows(own_items, lookup_items)
        logits = getattr(self, f"tower_{domain_key}")(
            ops.concat([user_vectors, item_vectors], axis=1)
        )
        return ops.sigmoid(logits)
