"""HeroGraph baseline (Cui et al., 2020) — heterogeneous global graph CDR.

HeroGraph builds one *global* graph collecting the users and items of both
domains (overlapped users appear once, connected to their items in both
domains) alongside per-domain *local* graphs.  Global message passing lets
information flow across domains through shared users; the final user/item
representations combine the global and local views.  Because the only bridges
in the global graph are overlapped users, the model still relies on overlap
to transfer knowledge — the limitation the paper's CH1 targets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.encoder import HeterogeneousGraphEncoder
from ..core.task import CDRTask
from ..graph import InteractionGraph
from ..nn import MLP, Embedding
from ..tensor import Tensor, ops
from .base import BaselineModel, SubgraphSamplingMixin
from .mmoe import build_global_user_index

__all__ = ["HeroGraphModel"]


class HeroGraphModel(SubgraphSamplingMixin, BaselineModel):
    """Global + local graph encoders with shared users bridging the domains."""

    display_name = "HeroGraph"

    def __init__(
        self,
        task: CDRTask,
        embedding_dim: int = 32,
        tower_hidden: Sequence[int] = (32,),
        seed: int = 0,
    ) -> None:
        super().__init__(task, seed=seed)
        rng = np.random.default_rng(seed)
        self.embedding_dim = int(embedding_dim)

        num_global, index_a, index_b = build_global_user_index(task)
        self._global_index = {"a": index_a, "b": index_b}
        self._num_global_users = num_global
        self._item_offset = {"a": 0, "b": task.domain_a.num_items}
        self._global_graph = self._build_global_graph(task)

        total_items = task.domain_a.num_items + task.domain_b.num_items
        self.global_user_embedding = Embedding(num_global, embedding_dim, rng=rng)
        self.global_item_embedding = Embedding(total_items, embedding_dim, rng=rng)
        self.global_encoder = HeterogeneousGraphEncoder(
            embedding_dim, embedding_dim, num_layers=1, rng=rng
        )

        for key in ("a", "b"):
            domain = task.domain(key)
            self.add_module(
                f"local_user_embedding_{key}", Embedding(domain.num_users, embedding_dim, rng=rng)
            )
            self.add_module(
                f"local_item_embedding_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )
            self.add_module(
                f"local_encoder_{key}",
                HeterogeneousGraphEncoder(embedding_dim, embedding_dim, num_layers=1, rng=rng),
            )
            self.add_module(
                f"tower_{key}",
                MLP([4 * embedding_dim, *tower_hidden, 1], activation="relu", rng=rng),
            )

    def _build_global_graph(self, task: CDRTask) -> InteractionGraph:
        """Merge both domains' training interactions into one bipartite graph."""
        users, items = [], []
        for key in ("a", "b"):
            split = task.domain(key).split
            users.append(self._global_index[key][split.train_users])
            items.append(split.train_items + self._item_offset[key])
        total_items = task.domain_a.num_items + task.domain_b.num_items
        return InteractionGraph(
            self._num_global_users,
            total_items,
            np.concatenate(users),
            np.concatenate(items),
        )

    def batch_scores(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        global_user_ids = self._global_index[domain_key][users]
        global_item_ids = items + self._item_offset[domain_key]

        if self._use_sampled_forward():
            # Training steps propagate over the induced 1-hop subgraphs of the
            # global and per-domain local graphs around the batch pairs.
            global_subgraph = self._subgraph_for(
                "global", self._global_graph, global_user_ids, global_item_ids
            )
            global_users, global_items = self.global_encoder(
                global_subgraph.graph,
                self.global_user_embedding(global_subgraph.user_ids),
                self.global_item_embedding(global_subgraph.item_ids),
            )
            local_subgraph = self._subgraph_for(
                f"local_{domain_key}",
                self.task.domain(domain_key).train_graph,
                users,
                items,
            )
            local_users, local_items = getattr(self, f"local_encoder_{domain_key}")(
                local_subgraph.graph,
                getattr(self, f"local_user_embedding_{domain_key}")(local_subgraph.user_ids),
                getattr(self, f"local_item_embedding_{domain_key}")(local_subgraph.item_ids),
            )
            global_user_ids = global_subgraph.local_users(global_user_ids)
            global_item_ids = global_subgraph.local_items(global_item_ids)
            users = local_subgraph.local_users(users)
            items = local_subgraph.local_items(items)
        else:
            global_users, global_items = self.global_encoder(
                self._global_graph,
                self.global_user_embedding.all(),
                self.global_item_embedding.all(),
            )
            local_users, local_items = getattr(self, f"local_encoder_{domain_key}")(
                self.task.domain(domain_key).train_graph,
                getattr(self, f"local_user_embedding_{domain_key}").all(),
                getattr(self, f"local_item_embedding_{domain_key}").all(),
            )

        global_user_rows = ops.gather_rows(global_users, global_user_ids)
        global_item_rows = ops.gather_rows(global_items, global_item_ids)
        local_user_rows = ops.gather_rows(local_users, users)
        local_item_rows = ops.gather_rows(local_items, items)

        features = ops.concat(
            [local_user_rows, global_user_rows, local_item_rows, global_item_rows], axis=1
        )
        logits = getattr(self, f"tower_{domain_key}")(features)
        return ops.sigmoid(logits)
