"""BPR baseline (Rendle et al., 2012) — matrix factorisation with pairwise loss.

Scores are inner products of user and item factors; training minimises the
pairwise Bayesian personalised ranking loss over (positive, sampled negative)
item pairs rather than the pointwise BCE used by the other models, so the
base-class loss is overridden.
"""

from __future__ import annotations

import numpy as np

from ..core.task import CDRTask
from ..data.dataloader import Batch
from ..nn import Embedding, losses
from ..tensor import Tensor, ops
from .base import BaselineModel

__all__ = ["BPRModel"]


class BPRModel(BaselineModel):
    """Single-domain Bayesian personalised ranking matrix factorisation."""

    display_name = "BPR"

    def __init__(self, task: CDRTask, embedding_dim: int = 32, seed: int = 0) -> None:
        super().__init__(task, seed=seed)
        rng = np.random.default_rng(seed)
        self.embedding_dim = int(embedding_dim)
        for key in ("a", "b"):
            domain = task.domain(key)
            self.add_module(
                f"user_embedding_{key}", Embedding(domain.num_users, embedding_dim, rng=rng)
            )
            self.add_module(
                f"item_embedding_{key}", Embedding(domain.num_items, embedding_dim, rng=rng)
            )

    def _raw_scores(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        user_vectors = getattr(self, f"user_embedding_{domain_key}")(users)
        item_vectors = getattr(self, f"item_embedding_{domain_key}")(items)
        return (user_vectors * item_vectors).sum(axis=1, keepdims=True)

    def batch_scores(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        return ops.sigmoid(self._raw_scores(domain_key, users, items))

    def domain_batch_loss(self, domain_key: str, batch: Batch) -> Tensor:
        """Pairwise BPR loss: positives from the batch, negatives re-sampled."""
        positive_mask = batch.labels > 0.5
        users = batch.users[positive_mask]
        positive_items = batch.items[positive_mask]
        if users.size == 0:
            # Fall back to pointwise BCE if this mini-batch has no positives.
            return super().domain_batch_loss(domain_key, batch)
        sampler = self.negative_sampler(domain_key)
        negative_items = sampler.sample_pairs(users, 1).reshape(-1)
        positive_scores = self._raw_scores(domain_key, users, positive_items)
        negative_scores = self._raw_scores(domain_key, users, negative_items)
        return losses.bpr_loss(positive_scores, negative_scores)
