"""Online serving tier: persistent representation store + batched top-K scoring.

The training side of the repo factors NMCDR's forward through the
encode/match boundary (:class:`repro.core.RepresentationModel`); this
package reuses the same protocol to answer recommendation requests without
running a model forward per query:

* :class:`RepresentationStore` — per-user encoder/matching outputs as a
  persistent, versioned array table built from a checkpoint and refreshed
  incrementally when parameters update (generation counter + staleness
  bound, mirroring the exchange plane's generation-counted segments);
* :class:`Scorer` — micro-batched request front end computing exact top-K
  slates over store rows, with cold-start requests routed through the
  matching-module output;
* :class:`ServeSession` — the ``repro serve`` entry point: rebuilds the
  model from a run manifest, loads a checkpoint params-only, builds the
  store and answers JSONL requests.

Resilience (:mod:`repro.serve.health` / :mod:`repro.serve.reload`): the
scorer front end carries a bounded admission queue, per-request deadlines
and a staleness degradation ladder, every outcome counted on a shared
:class:`ServeHealth`; :class:`HotReloader` promotes newer checkpoints
validate-then-swap (digest, config fingerprint, canary slate) with
counted rollback on any rejection.
"""

from .health import (
    DeadlineExceeded,
    ErrorResponse,
    ServeError,
    ServeHealth,
    ServeOverloadError,
    ServeUnavailableError,
)
from .reload import CheckpointWatcher, HotReloader, ReloadResult
from .scorer import ScoreRequest, ScoreResponse, Scorer, exact_top_k
from .service import ServeSession, build_run_components, load_run_manifest
from .store import (
    DomainTable,
    RepresentationStore,
    StaleRepresentationError,
    StoreError,
    component_digests,
)

__all__ = [
    "DomainTable",
    "RepresentationStore",
    "StaleRepresentationError",
    "StoreError",
    "component_digests",
    "ScoreRequest",
    "ScoreResponse",
    "Scorer",
    "exact_top_k",
    "ServeSession",
    "build_run_components",
    "load_run_manifest",
    "ServeError",
    "ServeHealth",
    "ServeOverloadError",
    "ServeUnavailableError",
    "DeadlineExceeded",
    "ErrorResponse",
    "CheckpointWatcher",
    "HotReloader",
    "ReloadResult",
]
