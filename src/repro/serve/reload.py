"""Hot checkpoint reload with validate-then-swap for the serving tier.

A long-lived serve process must pick up the trainer's newer checkpoints
without restarting — the ROADMAP's streaming-refresh item — but it must
*never* promote a checkpoint it has not proven servable: a truncated file,
a flipped byte, a config drift or a store-build defect has to roll back to
the generation already serving, loudly, with the request path untouched.

The mechanism mirrors ``repro.core.checkpoint``'s atomic-write discipline,
lifted to process state:

1. **Watch** — :class:`CheckpointWatcher` polls the run directory for a
   checkpoint newer than the one serving (cheap: one ``glob`` per poll).
   The same :class:`HotReloader` can equally be driven by a trainer-side
   checkpoint callback; the watcher is just the pull-mode driver.
2. **Shadow build** — the candidate loads *params-only* into a shadow
   model (built once from the session's run manifest and task; the serving
   model is never touched), its rng streams restored from the checkpoint
   meta, and a shadow :class:`~repro.serve.store.RepresentationStore` is
   built exactly the way a cold ``ServeSession`` would.
3. **Validate** — three gates, each with a counted rejection reason:
   ``corrupt`` (the loader's payload-digest / truncation checks failed),
   ``config`` (config fingerprint or engine dtype differs from the serving
   checkpoint, or the rng stream layout changed), ``canary`` (a small
   canary slate scored from the shadow store diverges — bit-for-bit, in
   float64 — from full-model rescoring of the shadow model).
4. **Swap** — a brand-new :class:`~repro.serve.scorer.Scorer` (same
   queue/deadline/staleness configuration, same shared
   :class:`~repro.serve.health.ServeHealth`) is published to the session
   by a single reference assignment — atomic under the GIL, so a request
   in flight sees either the old or the new scorer, never a mixture — and
   the shadow store's generation is stamped ``serving generation + 1``.

Any gate failure rolls back: the shadow objects are dropped, the serving
scorer keeps answering at its old generation, and the failure is counted
as ``reload_rejected`` with its reason on the shared health ledger.  The
``reload_corrupt`` / ``reload_crash`` fault points inject byte flips and
hard kills into steps 2–4; the fault suite drives them to prove the
rollback and the no-torn-state guarantees.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..core import faults
from ..core.checkpoint import (
    CheckpointError,
    generator_state,
    latest_checkpoint,
    load_checkpoint,
    set_generator_state,
)
from ..core.task import DOMAIN_KEYS
from ..tensor import engine as tensor_engine
from ..tensor.trace import model_rng_sources
from .health import ServeHealth
from .scorer import Scorer, exact_top_k
from .store import RepresentationStore

__all__ = ["CheckpointWatcher", "HotReloader", "ReloadResult"]


class ReloadResult(dict):
    """One reload attempt's outcome: ``swapped`` or ``rejected`` (+reason)."""

    @property
    def swapped(self) -> bool:
        return self.get("outcome") == "swapped"


class CheckpointWatcher:
    """Polls a checkpoint directory for a candidate newer than the serving one.

    Tracks the last path it handed out, so a rejected (or already-swapped)
    candidate is not re-offered every poll — a corrupt file on disk costs
    one rejection, not a rejection per poll cycle.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        current: Optional[Union[str, Path]] = None,
    ) -> None:
        self.directory = Path(directory)
        self.last_offered: Optional[Path] = Path(current) if current else None

    def poll(self) -> Optional[Path]:
        """The newest checkpoint, if it is one we have not offered yet."""
        newest = latest_checkpoint(self.directory)
        if newest is None or newest == self.last_offered:
            return None
        self.last_offered = newest
        return newest


class HotReloader:
    """Validate-then-swap reload of a :class:`ServeSession`; see module docs."""

    def __init__(
        self,
        session,
        *,
        directory: Optional[Union[str, Path]] = None,
        use_best: bool = True,
        canary_users: int = 4,
        canary_k: int = 5,
        health: Optional[ServeHealth] = None,
    ) -> None:
        self.session = session
        self.use_best = use_best
        self.canary_users = max(1, int(canary_users))
        self.canary_k = max(1, int(canary_k))
        self.health = health if health is not None else session.scorer.health
        watch_dir = directory
        if watch_dir is None:
            watch_dir = getattr(session, "checkpoint_dir", None)
        self.watcher = (
            CheckpointWatcher(
                watch_dir, current=getattr(session, "checkpoint_path", None)
            )
            if watch_dir is not None
            else None
        )
        # Built lazily on the first reload and reused after: the manifest
        # pins the architecture, so one shadow model serves every candidate.
        self._shadow_model = None

    # ------------------------------------------------------------------
    # drivers
    # ------------------------------------------------------------------
    def check(self) -> Optional[ReloadResult]:
        """Poll the watched directory; attempt a reload when a candidate shows."""
        if self.watcher is None:
            raise ValueError(
                "this HotReloader has no watched directory; call "
                "reload(path) directly or construct with directory="
            )
        candidate = self.watcher.poll()
        if candidate is None:
            return None
        return self.reload(candidate)

    # ------------------------------------------------------------------
    # the validate-then-swap sequence
    # ------------------------------------------------------------------
    def reload(self, path: Union[str, Path]) -> ReloadResult:
        """Attempt to promote ``path``; swap on success, roll back otherwise."""
        path = Path(path)
        session = self.session

        if faults.reload_should_corrupt("file"):
            _corrupt_file(path)

        # Gate 1: the checkpoint parses and its payload digest verifies.
        try:
            loaded = load_checkpoint(path, params_only=True)
        except CheckpointError as error:
            return self._reject("corrupt", path, str(error))

        # Gate 2: same config fingerprint, engine dtype and rng layout as
        # the checkpoint already serving — a drifted trainer config means
        # the manifest-built architecture may no longer match.
        serving_meta = session.checkpoint_meta
        live_dtype = tensor_engine.get_dtype().str
        if loaded.meta["engine_dtype"] != live_dtype:
            return self._reject(
                "config",
                path,
                f"checkpoint {path} was written under engine dtype "
                f"{loaded.meta['engine_dtype']} but the serving engine runs "
                f"{live_dtype}",
            )
        if loaded.meta.get("config") != serving_meta.get("config"):
            changed = sorted(
                key
                for key in set(loaded.meta.get("config", {}))
                | set(serving_meta.get("config", {}))
                if loaded.meta.get("config", {}).get(key)
                != serving_meta.get("config", {}).get(key)
            )
            return self._reject(
                "config",
                path,
                f"checkpoint {path} carries a different training config than "
                f"the serving checkpoint (differing fields: {changed})",
            )

        # Shadow build: params into the shadow model, rng from the meta.
        shadow = self._shadow()
        parameters = (
            loaded.best_state
            if (self.use_best and loaded.best_state)
            else loaded.parameters
        )
        try:
            shadow.load_state_dict(parameters)
        except Exception as error:
            return self._reject(
                "config",
                path,
                f"checkpoint {path} parameters do not fit the manifest-built "
                f"architecture: {error}",
            )
        shadow.invalidate_cache()
        sources = model_rng_sources(shadow)
        saved_sources = loaded.meta["rng"]["model_sources"]
        if len(sources) != len(saved_sources):
            return self._reject(
                "config",
                path,
                f"checkpoint {path} recorded {len(saved_sources)} model rng "
                f"streams but the manifest-built model exposes {len(sources)}",
            )
        for rng, state in zip(sources, saved_sources):
            set_generator_state(rng, state)

        old_store = session.scorer.store
        shadow_store = RepresentationStore.build(
            shadow,
            session.task,
            params_version=int(loaded.meta["optimizer"]["step_count"]),
            max_staleness=old_store.max_staleness if old_store else 0,
        )
        # The canary's full rescoring replays the store's rng snapshot; the
        # post-build states are what a cold session would be left with, so
        # they are restored afterwards — hot and cold sessions end in the
        # same rng state (the bit-identity gate in the fault suite).
        post_build = [generator_state(rng) for rng in sources]

        if faults.reload_should_corrupt("table"):
            _corrupt_tables(shadow_store)

        # Gate 3: canary slate — store-backed answers must equal
        # full-model rescoring bit for bit (float64).
        try:
            self._canary(shadow, shadow_store)
        except _CanaryFailure as error:
            for rng, state in zip(sources, post_build):
                set_generator_state(rng, state)
            return self._reject("canary", path, str(error))
        shadow.invalidate_cache()
        for rng, state in zip(sources, post_build):
            set_generator_state(rng, state)

        # Swap: generation continuity, then one atomic reference publish.
        faults.reload_crash_point("swap")
        old_scorer = session.scorer
        old_model = session.model
        if old_store is not None:
            shadow_store.meta["generation"] = old_store.generation + 1
        new_scorer = Scorer(
            shadow,
            shadow_store,
            micro_batch_size=old_scorer.micro_batch_size,
            queue_limit=old_scorer.queue_limit,
            default_deadline_ms=old_scorer.default_deadline_ms,
            hard_staleness=old_scorer.hard_staleness,
            health=old_scorer.health,
        )
        session.publish(new_scorer, checkpoint_meta=loaded.meta, checkpoint_path=path)
        # The displaced serving model becomes the next reload's shadow —
        # the pair ping-pongs, so hot reloads never accumulate models.
        self._shadow_model = old_model
        generation = shadow_store.generation
        self.health.count_reload("swapped", generation=generation)
        return ReloadResult(
            outcome="swapped",
            path=str(path),
            generation=generation,
            params_version=shadow_store.params_version,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _reject(self, reason: str, path: Path, message: str) -> ReloadResult:
        self.health.count_reload("rejected", reason=reason)
        return ReloadResult(
            outcome="rejected", reason=reason, path=str(path), message=message
        )

    def _shadow(self):
        """The reusable shadow model (never the one serving requests)."""
        if self._shadow_model is None or self._shadow_model is self.session.model:
            from .service import build_run_components

            self._shadow_model, _task, _settings = build_run_components(
                self.session.run, task=self.session.task
            )
        return self._shadow_model

    def _canary_users(self, warm: np.ndarray) -> List[int]:
        """A deterministic handful of users: warm-first, then cold."""
        warm_ids = np.flatnonzero(warm)
        cold_ids = np.flatnonzero(~warm)
        picked = list(warm_ids[: max(1, self.canary_users // 2)])
        picked.extend(cold_ids[: self.canary_users - len(picked)])
        if not picked:  # pragma: no cover — a domain with zero users
            picked = [0]
        return [int(user) for user in picked]

    def _canary(self, shadow, shadow_store: RepresentationStore) -> None:
        """Score a small slate both ways; raise on any bit divergence."""
        scorer = Scorer(shadow, shadow_store)
        # Full rescoring replays the store's pre-forward rng snapshot, the
        # same reference path ``ServeSession.verify`` uses.
        for rng, state in zip(
            model_rng_sources(shadow), shadow_store.meta["rng_sources"]
        ):
            set_generator_state(rng, state)
        shadow.prepare_for_evaluation()
        for key in DOMAIN_KEYS:
            table = shadow_store.tables[key]
            candidates = np.arange(table.num_items, dtype=np.int64)
            for user in self._canary_users(table.warm):
                store_scores = shadow.score_pairs(
                    key,
                    np.repeat(
                        table.user_row(user)[None, :], candidates.shape[0], axis=0
                    ),
                    table.items[candidates],
                )
                full_scores = shadow.score(
                    key,
                    np.full(candidates.shape[0], user, dtype=np.int64),
                    candidates,
                )
                store_top = exact_top_k(store_scores, self.canary_k)
                full_top = exact_top_k(full_scores, self.canary_k)
                if not (
                    np.array_equal(store_top, full_top)
                    and np.array_equal(
                        np.asarray(store_scores)[store_top],
                        np.asarray(full_scores)[full_top],
                    )
                ):
                    raise _CanaryFailure(
                        f"canary slate diverged for domain {key!r} user {user} "
                        "(store-backed scores != full rescoring); the shadow "
                        "store is not servable"
                    )


class _CanaryFailure(RuntimeError):
    """Internal: the canary gate found a store/model divergence."""


def _corrupt_file(path: Path) -> None:
    """Flip bytes mid-file (the ``reload_corrupt:phase=file`` injection)."""
    try:
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.seek(max(size // 2, 0))
            handle.write(b"\xde\xad\xbe\xef" * 8)
    except OSError:  # pragma: no cover — racing file removal
        pass


def _corrupt_tables(store: RepresentationStore) -> None:
    """Perturb the shadow tables (the ``reload_corrupt:phase=table`` injection)."""
    for key in DOMAIN_KEYS:
        table = store.tables[key]
        table.user_g4 = table.user_g4 + 1.0
        table.user_g3 = table.user_g3 + 1.0
