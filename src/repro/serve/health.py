"""Serve-path health accounting and the typed serving error hierarchy.

The resilient request path never answers with unbounded latency or an
untyped traceback: every outcome a request can have — answered fresh,
answered degraded (stale store, matching-module cold path), shed at
admission, expired past its deadline, or refused as unavailable — is a
*typed* result, and every one of them is counted on a shared
:class:`ServeHealth` object.  The same object counts the hot-reload
lifecycle (attempts, swaps, rejected checkpoints with their rejection
reason) so a ``repro serve --health`` probe, the profiler's ``serve``
section and the fault-injection suite all read one coherent ledger.

Error taxonomy
--------------

:class:`ServeError` is the base of every typed request failure; its
``code`` attribute is the machine-readable token the JSONL loop emits:

* :class:`ServeOverloadError` (``overload``) — the bounded admission queue
  was full and the request was shed instead of queueing unboundedly;
* :class:`DeadlineExceeded` (``deadline_exceeded``) — the request's
  deadline expired before (or while) its candidates were scored; deadlines
  are enforced cooperatively at micro-batch granularity, so a response is
  never later than the deadline plus one micro-batch wall;
* :class:`ServeUnavailableError` (``unavailable``) — the degradation
  ladder ran out of rungs (the store lags beyond even the hard staleness
  bound); the caller must refresh or reload before this user can be
  served.

:class:`~repro.serve.store.StaleRepresentationError` stays the store-level
signal; the scorer's ladder converts it into a rung (serve flagged
``degraded``) or, past the hard bound, a :class:`ServeUnavailableError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "DeadlineExceeded",
    "ErrorResponse",
    "ServeError",
    "ServeHealth",
    "ServeOverloadError",
    "ServeUnavailableError",
]


class ServeError(RuntimeError):
    """Base class of every typed request-path failure."""

    code = "serve_error"


class ServeOverloadError(ServeError):
    """The bounded admission queue is full; the request was shed."""

    code = "overload"


class DeadlineExceeded(ServeError):
    """The request's deadline expired before its slate was complete."""

    code = "deadline_exceeded"


class ServeUnavailableError(ServeError):
    """No degradation rung can serve this request (store too stale)."""

    code = "unavailable"


@dataclass
class ErrorResponse:
    """One *failed* request, answered with a typed error instead of a slate.

    Mirrors :class:`~repro.serve.scorer.ScoreResponse` shape-wise so the
    JSONL loop can emit either; ``error`` carries the machine-readable code
    (``overload`` / ``deadline_exceeded`` / ``unavailable`` / ``stale`` /
    ``bad_request`` / ``malformed`` / ``internal``).
    """

    error: str
    message: str
    domain: Optional[str] = None
    user: Optional[int] = None

    def to_json(self) -> Dict:
        payload: Dict = {"error": self.error, "message": self.message}
        if self.domain is not None:
            payload["domain"] = self.domain
        if self.user is not None:
            payload["user"] = int(self.user)
        return payload

    @classmethod
    def from_exception(cls, exc: BaseException, *, domain=None, user=None) -> "ErrorResponse":
        code = getattr(exc, "code", None) or "internal"
        return cls(error=code, message=str(exc), domain=domain, user=user)


@dataclass
class ServeHealth:
    """Counters for every request outcome and reload event; see module docs.

    One instance is shared by the :class:`~repro.serve.scorer.Scorer`, the
    :class:`~repro.serve.reload.HotReloader` and the
    :class:`~repro.serve.service.ServeSession` so the ``--health`` probe
    reports the whole serving process, not one component.
    """

    # -- request path ---------------------------------------------------
    requests_total: int = 0
    responses_ok: int = 0
    #: Degradation-ladder rung counts for *answered* requests.
    served_fresh: int = 0
    served_stale: int = 0
    served_cold_path: int = 0
    #: Cold-start users routed through the matching module (normal path).
    cold_start_requests: int = 0
    #: Typed failures.
    shed: int = 0
    deadline_exceeded: int = 0
    unavailable: int = 0
    request_errors: int = 0
    #: Per-error-code breakdown of every typed failure emitted.
    error_codes: Dict[str, int] = field(default_factory=dict)

    # -- reload lifecycle ----------------------------------------------
    reload_attempts: int = 0
    reload_swapped: int = 0
    reload_rejected: int = 0
    #: Per-reason breakdown of rejected reloads (corrupt/config/canary/crash).
    reload_rejected_reasons: Dict[str, int] = field(default_factory=dict)
    #: Serving generation after the most recent successful swap (0 = never).
    last_swap_generation: int = 0

    # ------------------------------------------------------------------
    def count_response(self, rung: str, *, cold_start: bool = False) -> None:
        """Record one answered request at the given ladder rung."""
        self.requests_total += 1
        self.responses_ok += 1
        if rung == "fresh":
            self.served_fresh += 1
        elif rung == "stale":
            self.served_stale += 1
        elif rung == "cold_path":
            self.served_cold_path += 1
        else:  # pragma: no cover — programming error, not a serving state
            raise ValueError(f"unknown degradation rung {rung!r}")
        if cold_start:
            self.cold_start_requests += 1

    def count_error(self, code: str) -> None:
        """Record one typed request failure by its error code."""
        self.requests_total += 1
        self.request_errors += 1
        self.error_codes[code] = self.error_codes.get(code, 0) + 1
        if code == "overload":
            self.shed += 1
        elif code == "deadline_exceeded":
            self.deadline_exceeded += 1
        elif code == "unavailable":
            self.unavailable += 1

    def count_reload(self, outcome: str, *, reason: Optional[str] = None,
                     generation: Optional[int] = None) -> None:
        """Record one reload attempt: ``swapped`` or ``rejected``."""
        self.reload_attempts += 1
        if outcome == "swapped":
            self.reload_swapped += 1
            if generation is not None:
                self.last_swap_generation = int(generation)
        elif outcome == "rejected":
            self.reload_rejected += 1
            key = reason or "unknown"
            self.reload_rejected_reasons[key] = (
                self.reload_rejected_reasons.get(key, 0) + 1
            )
        else:  # pragma: no cover — programming error, not a serving state
            raise ValueError(f"unknown reload outcome {outcome!r}")

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """JSON-ready snapshot (the ``--health`` probe / profiler payload)."""
        return {
            "requests": {
                "total": self.requests_total,
                "ok": self.responses_ok,
                "fresh": self.served_fresh,
                "stale": self.served_stale,
                "cold_path": self.served_cold_path,
                "cold_start": self.cold_start_requests,
                "errors": self.request_errors,
                "shed": self.shed,
                "deadline_exceeded": self.deadline_exceeded,
                "unavailable": self.unavailable,
                "error_codes": dict(self.error_codes),
            },
            "reload": {
                "attempts": self.reload_attempts,
                "swapped": self.reload_swapped,
                "rejected": self.reload_rejected,
                "rejected_reasons": dict(self.reload_rejected_reasons),
                "last_swap_generation": self.last_swap_generation,
            },
        }
