"""Persistent, versioned representation store for online serving.

The store materialises the arrays a :class:`repro.core.RepresentationModel`
needs at query time — per-user encoder outputs (``user_g1``), the matching
module's output (``user_g3``, the cold-start serving path), the complemented
head input (``user_g4``) and the item representations — as plain numpy
tables, one :class:`DomainTable` per domain.  Scoring a request is then a
row gather plus one prediction-head call (:meth:`score_pairs`), never a
model forward.

Versioning follows the exchange plane's generation-counted convention
(:mod:`repro.core.exchange`): every refresh bumps ``generation``; the
caller-supplied ``params_version`` (typically the optimiser ``step_count``)
records which parameters the tables were computed from, and reads beyond
``params_version + max_staleness`` raise :class:`StaleRepresentationError`
instead of silently serving stale rows.

Incremental refresh
-------------------

:func:`component_digests` partitions the model's parameters into the
pipeline components that produce each table — per-domain encoder inputs
(``encode_a``/``encode_b``: embeddings + graph encoder), the shared
matching/complementing stack (``match``) and the per-domain prediction
heads (``head_a``/``head_b``) — and hashes each group.  A refresh compares
digests and recomputes only what changed:

* head-only update → no forward at all (the head reads store rows at query
  time, so the tables are still exact);
* one domain's encoder changed → re-encode that domain only, splice the
  other domain's stored ``user_g1``/``items`` back in, re-run matching;
* matching changed → re-run matching over the stored encoder outputs.

Exactness is automatic: a component is skipped only when its parameter
bytes are identical, the encoder consumes no rng, and the matching stage's
pool draws are replayed from the rng snapshot taken at build time — so an
incremental refresh is bit-identical to a full rebuild from the same
snapshot (gated in ``tests/test_serve.py``).

rng policy: :meth:`RepresentationStore.build` *consumes* the model's live
generators exactly like ``prepare_for_evaluation`` (so replacing an ad-hoc
evaluation forward with a store build leaves downstream numerics
unchanged) and snapshots their pre-forward states into the store meta;
:meth:`RepresentationStore.refresh` restores that snapshot around its
forward and puts the live states back afterwards, leaving any concurrent
training stream unperturbed.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..core import faults
from ..core.checkpoint import (
    _json_default,
    _payload_digest,
    generator_state,
    set_generator_state,
)
from ..core.nmcdr import DomainRepresentations
from ..core.task import DOMAIN_KEYS
from ..tensor import Tensor, no_grad
from ..tensor import engine as tensor_engine
from ..tensor.trace import model_rng_sources

__all__ = [
    "STORE_VERSION",
    "DomainTable",
    "RepresentationStore",
    "StaleRepresentationError",
    "StoreError",
    "component_digests",
]

#: Schema version of the store archive; bumped on incompatible changes.
STORE_VERSION = 1

_STORE_FILENAME = "representations.npz"

#: Table stages persisted per domain (plus the ``warm`` mask).
_STAGES = ("user_g1", "user_g3", "user_g4", "items")

#: Per-domain parameter members feeding stages 0/1 (the encoder outputs).
_ENCODE_MEMBERS = frozenset({"user_embedding", "item_embedding", "encoder"})
#: Per-domain members that only score store rows (no table depends on them).
_HEAD_MEMBERS = frozenset({"prediction"})


class StoreError(RuntimeError):
    """A representation store could not be built, parsed or validated."""


class StaleRepresentationError(StoreError):
    """A read exceeded the store's configured staleness bound."""


def _component_of(name: str) -> str:
    """Map one parameter name to the store component it feeds.

    Parameters outside the recognised per-domain layout fall into
    ``match`` — the conservative bucket, whose change forces the matching
    recursion (and therefore every user table) to be recomputed.
    """
    for key in DOMAIN_KEYS:
        prefix = f"domain_{key}_params."
        if name.startswith(prefix):
            member = name[len(prefix):].split(".", 1)[0]
            if member in _ENCODE_MEMBERS:
                return f"encode_{key}"
            if member in _HEAD_MEMBERS:
                return f"head_{key}"
            return "match"
    return "match"


def component_digests(model) -> Dict[str, str]:
    """SHA-256 per store component over the component's parameter bytes."""
    groups: Dict[str, Dict[str, np.ndarray]] = {}
    for name, value in model.state_dict().items():
        groups.setdefault(_component_of(name), {})[name] = value
    return {
        component: _payload_digest(arrays)
        for component, arrays in sorted(groups.items())
    }


@dataclass
class DomainTable:
    """One domain's persisted representation arrays.

    ``warm`` marks users with at least one training interaction in this
    domain; users outside the mask are served from ``user_g3`` — the
    matching-module output, which equals ``user_g4`` for edge-less users
    (the complementing stage is the identity on degree-0 rows) and is the
    paper's cross-domain answer for cold-start users.
    """

    user_g1: np.ndarray
    user_g3: np.ndarray
    user_g4: np.ndarray
    items: np.ndarray
    warm: np.ndarray

    @property
    def num_users(self) -> int:
        return int(self.user_g4.shape[0])

    @property
    def num_items(self) -> int:
        return int(self.items.shape[0])

    def user_row(self, user: int) -> np.ndarray:
        """The serving row for one user: ``user_g4`` warm, ``user_g3`` cold."""
        table = self.user_g4 if self.warm[user] else self.user_g3
        return table[user]


class RepresentationStore:
    """Generation-counted per-domain representation tables; see module docs."""

    def __init__(self, tables: Dict[str, DomainTable], meta: Dict) -> None:
        self.tables = tables
        self.meta = meta
        #: Component/timing stats of the most recent :meth:`refresh`.
        self.last_refresh: Optional[Dict] = None

    # ------------------------------------------------------------------
    # versioning
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return int(self.meta["generation"])

    @property
    def params_version(self) -> int:
        return int(self.meta["params_version"])

    @property
    def max_staleness(self) -> int:
        return int(self.meta["max_staleness"])

    def assert_fresh(self, current_version: Optional[int]) -> None:
        """Raise when the live parameter version outruns the staleness bound."""
        if current_version is None:
            return
        lag = int(current_version) - self.params_version
        if lag > self.max_staleness:
            raise StaleRepresentationError(
                f"store generation {self.generation} holds representations of "
                f"parameter version {self.params_version}; the live version "
                f"{int(current_version)} exceeds the staleness bound of "
                f"{self.max_staleness} update(s) — refresh() before serving"
            )

    def domain(self, key: str, *, current_version: Optional[int] = None) -> DomainTable:
        """The domain's table, staleness-checked against ``current_version``."""
        self.assert_fresh(current_version)
        try:
            return self.tables[key]
        except KeyError:
            raise StoreError(f"store holds no domain {key!r}") from None

    # ------------------------------------------------------------------
    # build / refresh
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        model,
        task,
        *,
        params_version: int = 0,
        max_staleness: int = 0,
        rng_states: Optional[Sequence[Dict]] = None,
    ) -> "RepresentationStore":
        """Materialise the tables with one full encode+match forward.

        Consumes the model's live rng streams exactly like
        ``prepare_for_evaluation`` and snapshots their pre-forward states
        into the meta so refreshes (and rebuild comparisons, via
        ``rng_states``) replay the same matching-pool draws.
        """
        if not model.capabilities().encode_match_split:
            raise TypeError(
                f"{type(model).__name__} does not declare the "
                "encode_match_split capability; serve it through the "
                "Scorer's model-delegation path instead"
            )
        sources = model_rng_sources(model)
        if rng_states is not None:
            if len(rng_states) != len(sources):
                raise StoreError(
                    f"rng_states carries {len(rng_states)} states but the "
                    f"model exposes {len(sources)} rng sources"
                )
            for rng, state in zip(sources, rng_states):
                set_generator_state(rng, state)
        snapshot = [generator_state(rng) for rng in sources]

        was_training = model.training
        start = perf_counter()
        model.eval()
        try:
            with no_grad():
                reps = model.match_representations(model.encode_representations())
        finally:
            if was_training:
                model.train()
        build_seconds = perf_counter() - start

        tables = {}
        for key in DOMAIN_KEYS:
            tables[key] = DomainTable(
                **{
                    stage: np.array(reps[key][stage].data, copy=True)
                    for stage in _STAGES
                },
                warm=task.domain(key).train_graph.user_degrees() > 0,
            )
        meta = {
            "format_version": STORE_VERSION,
            "generation": 1,
            "params_version": int(params_version),
            "max_staleness": int(max_staleness),
            "engine_dtype": tensor_engine.get_dtype().str,
            "rng_sources": snapshot,
            "component_digests": component_digests(model),
            "build_seconds": build_seconds,
        }
        return cls(tables, meta)

    def refresh(self, model, *, params_version: Optional[int] = None) -> Dict:
        """Recompute exactly the tables whose parameters changed; see module docs.

        Returns (and records in :attr:`last_refresh`) what was recomputed
        and how long each stage took.  The model's live rng streams are
        restored afterwards, so a refresh inside a training loop does not
        perturb the training stream.
        """
        digests = component_digests(model)
        previous = self.meta["component_digests"]
        changed = sorted(
            name
            for name in set(digests) | set(previous)
            if digests.get(name) != previous.get(name)
        )
        stale_encode = tuple(key for key in DOMAIN_KEYS if f"encode_{key}" in changed)
        needs_match = bool(stale_encode) or "match" in changed

        start = perf_counter()
        encode_seconds = 0.0
        match_seconds = 0.0
        if needs_match:
            sources = model_rng_sources(model)
            saved = self.meta["rng_sources"]
            if len(sources) != len(saved):
                raise StoreError(
                    f"store snapshot carries {len(saved)} rng states but the "
                    f"model exposes {len(sources)} rng sources"
                )
            live_states = [generator_state(rng) for rng in sources]
            for rng, state in zip(sources, saved):
                set_generator_state(rng, state)
            was_training = model.training
            model.eval()
            try:
                with no_grad():
                    encode_start = perf_counter()
                    encoded = (
                        model.encode_representations(keys=stale_encode)
                        if stale_encode
                        else {}
                    )
                    encode_seconds = perf_counter() - encode_start
                    for key in DOMAIN_KEYS:
                        if key not in encoded:
                            # Splice the still-valid stored encoder outputs
                            # back in; matching reads only user_g1 + items.
                            table = self.tables[key]
                            encoded[key] = DomainRepresentations(
                                user_g1=Tensor(table.user_g1),
                                items=Tensor(table.items),
                            )
                    match_start = perf_counter()
                    reps = model.match_representations(encoded)
                    match_seconds = perf_counter() - match_start
            finally:
                if was_training:
                    model.train()
                for rng, state in zip(sources, live_states):
                    set_generator_state(rng, state)
            for key in DOMAIN_KEYS:
                table = self.tables[key]
                if key in stale_encode:
                    table.user_g1 = np.array(reps[key]["user_g1"].data, copy=True)
                    table.items = np.array(reps[key]["items"].data, copy=True)
                table.user_g3 = np.array(reps[key]["user_g3"].data, copy=True)
                table.user_g4 = np.array(reps[key]["user_g4"].data, copy=True)

        self.meta["component_digests"] = digests
        self.meta["generation"] = self.generation + 1
        if params_version is not None:
            self.meta["params_version"] = int(params_version)
        self.last_refresh = {
            "changed": changed,
            "recomputed_encode": list(stale_encode),
            "recomputed_match": needs_match,
            "seconds": perf_counter() - start,
            "encode_seconds": encode_seconds,
            "match_seconds": match_seconds,
        }
        return self.last_refresh

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _arrays(self) -> Dict[str, np.ndarray]:
        arrays: Dict[str, np.ndarray] = {}
        for key, table in self.tables.items():
            for stage in _STAGES:
                arrays[f"{key}::{stage}"] = getattr(table, stage)
            arrays[f"{key}::warm"] = table.warm
        return arrays

    def save(self, directory: Union[str, Path]) -> Path:
        """Atomically persist the tables + meta as one ``.npz`` archive."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        arrays = self._arrays()
        meta = dict(self.meta)
        meta["digest"] = _payload_digest(arrays)
        payload = dict(arrays)
        payload["meta"] = np.frombuffer(
            json.dumps(meta, default=_json_default).encode("utf-8"), dtype=np.uint8
        )
        final_path = directory / _STORE_FILENAME
        fd, tmp_name = tempfile.mkstemp(
            prefix=final_path.name + ".tmp-", dir=str(directory)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
                handle.flush()
                os.fsync(handle.fileno())
            # Injected hard kill between the shadow write and the atomic
            # rename: any previously published archive must stay loadable.
            faults.reload_crash_point("publish")
            os.replace(tmp_name, final_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return final_path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RepresentationStore":
        """Parse and integrity-check a persisted store archive."""
        path = Path(path)
        if path.is_dir():
            path = path / _STORE_FILENAME
        if not path.exists():
            raise StoreError(f"representation store not found: {path}")
        try:
            with np.load(path) as archive:
                if "meta" not in archive.files:
                    raise StoreError(
                        f"{path} is not a representation store (no meta entry)"
                    )
                meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
                arrays = {
                    name: archive[name] for name in archive.files if name != "meta"
                }
        except StoreError:
            raise
        except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError) as error:
            raise StoreError(
                f"representation store {path} is truncated or corrupted "
                f"({error!r}); rebuild it from a checkpoint"
            ) from error
        version = meta.get("format_version")
        if version != STORE_VERSION:
            raise StoreError(
                f"store {path} has format version {version!r}; this build "
                f"reads version {STORE_VERSION} — rebuild from a checkpoint"
            )
        digest = meta.pop("digest", None)
        actual = _payload_digest(arrays)
        if digest != actual:
            raise StoreError(
                f"store {path} (generation {meta.get('generation')!r}) failed "
                f"integrity verification: payload digest {actual[:12]}… does "
                f"not match recorded {str(digest)[:12]}…; rebuild it from a "
                "checkpoint"
            )
        tables: Dict[str, DomainTable] = {}
        for key in DOMAIN_KEYS:
            fields = {}
            for stage in (*_STAGES, "warm"):
                name = f"{key}::{stage}"
                if name not in arrays:
                    raise StoreError(f"store {path} is missing array {name!r}")
                fields[stage] = arrays[name]
            tables[key] = DomainTable(**fields)
        return cls(tables, meta)
