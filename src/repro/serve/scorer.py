"""Micro-batched exact top-K scoring over a representation store.

The :class:`Scorer` is the serving front end: it accepts
:class:`ScoreRequest` batches, gathers user/item rows from its
:class:`~repro.serve.store.RepresentationStore`, runs the model's
prediction head over micro-batches of (user, item) row pairs and returns
exact top-K slates.  Because the head invocation is the same one
``model.score`` runs on its evaluation cache, store-backed scoring is
bit-identical to full-model rescoring — the exactness canary gated in the
``serving`` benchmark section.

Two request paths:

* **warm** users (at least one training interaction in the requested
  domain) are scored from ``user_g4``, the complemented head input;
* **cold-start** users are routed through the matching module: their row
  comes from ``user_g3``, the inter/intra-matching output.  For edge-less
  users the complementing stage is the identity (``user_g4 == user_g3``),
  so the cold path is exact as well, and the response carries
  ``cold_start=True`` so callers can audit the routing.

Models without the ``encode_match_split`` capability (the non-graph
baselines) are served through a delegation path: the scorer micro-batches
their ``score(domain, users, items)`` evaluation interface instead, so one
front end serves every model in the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.task import DOMAIN_KEYS
from .store import RepresentationStore

__all__ = ["ScoreRequest", "ScoreResponse", "Scorer", "exact_top_k"]


def exact_top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` highest scores, exactly and deterministically.

    Heap-free: one ``np.partition`` to find the k-th value, then a stable
    descending sort of only the candidates at or above it.  Ties break
    toward the lowest index — the same winner ``np.argmax`` picks — so
    top-1 slates match greedy argmax policies bit-for-bit and the result
    equals a stable full sort's first ``k`` entries.
    """
    scores = np.asarray(scores).reshape(-1)
    n = scores.shape[0]
    k = min(int(k), n)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k < n:
        kth = np.partition(scores, n - k)[n - k]
        pool = np.flatnonzero(scores >= kth)
    else:
        pool = np.arange(n)
    order = pool[np.argsort(-scores[pool], kind="stable")]
    return order[:k].astype(np.int64, copy=False)


@dataclass
class ScoreRequest:
    """One top-K query: a user, a domain, and an optional candidate set."""

    domain: str
    user: int
    k: int = 10
    #: Item ids to rank; ``None`` ranks the domain's full catalogue.
    candidates: Optional[np.ndarray] = None

    @classmethod
    def from_json(cls, payload: Dict) -> "ScoreRequest":
        candidates = payload.get("candidates")
        return cls(
            domain=str(payload["domain"]),
            user=int(payload["user"]),
            k=int(payload.get("k", 10)),
            candidates=(
                np.asarray(candidates, dtype=np.int64)
                if candidates is not None
                else None
            ),
        )


@dataclass
class ScoreResponse:
    """One answered query: the top-K slate plus serving provenance."""

    domain: str
    user: int
    items: np.ndarray
    scores: np.ndarray
    cold_start: bool
    generation: int
    params_version: int

    def to_json(self) -> Dict:
        return {
            "domain": self.domain,
            "user": self.user,
            "items": [int(item) for item in self.items],
            "scores": [float(score) for score in self.scores],
            "cold_start": self.cold_start,
            "generation": self.generation,
            "params_version": self.params_version,
        }


@dataclass
class _DomainBatch:
    """Flat (user-row, item) pair arrays for one domain's requests."""

    positions: List[int] = field(default_factory=list)
    lengths: List[int] = field(default_factory=list)
    users: List[int] = field(default_factory=list)
    candidates: List[np.ndarray] = field(default_factory=list)


class Scorer:
    """Batched top-K front end over a store (or a baseline's score method)."""

    def __init__(
        self,
        model,
        store: Optional[RepresentationStore] = None,
        *,
        micro_batch_size: int = 8192,
    ) -> None:
        capabilities = model.capabilities()
        if capabilities.encode_match_split:
            if store is None:
                raise ValueError(
                    f"{type(model).__name__} declares encode_match_split; "
                    "build a RepresentationStore first (Scorer.from_model "
                    "does both)"
                )
        else:
            if store is not None:
                raise ValueError(
                    f"{type(model).__name__} has no encode/match split; it "
                    "is served by micro-batched delegation, without a store"
                )
            # The delegation path scores through the model's evaluation
            # interface; prepare it once (for NMCDR this would be the full
            # forward the store replaces — baselines just switch to eval).
            model.prepare_for_evaluation()
        self.model = model
        self.store = store
        self.micro_batch_size = max(1, int(micro_batch_size))

    @classmethod
    def from_model(
        cls,
        model,
        task=None,
        *,
        params_version: int = 0,
        max_staleness: int = 0,
        micro_batch_size: int = 8192,
    ) -> "Scorer":
        """Build the store when the model supports one, then wrap it."""
        store = None
        if model.capabilities().encode_match_split:
            if task is None:
                raise ValueError("building a store requires the model's task")
            store = RepresentationStore.build(
                model,
                task,
                params_version=params_version,
                max_staleness=max_staleness,
            )
        return cls(model, store, micro_batch_size=micro_batch_size)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def _num_items(self, domain_key: str) -> int:
        if self.store is not None:
            return self.store.tables[domain_key].num_items
        task = getattr(self.model, "task", None)
        if task is None:
            raise ValueError(
                "full-catalogue requests need an item count; pass explicit "
                "candidates for models without a task"
            )
        return int(task.domain(domain_key).num_items)

    def score(self, request: ScoreRequest, *, current_version: Optional[int] = None) -> ScoreResponse:
        return self.score_batch([request], current_version=current_version)[0]

    def score_batch(
        self,
        requests: Sequence[ScoreRequest],
        *,
        current_version: Optional[int] = None,
    ) -> List[ScoreResponse]:
        """Answer a batch of requests, micro-batching the head per domain."""
        if self.store is not None:
            self.store.assert_fresh(current_version)

        batches: Dict[str, _DomainBatch] = {}
        for position, request in enumerate(requests):
            if request.domain not in DOMAIN_KEYS:
                raise KeyError(f"unknown domain {request.domain!r}")
            candidates = (
                np.arange(self._num_items(request.domain), dtype=np.int64)
                if request.candidates is None
                else np.asarray(request.candidates, dtype=np.int64)
            )
            batch = batches.setdefault(request.domain, _DomainBatch())
            batch.positions.append(position)
            batch.lengths.append(candidates.shape[0])
            batch.users.append(int(request.user))
            batch.candidates.append(candidates)

        responses: List[Optional[ScoreResponse]] = [None] * len(requests)
        for domain_key, batch in batches.items():
            flat_scores = self._score_domain(domain_key, batch)
            offsets = np.cumsum([0, *batch.lengths])
            for slot, position in enumerate(batch.positions):
                request = requests[position]
                scores = flat_scores[offsets[slot]:offsets[slot + 1]]
                top = exact_top_k(scores, request.k)
                responses[position] = ScoreResponse(
                    domain=domain_key,
                    user=batch.users[slot],
                    items=batch.candidates[slot][top],
                    scores=scores[top],
                    cold_start=self._is_cold(domain_key, batch.users[slot]),
                    generation=self.store.generation if self.store else 0,
                    params_version=(
                        self.store.params_version if self.store else 0
                    ),
                )
        return responses  # type: ignore[return-value]

    def _is_cold(self, domain_key: str, user: int) -> bool:
        if self.store is None:
            return False
        return not bool(self.store.tables[domain_key].warm[user])

    def _score_domain(self, domain_key: str, batch: _DomainBatch) -> np.ndarray:
        """Flat scores for every (user, candidate) pair of one domain."""
        lengths = np.asarray(batch.lengths, dtype=np.int64)
        flat_items = (
            np.concatenate(batch.candidates)
            if batch.candidates
            else np.empty(0, dtype=np.int64)
        )
        total = int(flat_items.shape[0])
        if total == 0:
            return np.empty(0)

        if self.store is not None:
            table = self.store.tables[domain_key]
            user_rows = np.stack(
                [table.user_row(user) for user in batch.users], axis=0
            )
            flat_users = np.repeat(user_rows, lengths, axis=0)
            item_rows = table.items[flat_items]
            chunks = [
                self.model.score_pairs(
                    domain_key,
                    flat_users[start:start + self.micro_batch_size],
                    item_rows[start:start + self.micro_batch_size],
                )
                for start in range(0, total, self.micro_batch_size)
            ]
        else:
            flat_user_ids = np.repeat(
                np.asarray(batch.users, dtype=np.int64), lengths
            )
            chunks = [
                self.model.score(
                    domain_key,
                    flat_user_ids[start:start + self.micro_batch_size],
                    flat_items[start:start + self.micro_batch_size],
                )
                for start in range(0, total, self.micro_batch_size)
            ]
        return np.concatenate([np.asarray(chunk).reshape(-1) for chunk in chunks])
