"""Micro-batched exact top-K scoring over a representation store.

The :class:`Scorer` is the serving front end: it accepts
:class:`ScoreRequest` batches, gathers user/item rows from its
:class:`~repro.serve.store.RepresentationStore`, runs the model's
prediction head over micro-batches of (user, item) row pairs and returns
exact top-K slates.  Because the head invocation is the same one
``model.score`` runs on its evaluation cache, store-backed scoring is
bit-identical to full-model rescoring — the exactness canary gated in the
``serving`` benchmark section.

Two request paths:

* **warm** users (at least one training interaction in the requested
  domain) are scored from ``user_g4``, the complemented head input;
* **cold-start** users are routed through the matching module: their row
  comes from ``user_g3``, the inter/intra-matching output.  For edge-less
  users the complementing stage is the identity (``user_g4 == user_g3``),
  so the cold path is exact as well, and the response carries
  ``cold_start=True`` so callers can audit the routing.

Models without the ``encode_match_split`` capability (the non-graph
baselines) are served through a delegation path: the scorer micro-batches
their ``score(domain, users, items)`` evaluation interface instead, so one
front end serves every model in the registry.

Request-path robustness
-----------------------

The front end is bounded in both queue depth and latency:

* **Admission control** — ``queue_limit`` bounds how many requests one
  batch may admit; the excess is *shed* with a typed
  :class:`~repro.serve.health.ServeOverloadError` instead of queueing
  unboundedly.
* **Deadlines** — a request may carry ``deadline_ms`` (or inherit
  ``default_deadline_ms``); enforcement is cooperative at micro-batch
  granularity, so an expired request stops consuming the head after at
  most one more micro-batch and answers with a typed
  :class:`~repro.serve.health.DeadlineExceeded`.
* **Degradation ladder** — store staleness no longer has only two states.
  Per batch the scorer resolves a rung: ``fresh`` (store matches the live
  parameter version), ``stale`` (lag within ``max_staleness`` — served,
  flagged ``degraded="stale"``), ``cold_path`` (lag within
  ``hard_staleness`` — every user served from the matching-module output
  ``user_g3``, the conservative cross-domain row, flagged
  ``degraded="cold_path"``) and finally a typed
  :class:`~repro.serve.health.ServeUnavailableError`.  With no
  ``hard_staleness`` configured the ladder stops at the store's own
  :class:`~repro.serve.store.StaleRepresentationError`, the pre-existing
  contract.

Every rung and every typed failure is counted on the scorer's
:class:`~repro.serve.health.ServeHealth`; the ``scorer_slow`` fault point
(:func:`repro.core.faults.scorer_chunk`) injects latency into the
micro-batch loop so the deadline machinery is testable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core import faults
from ..core.task import DOMAIN_KEYS
from .health import (
    DeadlineExceeded,
    ErrorResponse,
    ServeHealth,
    ServeOverloadError,
    ServeUnavailableError,
)
from .store import RepresentationStore, StaleRepresentationError, StoreError

__all__ = ["ScoreRequest", "ScoreResponse", "Scorer", "exact_top_k"]


def exact_top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` highest scores, exactly and deterministically.

    Heap-free: one ``np.partition`` to find the k-th value, then a stable
    descending sort of only the candidates at or above it.  Ties break
    toward the lowest index — the same winner ``np.argmax`` picks — so
    top-1 slates match greedy argmax policies bit-for-bit and the result
    equals a stable full sort's first ``k`` entries.
    """
    scores = np.asarray(scores).reshape(-1)
    n = scores.shape[0]
    k = min(int(k), n)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k < n:
        kth = np.partition(scores, n - k)[n - k]
        pool = np.flatnonzero(scores >= kth)
    else:
        pool = np.arange(n)
    order = pool[np.argsort(-scores[pool], kind="stable")]
    return order[:k].astype(np.int64, copy=False)


@dataclass
class ScoreRequest:
    """One top-K query: a user, a domain, and an optional candidate set."""

    domain: str
    user: int
    k: int = 10
    #: Item ids to rank; ``None`` ranks the domain's full catalogue.
    candidates: Optional[np.ndarray] = None
    #: Relative deadline in milliseconds from admission; ``None`` inherits
    #: the scorer's ``default_deadline_ms`` (which may also be ``None``).
    deadline_ms: Optional[float] = None

    @classmethod
    def from_json(cls, payload: Dict) -> "ScoreRequest":
        candidates = payload.get("candidates")
        deadline = payload.get("deadline_ms")
        return cls(
            domain=str(payload["domain"]),
            user=int(payload["user"]),
            k=int(payload.get("k", 10)),
            candidates=(
                np.asarray(candidates, dtype=np.int64)
                if candidates is not None
                else None
            ),
            deadline_ms=float(deadline) if deadline is not None else None,
        )


@dataclass
class ScoreResponse:
    """One answered query: the top-K slate plus serving provenance."""

    domain: str
    user: int
    items: np.ndarray
    scores: np.ndarray
    cold_start: bool
    generation: int
    params_version: int
    #: ``None`` when served fresh; ``"stale"`` / ``"cold_path"`` when the
    #: degradation ladder answered from a lagging store.
    degraded: Optional[str] = None

    def to_json(self) -> Dict:
        return {
            "domain": self.domain,
            "user": self.user,
            "items": [int(item) for item in self.items],
            "scores": [float(score) for score in self.scores],
            "cold_start": self.cold_start,
            "generation": self.generation,
            "params_version": self.params_version,
            "degraded": self.degraded,
        }


@dataclass
class _DomainBatch:
    """Flat (user-row, item) pair arrays for one domain's requests."""

    positions: List[int] = field(default_factory=list)
    lengths: List[int] = field(default_factory=list)
    users: List[int] = field(default_factory=list)
    candidates: List[np.ndarray] = field(default_factory=list)


#: A batch entry: either a slate or a typed error for that request.
Response = Union[ScoreResponse, ErrorResponse]


class Scorer:
    """Batched top-K front end over a store (or a baseline's score method)."""

    def __init__(
        self,
        model,
        store: Optional[RepresentationStore] = None,
        *,
        micro_batch_size: int = 8192,
        queue_limit: Optional[int] = None,
        default_deadline_ms: Optional[float] = None,
        hard_staleness: Optional[int] = None,
        health: Optional[ServeHealth] = None,
    ) -> None:
        capabilities = model.capabilities()
        if capabilities.encode_match_split:
            if store is None:
                raise ValueError(
                    f"{type(model).__name__} declares encode_match_split; "
                    "build a RepresentationStore first (Scorer.from_model "
                    "does both)"
                )
        else:
            if store is not None:
                raise ValueError(
                    f"{type(model).__name__} has no encode/match split; it "
                    "is served by micro-batched delegation, without a store"
                )
            # The delegation path scores through the model's evaluation
            # interface; prepare it once (for NMCDR this would be the full
            # forward the store replaces — baselines just switch to eval).
            model.prepare_for_evaluation()
        self.model = model
        self.store = store
        self.micro_batch_size = max(1, int(micro_batch_size))
        self.queue_limit = int(queue_limit) if queue_limit is not None else None
        self.default_deadline_ms = (
            float(default_deadline_ms) if default_deadline_ms is not None else None
        )
        self.hard_staleness = (
            int(hard_staleness) if hard_staleness is not None else None
        )
        self.health = health if health is not None else ServeHealth()

    @classmethod
    def from_model(
        cls,
        model,
        task=None,
        *,
        params_version: int = 0,
        max_staleness: int = 0,
        micro_batch_size: int = 8192,
        queue_limit: Optional[int] = None,
        default_deadline_ms: Optional[float] = None,
        hard_staleness: Optional[int] = None,
        health: Optional[ServeHealth] = None,
    ) -> "Scorer":
        """Build the store when the model supports one, then wrap it."""
        store = None
        if model.capabilities().encode_match_split:
            if task is None:
                raise ValueError("building a store requires the model's task")
            store = RepresentationStore.build(
                model,
                task,
                params_version=params_version,
                max_staleness=max_staleness,
            )
        return cls(
            model,
            store,
            micro_batch_size=micro_batch_size,
            queue_limit=queue_limit,
            default_deadline_ms=default_deadline_ms,
            hard_staleness=hard_staleness,
            health=health,
        )

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def _num_items(self, domain_key: str) -> int:
        if self.store is not None:
            return self.store.tables[domain_key].num_items
        task = getattr(self.model, "task", None)
        if task is None:
            raise ValueError(
                "full-catalogue requests need an item count; pass explicit "
                "candidates for models without a task"
            )
        return int(task.domain(domain_key).num_items)

    def _ladder_rung(self, current_version: Optional[int]) -> str:
        """Resolve this batch's degradation rung, or raise past the ladder.

        ``store_stale`` fault injection overrides the observed lag so the
        whole ladder is drillable without a live trainer.
        """
        if self.store is None:
            return "fresh"
        injected = faults.injected_staleness_lag()
        if injected is not None:
            lag = int(injected)
        elif current_version is None:
            return "fresh"
        else:
            lag = int(current_version) - self.store.params_version
        if lag <= 0:
            return "fresh"
        if lag <= self.store.max_staleness:
            return "stale"
        if self.hard_staleness is not None and lag <= self.hard_staleness:
            return "cold_path"
        if self.hard_staleness is None:
            # Ladder not configured: keep the store-level contract (raise
            # the moment the staleness bound is crossed).
            raise StaleRepresentationError(
                f"store generation {self.store.generation} holds "
                f"representations of parameter version "
                f"{self.store.params_version}; the live version lags "
                f"{lag} update(s) beyond the staleness bound of "
                f"{self.store.max_staleness} — refresh() before serving"
            )
        raise ServeUnavailableError(
            f"store generation {self.store.generation} (parameter version "
            f"{self.store.params_version}) lags {lag} update(s), beyond even "
            f"the hard staleness bound of {self.hard_staleness}; refresh or "
            "hot-reload before serving"
        )

    def score(
        self, request: ScoreRequest, *, current_version: Optional[int] = None
    ) -> ScoreResponse:
        response = self.score_batch([request], current_version=current_version)[0]
        # collect_errors=False (the default) raises instead of returning
        # ErrorResponse entries, so this cast is safe.
        return response  # type: ignore[return-value]

    def score_batch(
        self,
        requests: Sequence[ScoreRequest],
        *,
        current_version: Optional[int] = None,
        collect_errors: bool = False,
    ) -> List[Response]:
        """Answer a batch of requests, micro-batching the head per domain.

        ``collect_errors=True`` is the serving-loop mode: any per-request
        failure (shed, deadline, staleness, bad domain) becomes a typed
        :class:`ErrorResponse` at that request's position and the rest of
        the batch is still answered.  The default raises on the first
        failure — the pre-existing library contract.
        """
        admitted_at = monotonic()
        responses: List[Optional[Response]] = [None] * len(requests)

        def fail(position: int, error: Exception) -> None:
            code = getattr(error, "code", None)
            if code is None:
                if isinstance(error, StaleRepresentationError):
                    code = "stale"
                elif isinstance(error, (KeyError, StoreError, ValueError)):
                    code = "bad_request"
                else:
                    code = "internal"
            self.health.count_error(code)
            if not collect_errors:
                raise error
            request = requests[position]
            responses[position] = ErrorResponse(
                error=code,
                message=str(error),
                domain=request.domain,
                user=request.user,
            )

        # -- degradation ladder (store-level, resolved once per batch) --
        try:
            rung = self._ladder_rung(current_version)
        except (StaleRepresentationError, ServeUnavailableError) as error:
            for position in range(len(requests)):
                fail(position, error)
            return responses  # type: ignore[return-value]

        # -- admission control ------------------------------------------
        admitted: List[int] = []
        for position in range(len(requests)):
            if self.queue_limit is not None and len(admitted) >= self.queue_limit:
                fail(
                    position,
                    ServeOverloadError(
                        f"admission queue full ({self.queue_limit} request(s) "
                        "admitted); request shed — retry with a smaller batch "
                        "or raise --queue-limit"
                    ),
                )
            else:
                admitted.append(position)

        # -- deadline resolution ----------------------------------------
        deadlines: Dict[int, float] = {}
        for position in admitted:
            relative = requests[position].deadline_ms
            if relative is None:
                relative = self.default_deadline_ms
            if relative is not None:
                deadlines[position] = admitted_at + float(relative) / 1e3

        if deadlines:
            self._score_each(requests, admitted, deadlines, rung, responses, fail)
        else:
            self._score_grouped(requests, admitted, rung, responses, fail)

        for position in admitted:
            response = responses[position]
            if isinstance(response, ScoreResponse):
                self.health.count_response(rung, cold_start=response.cold_start)
        return responses  # type: ignore[return-value]

    # -- grouped fast path (no deadlines): flatten per domain -----------
    def _score_grouped(self, requests, admitted, rung, responses, fail) -> None:
        batches: Dict[str, _DomainBatch] = {}
        for position in admitted:
            request = requests[position]
            try:
                batch = batches.setdefault(request.domain, _DomainBatch())
                candidates = self._candidates(request)
            except Exception as error:  # bad domain / missing item count
                fail(position, error)
                continue
            batch.positions.append(position)
            batch.lengths.append(candidates.shape[0])
            batch.users.append(int(request.user))
            batch.candidates.append(candidates)

        for domain_key, batch in batches.items():
            try:
                flat_scores = self._flat_scores(
                    domain_key,
                    batch.users,
                    batch.candidates,
                    rung=rung,
                    deadline=None,
                )
            except Exception as error:
                for position in batch.positions:
                    fail(position, error)
                continue
            offsets = np.cumsum([0, *batch.lengths])
            for slot, position in enumerate(batch.positions):
                request = requests[position]
                scores = flat_scores[offsets[slot]:offsets[slot + 1]]
                responses[position] = self._build_response(
                    domain_key, batch.users[slot], batch.candidates[slot],
                    scores, request.k, rung,
                )

    # -- per-request path (deadlines active) ----------------------------
    def _score_each(self, requests, admitted, deadlines, rung, responses, fail) -> None:
        for position in admitted:
            request = requests[position]
            deadline = deadlines.get(position)
            try:
                if deadline is not None and monotonic() > deadline:
                    raise DeadlineExceeded(
                        f"request (domain={request.domain!r}, user="
                        f"{request.user}) expired before scoring started "
                        f"(deadline {request.deadline_ms or self.default_deadline_ms} ms)"
                    )
                candidates = self._candidates(request)
                scores = self._flat_scores(
                    request.domain,
                    [int(request.user)],
                    [candidates],
                    rung=rung,
                    deadline=deadline,
                )
                responses[position] = self._build_response(
                    request.domain, int(request.user), candidates,
                    scores, request.k, rung,
                )
            except Exception as error:
                fail(position, error)

    # -- shared helpers -------------------------------------------------
    def _candidates(self, request: ScoreRequest) -> np.ndarray:
        if request.domain not in DOMAIN_KEYS:
            raise KeyError(f"unknown domain {request.domain!r}")
        if request.candidates is None:
            return np.arange(self._num_items(request.domain), dtype=np.int64)
        return np.asarray(request.candidates, dtype=np.int64)

    def _build_response(
        self, domain_key, user, candidates, scores, k, rung
    ) -> ScoreResponse:
        top = exact_top_k(scores, k)
        return ScoreResponse(
            domain=domain_key,
            user=user,
            items=candidates[top],
            scores=scores[top],
            cold_start=self._is_cold(domain_key, user),
            generation=self.store.generation if self.store else 0,
            params_version=(self.store.params_version if self.store else 0),
            degraded=None if rung == "fresh" else rung,
        )

    def _is_cold(self, domain_key: str, user: int) -> bool:
        if self.store is None:
            return False
        return not bool(self.store.tables[domain_key].warm[user])

    def _user_row(self, table, user: int, rung: str) -> np.ndarray:
        """The serving row under the batch's ladder rung.

        On the ``cold_path`` rung every user is served from ``user_g3`` —
        the matching-module output, the conservative cross-domain row — not
        just the cold-start users.
        """
        if rung == "cold_path":
            return table.user_g3[user]
        return table.user_row(user)

    def _flat_scores(
        self,
        domain_key: str,
        users: Sequence[int],
        candidate_sets: Sequence[np.ndarray],
        *,
        rung: str,
        deadline: Optional[float],
    ) -> np.ndarray:
        """Flat scores for every (user, candidate) pair, micro-batched.

        ``deadline`` (absolute ``monotonic()`` time) is checked before each
        micro-batch; the chunking never changes the numbers (``score_pairs``
        is elementwise per pair), so grouped and per-request paths agree
        bit for bit.
        """
        lengths = np.asarray([c.shape[0] for c in candidate_sets], dtype=np.int64)
        flat_items = (
            np.concatenate(list(candidate_sets))
            if candidate_sets
            else np.empty(0, dtype=np.int64)
        )
        total = int(flat_items.shape[0])
        if total == 0:
            return np.empty(0)

        if self.store is not None:
            table = self.store.tables[domain_key]
            user_rows = np.stack(
                [self._user_row(table, user, rung) for user in users], axis=0
            )
            flat_users = np.repeat(user_rows, lengths, axis=0)
            item_rows = table.items[flat_items]
        else:
            flat_user_ids = np.repeat(np.asarray(users, dtype=np.int64), lengths)

        chunks = []
        for index, start in enumerate(range(0, total, self.micro_batch_size)):
            faults.scorer_chunk(index)
            if deadline is not None and monotonic() > deadline:
                raise DeadlineExceeded(
                    f"request (domain={domain_key!r}, user={users[0]}) "
                    f"expired after {index} of "
                    f"{-(-total // self.micro_batch_size)} micro-batches"
                )
            stop = start + self.micro_batch_size
            if self.store is not None:
                chunk = self.model.score_pairs(
                    domain_key, flat_users[start:stop], item_rows[start:stop]
                )
            else:
                chunk = self.model.score(
                    domain_key, flat_user_ids[start:stop], flat_items[start:stop]
                )
            chunks.append(chunk)
        return np.concatenate([np.asarray(chunk).reshape(-1) for chunk in chunks])
