"""The ``repro serve`` session: checkpoint → store → JSONL answers.

A :class:`ServeSession` is the inference-tier counterpart of the training
CLI's checkpoint workflow: it reads the ``run.json`` provenance manifest a
``repro train --checkpoint-dir`` run wrote, rebuilds the identical dataset
/task/model through :func:`build_run_components` (the same resolver the
train/resume commands use), loads the newest checkpoint **params-only**
(no optimiser moments, digest still verified), restores the model's rng
streams from the checkpoint meta, builds the
:class:`~repro.serve.store.RepresentationStore` and answers top-K requests
through the :class:`~repro.serve.scorer.Scorer`.

Requests and responses are line-delimited JSON::

    {"domain": "a", "user": 17, "k": 5}
    {"domain": "b", "user": 3, "k": 10, "candidates": [1, 4, 9]}

Each response echoes the query plus the slate and serving provenance
(``cold_start``, store ``generation``, ``params_version``).  The optional
verify mode recomputes every answer against full-model rescoring (the
evaluation cache path) and fails loudly on any divergence — the CI smoke
test runs the one-shot ``--requests`` mode this way.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Union

import numpy as np

from ..core.checkpoint import (
    CheckpointError,
    latest_checkpoint,
    load_checkpoint,
    set_generator_state,
)
from ..tensor import engine as tensor_engine
from ..tensor.trace import model_rng_sources
from .health import ErrorResponse
from .scorer import ScoreRequest, Scorer, exact_top_k

__all__ = ["ServeSession", "build_run_components", "load_run_manifest"]


def load_run_manifest(directory: Union[str, Path]) -> Dict:
    """The ``run.json`` manifest of a checkpointed training run."""
    run_file = Path(directory) / "run.json"
    if not run_file.exists():
        raise FileNotFoundError(
            f"no run.json in {directory}; start the run with "
            "`repro train --checkpoint-dir` to make it servable"
        )
    return json.loads(run_file.read_text())


def build_run_components(run: Dict, *, task=None):
    """(model, task, settings) described by a ``run.json`` manifest.

    The single config-resolution path shared by ``repro train``, ``repro
    resume`` and ``repro serve``: all three rebuild the identical dataset,
    task and model from the same manifest dict, so a served checkpoint is
    guaranteed to load into the architecture that produced it (the
    checkpoint's own config fingerprint and payload digest double-check).

    ``task`` short-circuits the dataset rebuild when the caller already
    holds the run's task — the hot reloader builds shadow models this way,
    so a reload costs one model construction, not a dataset preparation.
    """
    # Imported lazily: this module is reachable from ``repro.experiments``
    # (the online A/B harness scores through the Scorer), so importing the
    # experiments package at module scope would be circular.
    from ..baselines import build_model
    from ..core import build_task
    from ..experiments import ExperimentSettings
    from ..experiments.runner import prepare_dataset

    settings = ExperimentSettings(**run["settings"])
    if task is None:
        dataset = prepare_dataset(settings)
        task = build_task(dataset, head_threshold=settings.head_threshold)
    model = build_model(
        run["model"], task, embedding_dim=settings.embedding_dim, seed=settings.seed
    )
    return model, task, settings


class ServeSession:
    """One loaded checkpoint serving top-K requests; see module docs."""

    def __init__(
        self,
        model,
        task,
        scorer: Scorer,
        *,
        checkpoint_meta: Dict,
        run: Dict,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.model = model
        self.task = task
        self.scorer = scorer
        self.checkpoint_meta = checkpoint_meta
        self.run = run
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.requests_served = 0
        self._reference_ready = False

    @property
    def health(self):
        """The shared :class:`~repro.serve.health.ServeHealth` ledger."""
        return self.scorer.health

    @classmethod
    def from_checkpoint_dir(
        cls,
        directory: Union[str, Path],
        *,
        checkpoint: Optional[Union[str, Path]] = None,
        max_staleness: int = 0,
        micro_batch_size: int = 8192,
        use_best: bool = True,
        queue_limit: Optional[int] = None,
        default_deadline_ms: Optional[float] = None,
        hard_staleness: Optional[int] = None,
    ) -> "ServeSession":
        """Stand up a session from a ``repro train --checkpoint-dir`` directory.

        ``use_best`` serves the early-stopping best state when the
        checkpoint recorded one, falling back to the final parameters.
        ``queue_limit`` / ``default_deadline_ms`` / ``hard_staleness``
        configure the scorer's admission queue, request deadlines and
        degradation ladder (see :mod:`repro.serve.scorer`).
        """
        directory = Path(directory)
        run = load_run_manifest(directory)
        path = Path(checkpoint) if checkpoint is not None else latest_checkpoint(directory)
        if path is None:
            raise CheckpointError(f"no checkpoint found in {directory}")
        loaded = load_checkpoint(path, params_only=True)
        live_dtype = tensor_engine.get_dtype().str
        if loaded.meta["engine_dtype"] != live_dtype:
            raise CheckpointError(
                f"checkpoint {path} was written under engine dtype "
                f"{loaded.meta['engine_dtype']} but the serving engine runs "
                f"{live_dtype}"
            )
        model, task, _settings = build_run_components(run)
        parameters = (
            loaded.best_state if (use_best and loaded.best_state) else loaded.parameters
        )
        model.load_state_dict(parameters)
        model.invalidate_cache()
        sources = model_rng_sources(model)
        saved_sources = loaded.meta["rng"]["model_sources"]
        if len(sources) != len(saved_sources):
            raise CheckpointError(
                f"checkpoint {path} (digest "
                f"{str(loaded.meta.get('digest'))[:12]}…) recorded "
                f"{len(saved_sources)} model rng streams but the rebuilt "
                f"model exposes {len(sources)}"
            )
        for rng, state in zip(sources, saved_sources):
            set_generator_state(rng, state)
        scorer = Scorer.from_model(
            model,
            task,
            params_version=int(loaded.meta["optimizer"]["step_count"]),
            max_staleness=max_staleness,
            micro_batch_size=micro_batch_size,
            queue_limit=queue_limit,
            default_deadline_ms=default_deadline_ms,
            hard_staleness=hard_staleness,
        )
        return cls(
            model,
            task,
            scorer,
            checkpoint_meta=loaded.meta,
            run=run,
            checkpoint_path=path,
            checkpoint_dir=directory,
        )

    # ------------------------------------------------------------------
    # hot reload commit point
    # ------------------------------------------------------------------
    def publish(
        self,
        scorer: Scorer,
        *,
        checkpoint_meta: Optional[Dict] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
    ) -> None:
        """Swap in a validated scorer (the hot reloader's commit point).

        The request path reads ``self.scorer``; that reference is assigned
        last, so a concurrent reader observes either the complete old state
        or the complete new one — never a torn mixture.
        """
        self.model = scorer.model
        if checkpoint_meta is not None:
            self.checkpoint_meta = checkpoint_meta
        if checkpoint_path is not None:
            self.checkpoint_path = Path(checkpoint_path)
        self._reference_ready = False
        self.scorer = scorer

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def answer(self, payload: Dict, *, default_k: int = 10) -> Dict:
        """Answer one JSON request dict with a JSON response dict."""
        request_payload = dict(payload)
        request_payload.setdefault("k", default_k)
        response = self.scorer.score(ScoreRequest.from_json(request_payload))
        self.requests_served += 1
        return response.to_json()

    def answer_robust(self, payload, *, default_k: int = 10) -> Dict:
        """Answer one request dict, mapping every failure to a typed error.

        The serving-loop counterpart of :meth:`answer`: a malformed payload,
        a shed/expired request or a scorer failure comes back as an
        ``{"error": ..., "message": ...}`` response dict — this method never
        raises, so one bad request can never kill the loop.
        """
        try:
            request_payload = dict(payload)
            request_payload.setdefault("k", default_k)
            request = ScoreRequest.from_json(request_payload)
        except Exception as error:
            self.health.count_error("bad_request")
            return ErrorResponse(
                error="bad_request",
                message=f"malformed request payload {payload!r}: {error}",
            ).to_json()
        result = self.scorer.score_batch([request], collect_errors=True)[0]
        self.requests_served += 1
        return result.to_json()

    def verify(self, payload: Dict, response: Dict, *, default_k: int = 10) -> bool:
        """Check one response against full-model rescoring, bit for bit.

        The reference path is the evaluation interface every model already
        has — ``score(domain, users, items)`` over a full forward's cache —
        scored over the same candidate set and reduced by the same exact
        top-K, so any store/refresh defect shows up as a hard mismatch.
        """
        request_payload = dict(payload)
        request_payload.setdefault("k", default_k)
        request = ScoreRequest.from_json(request_payload)
        candidates = (
            request.candidates
            if request.candidates is not None
            else np.arange(self.scorer._num_items(request.domain), dtype=np.int64)
        )
        self._prepare_reference()
        scores = self.model.score(
            request.domain,
            np.full(candidates.shape[0], request.user, dtype=np.int64),
            candidates,
        )
        top = exact_top_k(scores, request.k)
        expected_items = [int(item) for item in candidates[top]]
        expected_scores = [float(score) for score in scores[top]]
        return (
            expected_items == list(response["items"])
            and expected_scores == list(response["scores"])
        )

    def _prepare_reference(self) -> None:
        """One full forward under the store's rng snapshot (first verify only)."""
        if self._reference_ready:
            return
        store = self.scorer.store
        if store is not None:
            sources = model_rng_sources(self.model)
            for rng, state in zip(sources, store.meta["rng_sources"]):
                set_generator_state(rng, state)
            self.model.prepare_for_evaluation()
        self._reference_ready = True

    def serve_lines(
        self,
        lines: Iterable[str],
        *,
        default_k: int = 10,
        verify: bool = False,
        robust: bool = False,
        reloader=None,
    ) -> Iterator[str]:
        """Answer an iterable of JSONL request lines, yielding JSONL responses.

        ``robust`` is the long-lived-loop mode: a malformed line or a
        per-request failure yields a typed error response and the loop keeps
        serving (the default raises — the strict one-shot contract).
        ``reloader`` (a :class:`~repro.serve.reload.HotReloader`) is polled
        between requests, so newer checkpoints hot-swap mid-stream.
        """
        for line in lines:
            line = line.strip()
            if not line:
                continue
            if reloader is not None:
                reloader.check()
            if robust:
                try:
                    payload = json.loads(line)
                    if not isinstance(payload, dict):
                        raise ValueError("request line is not a JSON object")
                except ValueError as error:
                    self.health.count_error("malformed")
                    yield json.dumps(
                        ErrorResponse(
                            error="malformed",
                            message=f"unparseable request line: {error}",
                        ).to_json()
                    )
                    continue
                response = self.answer_robust(payload, default_k=default_k)
            else:
                payload = json.loads(line)
                response = self.answer(payload, default_k=default_k)
            if (
                verify
                and "error" not in response
                and not self.verify(payload, response, default_k=default_k)
            ):
                raise RuntimeError(
                    "serving verification failed: store-backed response for "
                    f"{payload!r} diverged from full-model rescoring"
                )
            yield json.dumps(response)

    # ------------------------------------------------------------------
    # provenance
    # ------------------------------------------------------------------
    def record_profile(self, profiler) -> None:
        """Publish the health ledger as the profiler's ``serve`` section."""
        profiler.record_section("serve", self.health.snapshot())

    def summary(self) -> str:
        store = self.scorer.store
        parts = [
            f"model={self.run['model']}",
            f"scenario={self.run['settings'].get('scenario')}",
            f"requests={self.requests_served}",
        ]
        if store is not None:
            parts.append(f"generation={store.generation}")
            parts.append(f"params_version={store.params_version}")
        health = self.health
        if health.reload_attempts:
            parts.append(
                f"reloads={health.reload_swapped}/{health.reload_attempts}"
            )
        if health.request_errors:
            parts.append(f"request_errors={health.request_errors}")
        return "served " + " ".join(parts)
