"""Lightweight experiment logging and timing utilities.

The experiment harness is deliberately free of heavyweight dependencies; these
helpers provide the minimum a long-running sweep needs: section-scoped timing,
throttled progress lines and a structured record that can be dumped to JSON.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["Timer", "ExperimentLogger"]


class Timer:
    """Accumulate wall-clock time per named section."""

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def section(self, name: str):
        """Context manager timing one section occurrence."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds spent in ``name``."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of times ``name`` was entered."""
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        """Mean seconds per occurrence of ``name`` (0 if never entered)."""
        count = self._counts.get(name, 0)
        return self._totals.get(name, 0.0) / count if count else 0.0

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-section totals, counts and means."""
        return {
            name: {"total": self.total(name), "count": self.count(name), "mean": self.mean(name)}
            for name in self._totals
        }


class ExperimentLogger:
    """Collect structured experiment records and optionally echo them to stdout."""

    def __init__(self, name: str, verbose: bool = False) -> None:
        self.name = name
        self.verbose = bool(verbose)
        self.records: List[Dict] = []
        self.timer = Timer()
        self._started = time.time()

    def log(self, event: str, **fields) -> Dict:
        """Append one record; returns it for convenience."""
        record = {
            "event": event,
            "elapsed_s": round(time.time() - self._started, 3),
            **fields,
        }
        self.records.append(record)
        if self.verbose:
            printable = ", ".join(f"{key}={value}" for key, value in fields.items())
            print(f"[{self.name}] {event}: {printable}")
        return record

    def log_metrics(
        self,
        model_name: str,
        metrics: Dict[str, Dict[str, float]],
    ) -> Dict:
        """Convenience wrapper flattening a per-domain metrics dict."""
        flat = {
            f"{domain}/{metric}": value
            for domain, per_domain in metrics.items()
            for metric, value in per_domain.items()
        }
        return self.log("metrics", model=model_name, **flat)

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialise all records (and timer summary) to JSON; optionally write to ``path``."""
        payload = json.dumps(
            {"experiment": self.name, "records": self.records, "timings": self.timer.summary()},
            indent=2,
            default=float,
        )
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(payload)
        return payload
