"""Command-line interface for the reproduction experiments.

Usage::

    python -m repro.cli stats                      # Table I statistics
    python -m repro.cli overlap  --scenario cloth_sport --ratios 0.1 0.5 0.9
    python -m repro.cli density  --scenario loan_fund
    python -m repro.cli ablation --scenario phone_elec
    python -m repro.cli neighbors --scenario cloth_sport --values 8 32 128
    python -m repro.cli threshold --scenario cloth_sport --values 3 7 11
    python -m repro.cli online-ab --impressions 1500
    python -m repro.cli efficiency
    python -m repro.cli profile --profile-model NMCDR --batches 20
    python -m repro.cli train  --checkpoint-dir runs/demo --checkpoint-every 1
    python -m repro.cli resume --checkpoint-dir runs/demo
    python -m repro.cli serve  --checkpoint-dir runs/demo --requests reqs.jsonl

Every subcommand prints a table to stdout and, with ``--output DIR``, writes a
CSV export next to it.  These are the same code paths the benchmarks use; the
CLI exists so a downstream user can rerun any experiment without pytest.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional, Sequence

from .analysis import measure_efficiency
from .baselines import build_model
from .core import build_task
from .data import SCENARIO_NAMES, format_statistics_table, load_scenario, scenario_statistics
from .experiments import (
    ExperimentSettings,
    OnlineDomainSpec,
    run_ablation,
    run_density_sweep,
    run_head_threshold_sweep,
    run_matching_neighbors_sweep,
    run_online_ab,
    run_overlap_sweep,
)
from .experiments.ablation import ABLATION_MODEL_NAMES
from .experiments.figures import (
    density_sweep_to_csv,
    hyperparameter_sweep_to_csv,
    overlap_sweep_to_csv,
)
from .experiments.runner import prepare_dataset

__all__ = ["build_parser", "main"]

_DEFAULT_MODELS = ("LR", "PLE", "GA-DTCDR", "PTUPCDR", "NMCDR")


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings(
        scenario=args.scenario,
        scale=args.scale,
        num_epochs=args.epochs,
        num_eval_negatives=args.negatives,
        embedding_dim=args.embedding_dim,
        seed=args.seed,
    )


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="cloth_sport", choices=SCENARIO_NAMES)
    parser.add_argument("--scale", type=float, default=0.6, help="dataset scale factor")
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--negatives", type=int, default=99, help="evaluation negatives per positive")
    parser.add_argument("--embedding-dim", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--models", nargs="+", default=list(_DEFAULT_MODELS))
    parser.add_argument("--output", type=Path, default=None, help="directory for CSV exports")


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Step-execution flags shared by every command that runs the engine.

    Defined once so ``repro train``, ``repro profile`` (and any future
    engine-driving command) expose the identical executor surface;
    :func:`_execution_config_fields` is the single mapping from these flags
    to :class:`~repro.core.TrainerConfig` fields.
    """
    parser.add_argument(
        "--executor",
        choices=("serial", "sharded"),
        default="serial",
        help="step executor: in-process serial or the sharded data-parallel one",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="worker-process count for --executor sharded",
    )
    parser.add_argument(
        "--pool-sharding",
        action="store_true",
        help=(
            "with --executor sharded: partition the matching-pool closure "
            "across shards and all-gather the pool activations each step"
        ),
    )
    parser.add_argument(
        "--traced",
        action="store_true",
        help=(
            "record each step's autograd graph once per plan signature and "
            "replay it as a flat buffer program (requires dropout=0)"
        ),
    )
    parser.add_argument(
        "--pickled-pipes",
        action="store_true",
        help=(
            "with --executor sharded: disable the shared-memory exchange "
            "plane and pickle the data-plane payloads over the worker pipes "
            "(the pre-PR-8 protocol; useful for comparing the comms section)"
        ),
    )


def _execution_config_fields(args: argparse.Namespace) -> dict:
    """TrainerConfig fields described by the shared execution flags."""
    return {
        "executor": args.executor,
        "n_shards": args.shards,
        "pool_sharding": args.pool_sharding,
        "traced_steps": args.traced,
        "shm_exchange": not args.pickled_pipes,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description="NMCDR reproduction experiments")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("stats", help="print Table-I style statistics for all scenarios")

    overlap = subparsers.add_parser("overlap", help="overlap-ratio sweep (Tables II-V)")
    _add_common_arguments(overlap)
    overlap.add_argument("--ratios", nargs="+", type=float, default=[0.1, 0.5, 0.9])

    density = subparsers.add_parser("density", help="data-density sweep (Table VI)")
    _add_common_arguments(density)
    density.add_argument("--ratios", nargs="+", type=float, default=[0.5, 1.0])
    density.add_argument("--overlap-ratio", type=float, default=0.5)

    ablation = subparsers.add_parser("ablation", help="component ablation (Table IX)")
    _add_common_arguments(ablation)
    ablation.add_argument("--overlap-ratio", type=float, default=0.5)

    neighbors = subparsers.add_parser("neighbors", help="matching-neighbour sweep (Fig. 3)")
    _add_common_arguments(neighbors)
    neighbors.add_argument("--values", nargs="+", type=int, default=[8, 32, 128])

    threshold = subparsers.add_parser("threshold", help="head/tail threshold sweep (Fig. 4)")
    _add_common_arguments(threshold)
    threshold.add_argument("--values", nargs="+", type=int, default=[3, 7, 11])

    online = subparsers.add_parser("online-ab", help="simulated online A/B test (Table VIII)")
    online.add_argument("--impressions", type=int, default=1500)
    online.add_argument("--epochs", type=int, default=10)
    online.add_argument("--embedding-dim", type=int, default=32)
    online.add_argument("--seed", type=int, default=11)
    online.add_argument(
        "--groups", nargs="+", default=["Control", "PLE", "DML", "NMCDR"],
        help="serving groups to simulate",
    )

    efficiency = subparsers.add_parser("efficiency", help="parameter/time accounting (Sec. III.B.6)")
    _add_common_arguments(efficiency)

    profile = subparsers.add_parser(
        "profile", help="per-phase and per-op cost breakdown of the training hot path"
    )
    _add_common_arguments(profile)
    profile.add_argument(
        "--profile-model", default="NMCDR", help="model to profile (any registry name)"
    )
    profile.add_argument("--batches", type=int, default=20, help="training steps to profile")
    profile.add_argument(
        "--no-instrument",
        action="store_true",
        help="skip per-op forward timing (lower overhead, phases/backward only)",
    )
    profile.add_argument(
        "--dtype",
        choices=("float64", "float32"),
        default="float64",
        help="engine dtype for the profiled run",
    )
    profile.add_argument(
        "--prefetch",
        type=int,
        default=0,
        help="background batch prefetch depth (0 = serial pipeline)",
    )
    profile.add_argument(
        "--sampled",
        action="store_true",
        help="profile sampled-subgraph training (adds the plan/build phase)",
    )
    profile.add_argument(
        "--scheduled-plans",
        action="store_true",
        help="with --sampled: build plans through the incremental schedule",
    )
    _add_execution_arguments(profile)

    train = subparsers.add_parser(
        "train",
        help="one fault-tolerant training run with checkpointing (resumable)",
    )
    train.add_argument("--scenario", default="cloth_sport", choices=SCENARIO_NAMES)
    train.add_argument("--scale", type=float, default=0.6, help="dataset scale factor")
    train.add_argument("--epochs", type=int, default=12)
    train.add_argument("--negatives", type=int, default=99)
    train.add_argument("--embedding-dim", type=int, default=32)
    train.add_argument("--seed", type=int, default=7)
    train.add_argument("--batch-size", type=int, default=256)
    train.add_argument("--eval-every", type=int, default=1)
    train.add_argument("--train-model", default="NMCDR", help="model registry name")
    _add_execution_arguments(train)
    train.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="directory for checkpoints + run.json provenance (enables `repro resume`)",
    )
    train.add_argument("--checkpoint-every", type=int, default=1, help="epochs between checkpoints")
    train.add_argument(
        "--checkpoint-every-steps", type=int, default=0, help="steps between checkpoints (0 = off)"
    )
    train.add_argument(
        "--checkpoint-keep", type=int, default=3, help="retained checkpoints (0 = all)"
    )
    train.add_argument(
        "--worker-max-retries",
        type=int,
        default=0,
        help="respawn attempts per step before a dead/hung shard worker is fatal",
    )
    train.add_argument("--worker-retry-backoff", type=float, default=0.05)
    train.add_argument("--worker-step-timeout", type=float, default=600.0)
    train.add_argument(
        "--degrade-on-failure",
        action="store_true",
        help="after exhausted retries, rebuild at fewer shards instead of raising",
    )
    train.add_argument(
        "--faults",
        default=None,
        help="fault-injection spec string (REPRO_FAULTS grammar) for recovery drills",
    )

    resume = subparsers.add_parser(
        "resume",
        help="resume a killed `repro train` run from its newest checkpoint",
    )
    resume.add_argument(
        "--checkpoint-dir",
        type=Path,
        required=True,
        help="the directory `repro train --checkpoint-dir` wrote into",
    )
    resume.add_argument(
        "--from-checkpoint",
        type=Path,
        default=None,
        help="resume from this specific checkpoint file instead of the newest",
    )

    serve = subparsers.add_parser(
        "serve",
        help="answer top-K scoring requests from a trained checkpoint",
    )
    serve.add_argument(
        "--checkpoint-dir",
        type=Path,
        required=True,
        help="the directory `repro train --checkpoint-dir` wrote into",
    )
    serve.add_argument(
        "--from-checkpoint",
        type=Path,
        default=None,
        help="serve this specific checkpoint file instead of the newest",
    )
    serve.add_argument(
        "--requests",
        type=Path,
        default=None,
        help=(
            "JSONL request file for one-shot serving; omit to read a "
            "long-lived request loop from stdin"
        ),
    )
    serve.add_argument("--topk", type=int, default=10, help="default slate size")
    serve.add_argument(
        "--max-staleness",
        type=int,
        default=0,
        help="parameter updates the store may lag before reads raise",
    )
    serve.add_argument(
        "--micro-batch-size",
        type=int,
        default=8192,
        help="(user, item) pairs per prediction-head invocation",
    )
    serve.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        help="also persist the built representation store into this directory",
    )
    serve.add_argument(
        "--final-params",
        action="store_true",
        help="serve the checkpoint's final parameters instead of the best state",
    )
    serve.add_argument(
        "--verify",
        action="store_true",
        help=(
            "recompute every response against full-model rescoring and fail "
            "on any divergence (the CI exactness smoke)"
        ),
    )
    serve.add_argument(
        "--watch",
        action="store_true",
        help=(
            "poll the checkpoint directory between requests and hot-swap "
            "newer checkpoints after validate-then-swap"
        ),
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help=(
            "default per-request deadline in milliseconds; expired requests "
            "answer with a typed deadline_exceeded error"
        ),
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help=(
            "bounded admission queue size; requests beyond it are shed with "
            "a typed overload error instead of queueing unboundedly"
        ),
    )
    serve.add_argument(
        "--hard-staleness",
        type=int,
        default=None,
        help=(
            "staleness lag (parameter updates) up to which requests are "
            "served from the matching-module cold path; beyond it requests "
            "answer with a typed unavailable error"
        ),
    )
    serve.add_argument(
        "--health",
        action="store_true",
        help="print the ServeHealth snapshot (JSON) to stderr at exit",
    )
    serve.add_argument(
        "--strict",
        action="store_true",
        help=(
            "fail the process on the first malformed line or request error "
            "instead of answering with a typed error response"
        ),
    )

    return parser


def _csv_path(args: argparse.Namespace, name: str) -> Optional[Path]:
    if getattr(args, "output", None) is None:
        return None
    return Path(args.output) / f"{name}.csv"


def _command_stats(_: argparse.Namespace) -> str:
    stats = [scenario_statistics(load_scenario(name, scale=0.6)) for name in SCENARIO_NAMES]
    return format_statistics_table(stats)


def _command_overlap(args: argparse.Namespace) -> str:
    sweep = run_overlap_sweep(
        args.scenario,
        model_names=args.models,
        overlap_ratios=args.ratios,
        settings=_settings_from_args(args),
    )
    overlap_sweep_to_csv(sweep, _csv_path(args, f"overlap_{args.scenario}"))
    parts = [sweep.format_table("a"), "", sweep.format_table("b")]
    for key in ("a", "b"):
        parts.append(
            f"domain {key}: NMCDR win fraction {sweep.nmcdr_win_fraction(key):.2f}, "
            f"mean improvement {sweep.mean_improvement(key):.1f}%"
        )
    return "\n".join(parts)


def _command_density(args: argparse.Namespace) -> str:
    sweep = run_density_sweep(
        args.scenario,
        model_names=args.models,
        density_ratios=args.ratios,
        overlap_ratio=args.overlap_ratio,
        settings=_settings_from_args(args),
    )
    density_sweep_to_csv(sweep, _csv_path(args, f"density_{args.scenario}"))
    return "\n\n".join([sweep.format_table("a"), sweep.format_table("b")])


def _command_ablation(args: argparse.Namespace) -> str:
    ablation = run_ablation(
        args.scenario,
        overlap_ratio=args.overlap_ratio,
        settings=_settings_from_args(args),
        model_names=ABLATION_MODEL_NAMES,
    )
    return "\n\n".join([ablation.format_table("a"), ablation.format_table("b")])


def _command_neighbors(args: argparse.Namespace) -> str:
    sweep = run_matching_neighbors_sweep(
        args.scenario, neighbor_counts=args.values, settings=_settings_from_args(args)
    )
    hyperparameter_sweep_to_csv(sweep, _csv_path(args, f"fig3_{args.scenario}"))
    return sweep.format_table()


def _command_threshold(args: argparse.Namespace) -> str:
    sweep = run_head_threshold_sweep(
        args.scenario, thresholds=args.values, settings=_settings_from_args(args)
    )
    hyperparameter_sweep_to_csv(sweep, _csv_path(args, f"fig4_{args.scenario}"))
    return sweep.format_table()


def _command_online_ab(args: argparse.Namespace) -> str:
    result = run_online_ab(
        groups=tuple(args.groups),
        domain_specs=(
            OnlineDomainSpec("Loan", 300, 50, base_cvr=0.105),
            OnlineDomainSpec("Fund", 200, 40, base_cvr=0.061),
        ),
        impressions_per_domain=args.impressions,
        num_epochs=args.epochs,
        embedding_dim=args.embedding_dim,
        seed=args.seed,
    )
    return result.format_table()


def _command_efficiency(args: argparse.Namespace) -> str:
    settings = _settings_from_args(args)
    settings = ExperimentSettings(**{**settings.__dict__, "overlap_ratio": 0.5})
    dataset = prepare_dataset(settings)
    task = build_task(dataset, head_threshold=settings.head_threshold)
    lines = [f"{'model':<12}{'parameters':>14}{'train s/batch':>16}{'test s/batch':>15}"]
    for name in args.models:
        model = build_model(name, task, embedding_dim=settings.embedding_dim, seed=settings.seed)
        report = measure_efficiency(model, task, batch_size=settings.batch_size)
        lines.append(
            f"{name:<12}{report.num_parameters:>14}"
            f"{report.train_seconds_per_batch:>16.5f}{report.test_seconds_per_batch:>15.5f}"
        )
    return "\n".join(lines)


def _command_profile(args: argparse.Namespace) -> str:
    """Per-stage (data/plan/step) and per-op breakdown through the engine.

    The profiled loop is the real staged engine — DataPipeline (serial or
    prefetched) → plan provider (per-step or scheduled) → StepExecutor — so
    the scope rows mirror production phase structure: ``data/wait``,
    ``plan/build`` (sampled mode), ``train/forward`` / ``train/backward`` /
    ``train/optimizer``.
    """
    from .core import CDRTrainer, TrainerConfig
    from .profiling import profile as profile_context, profiler
    from .tensor import engine

    settings = _settings_from_args(args)
    settings = ExperimentSettings(**{**settings.__dict__, "overlap_ratio": 0.5})
    dataset = prepare_dataset(settings)
    task = build_task(dataset, head_threshold=settings.head_threshold)

    with engine.engine_dtype(args.dtype):
        model = build_model(
            args.profile_model, task, embedding_dim=settings.embedding_dim, seed=settings.seed
        )
        config = TrainerConfig(
            # Enough epochs to cover the requested step count; the engine
            # stops exactly at max_steps.
            num_epochs=max(1, args.batches),
            batch_size=settings.batch_size,
            learning_rate=1e-3,
            eval_every=0,
            seed=settings.seed,
            prefetch_epochs=args.prefetch,
            sampled_subgraph_training=args.sampled,
            scheduled_subgraph_plans=args.scheduled_plans,
            **_execution_config_fields(args),
        )
        trainer = CDRTrainer(model, task, config)
        training_engine = trainer.build_engine()
        pipeline = training_engine.build_pipeline(trainer._loaders)
        with profile_context(instrument=not args.no_instrument):
            history = training_engine.fit(pipeline, max_steps=args.batches)
        executor_note = (
            f", executor=sharded(n_shards={args.shards}"
            f"{', pool-sharded' if args.pool_sharding else ''})"
            if args.executor == "sharded"
            else ""
        )
        header = (
            f"profiled {args.profile_model} for {history.num_batches} training steps "
            f"(dtype={args.dtype}, batch_size={settings.batch_size}, "
            f"prefetch={args.prefetch}, sampled={args.sampled}, "
            f"scheduled_plans={args.scheduled_plans}, traced={args.traced}, "
            f"shm_exchange={not args.pickled_pipes}{executor_note})"
        )
        phases = (
            f"phase totals: data wait {history.data_wait_seconds_total * 1e3:.1f} ms | "
            f"data prep {history.data_prep_seconds_total * 1e3:.1f} ms | "
            f"step {history.step_seconds_total * 1e3:.1f} ms"
        )
        return header + "\n" + phases + "\n\n" + profiler.report()


def _training_from_run(run: dict):
    """Rebuild the exact trainer a ``run.json`` describes.

    Shared by ``train`` (which authors the dict) and ``resume`` (which reads
    it back); the dataset/task/model themselves come from the same
    :func:`repro.serve.build_run_components` resolver ``repro serve`` uses,
    so all three commands reconstruct the identical architecture and the
    checkpoint's config fingerprint double-checks the match.
    """
    from .core import CDRTrainer, TrainerConfig
    from .serve import build_run_components

    model, task, _settings = build_run_components(run)
    return CDRTrainer(model, task, TrainerConfig(**run["trainer"]))


def _format_training_summary(history, resumed: bool = False) -> str:
    lines = []
    if resumed and history.resumed_from:
        lines.append(f"resumed from {history.resumed_from}")
    lines.append(
        f"trained {len(history.epoch_losses)} epochs; "
        f"final loss {history.epoch_losses[-1]:.6f}"
        if history.epoch_losses
        else "nothing left to train (checkpoint already covers the run)"
    )
    if history.validation_metrics:
        final = history.validation_metrics[-1]
        for domain, metrics in final.items():
            formatted = ", ".join(f"{k}={v:.4f}" for k, v in metrics.items())
            lines.append(f"valid [{domain}]: {formatted}")
    if history.checkpoints_written:
        lines.append(
            f"checkpoints written: {history.checkpoints_written} "
            f"(latest: {history.last_checkpoint})"
        )
    recovery = {
        "worker deaths": history.worker_deaths,
        "worker timeouts": history.worker_timeouts,
        "respawns": history.worker_respawns,
        "degradations": history.executor_degradations,
    }
    if any(recovery.values()):
        lines.append(
            "recovery events: "
            + ", ".join(f"{name} {count}" for name, count in recovery.items() if count)
        )
    return "\n".join(lines)


def _command_train(args: argparse.Namespace) -> str:
    run = {
        "model": args.train_model,
        "settings": {
            "scenario": args.scenario,
            "scale": args.scale,
            "overlap_ratio": 0.5,
            "embedding_dim": args.embedding_dim,
            "num_epochs": args.epochs,
            "batch_size": args.batch_size,
            "num_eval_negatives": args.negatives,
            "seed": args.seed,
        },
        "trainer": {
            "num_epochs": args.epochs,
            "batch_size": args.batch_size,
            "num_eval_negatives": args.negatives,
            "eval_every": args.eval_every,
            "seed": args.seed,
            **_execution_config_fields(args),
            "checkpoint_dir": str(args.checkpoint_dir) if args.checkpoint_dir else None,
            "checkpoint_every": args.checkpoint_every,
            "checkpoint_every_steps": args.checkpoint_every_steps,
            "checkpoint_keep": args.checkpoint_keep,
            "worker_max_retries": args.worker_max_retries,
            "worker_retry_backoff": args.worker_retry_backoff,
            "worker_step_timeout": args.worker_step_timeout,
            "degrade_on_failure": args.degrade_on_failure,
        },
    }
    if args.faults:
        from .core import faults

        faults.load_env(args.faults)
    trainer = _training_from_run(run)
    if args.checkpoint_dir is not None:
        # Written before training starts so even a killed run can resume.
        directory = Path(args.checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "run.json").write_text(json.dumps(run, indent=2) + "\n")
    history = trainer.fit()
    return _format_training_summary(history)


def _command_resume(args: argparse.Namespace) -> str:
    directory = Path(args.checkpoint_dir)
    run_file = directory / "run.json"
    if not run_file.exists():
        raise SystemExit(
            f"no run.json in {directory}; start the run with "
            "`repro train --checkpoint-dir` to make it resumable"
        )
    run = json.loads(run_file.read_text())
    trainer = _training_from_run(run)
    source = args.from_checkpoint if args.from_checkpoint is not None else directory
    history = trainer.fit(resume_from=str(source))
    return _format_training_summary(history, resumed=True)


def _command_serve(args: argparse.Namespace) -> str:
    """Answer JSONL top-K requests from a checkpoint; see ``repro.serve``.

    Responses stream to stdout as they are produced (one JSON object per
    line) in both modes — the one-shot ``--requests`` file and the
    long-lived stdin loop; the closing summary goes to stderr so the
    response stream stays machine-parseable.
    """
    import sys

    from .serve import HotReloader, ServeSession

    session = ServeSession.from_checkpoint_dir(
        args.checkpoint_dir,
        checkpoint=args.from_checkpoint,
        max_staleness=args.max_staleness,
        micro_batch_size=args.micro_batch_size,
        use_best=not args.final_params,
        queue_limit=args.queue_limit,
        default_deadline_ms=args.deadline_ms,
        hard_staleness=args.hard_staleness,
    )
    reloader = (
        HotReloader(session, use_best=not args.final_params)
        if args.watch
        else None
    )
    if args.store_dir is not None and session.scorer.store is not None:
        session.scorer.store.save(args.store_dir)
    if args.requests is not None:
        lines = Path(args.requests).read_text().splitlines()
    else:
        lines = sys.stdin
    for response_line in session.serve_lines(
        lines,
        default_k=args.topk,
        verify=args.verify,
        robust=not args.strict,
        reloader=reloader,
    ):
        print(response_line, flush=True)
    print(session.summary(), file=sys.stderr)
    if args.health:
        print(json.dumps(session.health.snapshot()), file=sys.stderr)
    return ""


_COMMANDS = {
    "stats": _command_stats,
    "overlap": _command_overlap,
    "density": _command_density,
    "ablation": _command_ablation,
    "neighbors": _command_neighbors,
    "threshold": _command_threshold,
    "online-ab": _command_online_ab,
    "efficiency": _command_efficiency,
    "profile": _command_profile,
    "train": _command_train,
    "resume": _command_resume,
    "serve": _command_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    output = _COMMANDS[args.command](args)
    if output:
        print(output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
