"""Heterogeneous graph encoder (Section II.C).

Models the direct user–item interactions of one domain by message passing on
the bipartite graph.  The default kernel is the paper's vanilla GNN (Eq. 2–4);
GCN and GAT kernels can be swapped in via the config, matching the remark
below Eq. 3.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graph import InteractionGraph, kernel_by_name
from ..nn import Module, ModuleList
from ..tensor import Tensor

__all__ = ["HeterogeneousGraphEncoder"]


class HeterogeneousGraphEncoder(Module):
    """Stack of bipartite GNN layers producing ``u_g1`` and item representations.

    Parameters
    ----------
    embedding_dim:
        Input dimension of the user/item look-up embeddings.
    hidden_dim:
        Output dimension ``D_hge`` of each propagation layer.
    num_layers:
        Number of stacked propagation layers.
    kernel:
        Name of the message-mapping kernel: ``"vanilla"``, ``"gcn"`` or ``"gat"``.
    """

    def __init__(
        self,
        embedding_dim: int,
        hidden_dim: int,
        num_layers: int = 1,
        kernel: str = "vanilla",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.embedding_dim = int(embedding_dim)
        self.hidden_dim = int(hidden_dim)
        self.num_layers = int(num_layers)
        layers = []
        in_dim = embedding_dim
        for _ in range(num_layers):
            layers.append(kernel_by_name(kernel, in_dim, hidden_dim, rng=rng))
            in_dim = hidden_dim
        self.layers = ModuleList(layers)

    def forward(
        self,
        graph: InteractionGraph,
        user_embeddings: Tensor,
        item_embeddings: Tensor,
    ) -> Tuple[Tensor, Tensor]:
        """Return the encoded ``(user, item)`` representations ``(u_g1, v_g1)``."""
        users, items = user_embeddings, item_embeddings
        for layer in self.layers:
            users, items = layer(graph, users, items)
        return users, items
