"""Prediction layer (Section II.F).

Eq. 20: the affinity of a user–item pair is a sigmoid over stacked MLPs fed
with the concatenation of the user and item representations.  The same head
is shared by the companion objectives of every stage (Section II.G), which is
why it is factored out as its own module.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import MLP, Module
from ..tensor import Tensor, ops

__all__ = ["PredictionHead"]


class PredictionHead(Module):
    """Shared MLP scoring head producing interaction probabilities.

    Implementation note: besides the concatenation ``u || v`` of Eq. 20 the
    MLP input optionally includes the element-wise product ``u ⊙ v``
    (``interaction_feature=True``, the default).  On the paper's full-scale
    datasets a deep MLP has enough data to discover multiplicative
    interactions on its own; at the reproduction's reduced scale exposing the
    product explicitly is needed for the head to converge within a few epochs.
    The ablation benches keep the same head for every NMCDR variant, so
    component comparisons are unaffected.
    """

    def __init__(
        self,
        user_dim: int,
        item_dim: int,
        hidden_sizes: Sequence[int] = (32,),
        dropout: float = 0.0,
        interaction_feature: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.user_dim = int(user_dim)
        self.item_dim = int(item_dim)
        self.interaction_feature = bool(interaction_feature) and user_dim == item_dim
        input_dim = user_dim + item_dim + (user_dim if self.interaction_feature else 0)
        sizes = [input_dim, *[int(h) for h in hidden_sizes], 1]
        self.mlp = MLP(sizes, activation="relu", dropout=dropout, rng=rng)

    def logits(self, user_repr: Tensor, item_repr: Tensor) -> Tensor:
        """Raw (pre-sigmoid) scores for aligned user/item representation rows."""
        if user_repr.shape[0] != item_repr.shape[0]:
            raise ValueError(
                "user and item representation batches must be aligned, got "
                f"{user_repr.shape[0]} and {item_repr.shape[0]} rows"
            )
        if user_repr.shape == item_repr.shape:
            joined = ops.pair_feature_concat(
                user_repr, item_repr, interaction=self.interaction_feature
            )
        else:
            joined = ops.concat([user_repr, item_repr], axis=1)
        return self.mlp(joined)

    def forward(self, user_repr: Tensor, item_repr: Tensor) -> Tensor:
        """Interaction probabilities ``ŷ`` of Eq. 20."""
        return ops.sigmoid(self.logits(user_repr, item_repr))
