"""Ablation variants of NMCDR (Table IX of the paper).

* ``w/o-Igm`` — intra node matching removed.
* ``w/o-Cgm`` — inter node matching removed.
* ``w/o-Inc`` — intra node complementing removed.
* ``w/o-Sup`` — companion supervision signals removed (final losses only).
"""

from __future__ import annotations

from typing import Dict, Optional

from .config import NMCDRConfig
from .nmcdr import NMCDR
from .task import CDRTask

__all__ = ["VARIANT_NAMES", "variant_config", "build_variant"]

VARIANT_NAMES = ("full", "w/o-Igm", "w/o-Cgm", "w/o-Inc", "w/o-Sup")

_VARIANT_OVERRIDES: Dict[str, Dict[str, bool]] = {
    "full": {},
    "w/o-Igm": {"use_intra_matching": False},
    "w/o-Cgm": {"use_inter_matching": False},
    "w/o-Inc": {"use_complementing": False},
    "w/o-Sup": {"use_companion": False},
}


def variant_config(name: str, base: Optional[NMCDRConfig] = None) -> NMCDRConfig:
    """Return the configuration of the named ablation variant."""
    base = base or NMCDRConfig()
    if name not in _VARIANT_OVERRIDES:
        raise KeyError(f"unknown variant '{name}'; known: {VARIANT_NAMES}")
    return base.variant(**_VARIANT_OVERRIDES[name])


def build_variant(
    name: str,
    task: CDRTask,
    base: Optional[NMCDRConfig] = None,
) -> NMCDR:
    """Instantiate the named ablation variant for a task."""
    return NMCDR(task, variant_config(name, base))
