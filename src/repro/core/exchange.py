"""Zero-copy shared-memory exchange plane for the sharded executors.

The pool-sharded protocol's steady-state data plane — dispatch index sets,
per-domain activation tables, summed table gradients and raw loss terms —
previously crossed worker pipes as pickled payloads (``O(pool × D)`` per
shard per step).  This module moves every one of those payloads into
pre-allocated, double-buffered POSIX shared-memory *regions*; pipes carry
only tiny control headers.  The layout is an explicit message format — the
single-host rehearsal of a future multi-host wire protocol.

Region model
------------

* The **parent** owns every region (:class:`ExchangePlane`): one dispatch
  region per shard (``p2w{i}``), one reply region per shard (``w2p{i}``),
  one broadcast region (``bcast``, packed once per step for all shards), and
  two table regions (``tables`` for gathered encoder activations, ``summed``
  for the reduced table gradients — kept separate so a respawn replay
  mid-scatter still sees intact activations).
* Each region is **double-buffered**: a segment holds two equal *slots* and
  a step uses slot ``step % 2``, so a reader of step *s* is never raced by
  the writer of step *s+1*.
* Regions are **generation-counted**: growing a region allocates a fresh
  segment (new name, ``generation + 1``) and unlinks the old one
  immediately — POSIX unlink removes the name, not the memory, so workers
  still mapping the old generation keep reading it safely and re-attach
  lazily when a header names the new segment.  All parent-side regrows
  happen at step *begin* (before any message of the step is sent), so the
  supervisor's respawn-replay log never references a replaced segment.
* **Workers** (:class:`ExchangeClient`) attach segments by name from the
  headers, cache the mapping per region, and never create or unlink
  anything.  A worker-side reply overflow falls back to sending the payload
  pickled over the pipe and piggybacks a grow request; the parent regrows
  the region at the next step begin, returning the steady state to zero
  pickled data-plane bytes.

Wire format
-----------

A data-plane header replacing a pickled payload is the tuple::

    ("shm", (region_id, segment_name, generation, slot_bytes),
     slot, skeleton, meta)

where ``skeleton`` is the payload's container tree with every ndarray
replaced by an index, and ``meta[i] = (shape, dtype_str, offset)`` locates
array ``i`` inside the slot (offsets are 64-byte aligned, relative to the
slot start).  The fallback form is ``("pipe", payload)`` with the payload
pickled as before.  Activation tables and summed gradients need no header
at all: both sides derive ``(capacity_rows, dim)`` views from the table
layout carried in the step's dispatch envelope, and the gather/scatter
rounds shrink to bare barrier tags.

The skeleton supports dicts, lists, tuples, dataclasses (rebuilt as the
same class) and opaque leaves (scalars, strings, ``None`` — anything
non-array rides the pipe inside the header, which is what keeps the header
a *control* message).
"""

from __future__ import annotations

import itertools
import os
import time
import weakref
from dataclasses import fields as dataclass_fields
from dataclasses import is_dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "ExchangeOverflow",
    "CommsStats",
    "ExchangePlane",
    "ExchangeClient",
    "tree_array_bytes",
    "SHM_HEADER",
    "PIPE_HEADER",
]

#: Alignment of every packed array (cache-line sized, like ``_SharedBlock``).
_ALIGN = 64

#: Header kind tags of the data-plane wire format.
SHM_HEADER = "shm"
PIPE_HEADER = "pipe"

#: Monotonic suffix keeping this process's segment names unique.
_region_counter = itertools.count()


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _release_shm(shm: shared_memory.SharedMemory, creator_pid: int) -> None:
    """Close (best-effort) and unlink one shm segment; creator-only unlink.

    Runs from ``weakref.finalize`` — at explicit release, at garbage
    collection, or at interpreter exit — and must therefore tolerate every
    ordering: ``close()`` may raise ``BufferError`` while numpy views are
    still exported (the segment is unlinked regardless; the mapping lives
    until process death), and forked children inherit the finalizer but
    must never unlink the parent's segment.
    """
    try:
        shm.close()
    except BufferError:
        # Numpy views still alias the mapping.  The exported buffers keep
        # the underlying mmap object alive, so the mapping survives until
        # the views die — but detach it from the SharedMemory handle so
        # its ``__del__`` does not retry the close and emit an unraisable
        # BufferError at garbage collection; the retried close() below
        # then just releases the file descriptor.
        shm._buf = None
        shm._mmap = None
        try:
            shm.close()
        except OSError:  # pragma: no cover — fd already gone
            pass
    if os.getpid() == creator_pid:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class ExchangeOverflow(RuntimeError):
    """A payload does not fit the region's current slot capacity."""

    def __init__(self, region_id: str, needed: int, capacity: int) -> None:
        super().__init__(
            f"exchange region '{region_id}' overflow: need {needed} bytes, "
            f"slot capacity {capacity}"
        )
        self.region_id = region_id
        self.needed = int(needed)
        self.capacity = int(capacity)


# ----------------------------------------------------------------------
# payload tree <-> (skeleton, arrays)
# ----------------------------------------------------------------------
def _flatten(tree, arrays: List[np.ndarray]):
    """Skeleton of ``tree`` with every ndarray pulled out into ``arrays``."""
    if isinstance(tree, np.ndarray):
        if tree.dtype.hasobject:  # pragma: no cover — no object arrays in the protocol
            return ("o", tree)
        arrays.append(tree)
        return ("a", len(arrays) - 1)
    if isinstance(tree, dict):
        return ("d", [(key, _flatten(value, arrays)) for key, value in tree.items()])
    if isinstance(tree, tuple):
        return ("t", [_flatten(value, arrays) for value in tree])
    if isinstance(tree, list):
        return ("l", [_flatten(value, arrays) for value in tree])
    if is_dataclass(tree) and not isinstance(tree, type):
        return (
            "c",
            type(tree),
            [
                (f.name, _flatten(getattr(tree, f.name), arrays))
                for f in dataclass_fields(tree)
                if f.init
            ],
        )
    return ("o", tree)


def _rebuild(skeleton, resolve):
    """Inverse of :func:`_flatten`; ``resolve(index)`` materialises arrays."""
    kind = skeleton[0]
    if kind == "a":
        return resolve(skeleton[1])
    if kind == "o":
        return skeleton[1]
    if kind == "d":
        return {key: _rebuild(child, resolve) for key, child in skeleton[1]}
    if kind == "t":
        return tuple(_rebuild(child, resolve) for child in skeleton[1])
    if kind == "l":
        return [_rebuild(child, resolve) for child in skeleton[1]]
    if kind == "c":
        return skeleton[1](
            **{name: _rebuild(child, resolve) for name, child in skeleton[2]}
        )
    raise ValueError(f"unknown skeleton node kind '{kind}'")  # pragma: no cover


def tree_array_bytes(tree) -> int:
    """Total ndarray payload bytes in a container tree (legacy-path metering)."""
    arrays: List[np.ndarray] = []
    _flatten(tree, arrays)
    return int(sum(array.nbytes for array in arrays))


def _required_bytes(arrays, cursor: int) -> int:
    for array in arrays:
        cursor = _aligned(cursor) + array.nbytes
    return cursor


def _read_arrays(buf, base_offset: int, skeleton, meta, copy: bool):
    """Rebuild a payload from a slot; views by default, copies on request."""
    total = 0

    def resolve(index: int):
        nonlocal total
        shape, dtype_str, offset = meta[index]
        view = np.ndarray(
            shape, dtype=np.dtype(dtype_str), buffer=buf, offset=base_offset + offset
        )
        total += view.nbytes
        return np.array(view, copy=True) if copy else view

    return _rebuild(skeleton, resolve), total


def _inplace_offset(buf_addr: int, slot_start: int, slot_bytes: int, array) -> Optional[int]:
    """Slot-relative offset of an array already living in the slot, else None."""
    if array.nbytes == 0 or not array.flags["C_CONTIGUOUS"]:
        return None
    addr = array.__array_interface__["data"][0]
    lo = buf_addr + slot_start
    if lo <= addr and addr + array.nbytes <= lo + slot_bytes:
        return addr - lo
    return None


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
#: Data-plane rounds of the sharded protocols, in step order.
ROUNDS = ("dispatch", "gather", "broadcast", "loss", "scatter", "finish")


class CommsStats:
    """Per-round byte and serialization/copy-time counters.

    One instance lives on the executor for its whole life (surviving
    degrade-and-reopen cycles) and is surfaced as the profiler's ``comms``
    section.  ``fallback_data_bytes`` is the structural "steady-state
    pickled data-plane bytes" gate: with the plane active it stays 0 unless
    a worker-side reply overflow forced a one-step pipe fallback.
    """

    def __init__(self) -> None:
        self.rounds: Dict[str, Dict[str, float]] = {
            name: {
                "messages": 0,
                "shm_bytes": 0,
                "pipe_bytes": 0,
                "pack_s": 0.0,
                "unpack_s": 0.0,
            }
            for name in ROUNDS
        }
        #: Region regrows (generation bumps), including forced ones.
        self.grows = 0
        #: Regrows injected through the ``exchange_overflow`` fault point.
        self.forced_regrows = 0
        #: Worker replies that overflowed their region and rode the pipe.
        self.pipe_fallbacks = 0
        #: Pickled ndarray bytes that crossed a pipe while the plane was on.
        self.fallback_data_bytes = 0

    def record(
        self,
        round_name: str,
        *,
        messages: int = 1,
        shm_bytes: int = 0,
        pipe_bytes: int = 0,
        pack_s: float = 0.0,
        unpack_s: float = 0.0,
    ) -> None:
        entry = self.rounds[round_name]
        entry["messages"] += messages
        entry["shm_bytes"] += int(shm_bytes)
        entry["pipe_bytes"] += int(pipe_bytes)
        entry["pack_s"] += pack_s
        entry["unpack_s"] += unpack_s

    def total(self, metric: str) -> float:
        return sum(entry[metric] for entry in self.rounds.values())

    def copy_seconds(self) -> float:
        """Total parent-side serialization/copy time across all rounds."""
        return float(self.total("pack_s") + self.total("unpack_s"))

    def as_section(self) -> Dict:
        """Payload for ``profiler.record_section("comms", ...)``."""
        section: Dict = {
            name: dict(entry) for name, entry in self.rounds.items() if entry["messages"]
        }
        section["grows"] = self.grows
        section["forced_regrows"] = self.forced_regrows
        section["pipe_fallbacks"] = self.pipe_fallbacks
        section["fallback_data_bytes"] = self.fallback_data_bytes
        return section


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class _Region:
    """One double-buffered, generation-counted named shm segment."""

    def __init__(self, region_id: str, slot_bytes: int) -> None:
        self.region_id = region_id
        self.generation = 0
        self.shm: Optional[shared_memory.SharedMemory] = None
        self._finalizer = None
        self._allocate(slot_bytes)

    def _allocate(self, slot_bytes: int) -> None:
        slot_bytes = _aligned(max(int(slot_bytes), _ALIGN))
        name = f"repro-xp-{os.getpid()}-{next(_region_counter)}"
        self.shm = shared_memory.SharedMemory(name=name, create=True, size=2 * slot_bytes)
        self.slot_bytes = slot_bytes
        self._finalizer = weakref.finalize(self, _release_shm, self.shm, os.getpid())

    def _release_segment(self) -> None:
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer()  # runs at most once

    def grow(self, needed: int, *, at_least_double: bool = True) -> None:
        """Swap in a bigger segment (new name, next generation).

        The old segment is unlinked immediately: attached workers keep their
        mappings alive until they see the new name in a header — POSIX
        unlink removes the name, not the memory.
        """
        if at_least_double:
            needed = max(int(needed), 2 * self.slot_bytes)
        self._release_segment()
        self.generation += 1
        self._allocate(needed)

    def release(self) -> None:
        self._release_segment()

    def descriptor(self) -> Tuple[str, str, int, int]:
        return (self.region_id, self.shm.name, self.generation, self.slot_bytes)


class ExchangePlane:
    """Parent-side owner of the exchange regions (see module docstring)."""

    def __init__(self, n_shards: int, stats: Optional[CommsStats] = None) -> None:
        self.n_shards = int(n_shards)
        self.stats = stats if stats is not None else CommsStats()
        self.regions: Dict[str, _Region] = {}
        self.slot = 0
        self._cursors: Dict[str, int] = {}
        self._pending_grow: Dict[str, int] = {}
        #: (dtype_str, dim, {key: slot offset}, {key: capacity rows})
        self._table_layout: Optional[Tuple] = None

    # -- lifecycle -----------------------------------------------------
    def open(
        self, *, dispatch_bytes: int = 1 << 15, reply_bytes: int = 1 << 16
    ) -> None:
        if self.regions:
            return
        for shard in range(self.n_shards):
            self.regions[f"p2w{shard}"] = _Region(f"p2w{shard}", dispatch_bytes)
            self.regions[f"w2p{shard}"] = _Region(f"w2p{shard}", reply_bytes)
        self.regions["bcast"] = _Region("bcast", dispatch_bytes)

    def close(self) -> None:
        regions, self.regions = self.regions, {}
        for region in regions.values():
            region.release()
        self._table_layout = None

    # -- per-step control ----------------------------------------------
    def begin_step(
        self,
        step_index: int,
        *,
        reply_bound: Optional[int] = None,
        force_regrow: bool = False,
    ) -> None:
        """Flip the double buffer and apply every pending/forced regrow.

        All parent-side regrows happen here — before any message of the
        step is sent — so the supervisor's respawn-replay log never
        references a segment replaced mid-step.
        """
        self.slot = step_index % 2
        self._cursors = {region_id: 0 for region_id in self.regions}
        if force_regrow:
            for region in self.regions.values():
                region.grow(region.slot_bytes, at_least_double=False)
                self.stats.grows += 1
            self.stats.forced_regrows += 1
        for region_id, needed in self._pending_grow.items():
            region = self.regions.get(region_id)
            if region is not None and needed > region.slot_bytes:
                region.grow(needed)
                self.stats.grows += 1
        self._pending_grow = {}
        if reply_bound is not None:
            for shard in range(self.n_shards):
                region = self.regions[f"w2p{shard}"]
                if reply_bound > region.slot_bytes:
                    region.grow(reply_bound)
                    self.stats.grows += 1

    def request_grow(self, requests: Optional[Dict[str, int]]) -> None:
        """Note worker grow requests; honored at the next :meth:`begin_step`."""
        if not requests:
            return
        for region_id, needed in requests.items():
            current = self._pending_grow.get(region_id, 0)
            self._pending_grow[region_id] = max(current, int(needed))

    # -- generic payload pack/unpack -----------------------------------
    def pack(self, region_id: str, payload, round_name: str):
        """Pack a payload into the region's current slot; return its header.

        Parent-owned regions pack at most once per step (cursor 0), so an
        overflow here is resolved by growing in place — the header the
        workers will see names the fresh segment.
        """
        started = time.perf_counter()
        region = self.regions[region_id]
        arrays: List[np.ndarray] = []
        skeleton = _flatten(payload, arrays)
        cursor = self._cursors[region_id]
        needed = _required_bytes(arrays, cursor)
        if needed > region.slot_bytes:
            if cursor:  # pragma: no cover — parent regions pack once per step
                raise ExchangeOverflow(region_id, needed, region.slot_bytes)
            region.grow(needed)
            self.stats.grows += 1
        slot_start = self.slot * region.slot_bytes
        meta = []
        shm_bytes = 0
        for array in arrays:
            cursor = _aligned(cursor)
            if array.nbytes:
                dest = np.ndarray(
                    array.shape,
                    dtype=array.dtype,
                    buffer=region.shm.buf,
                    offset=slot_start + cursor,
                )
                dest[...] = array
            meta.append((array.shape, array.dtype.str, cursor))
            cursor += array.nbytes
            shm_bytes += array.nbytes
        self._cursors[region_id] = cursor
        self.stats.record(
            round_name, shm_bytes=shm_bytes, pack_s=time.perf_counter() - started
        )
        return (SHM_HEADER, region.descriptor(), self.slot, skeleton, meta)

    def unpack(self, header, round_name: str, *, copy: bool = False):
        """Payload of a worker reply header (shm views, or the pipe fallback)."""
        started = time.perf_counter()
        if header[0] == PIPE_HEADER:
            payload = header[1]
            nbytes = tree_array_bytes(payload)
            self.stats.pipe_fallbacks += 1
            self.stats.fallback_data_bytes += nbytes
            self.stats.record(
                round_name, pipe_bytes=nbytes, unpack_s=time.perf_counter() - started
            )
            return payload
        _, descriptor, slot, skeleton, meta = header
        region = self.regions[descriptor[0]]
        payload, nbytes = _read_arrays(
            region.shm.buf, slot * region.slot_bytes, skeleton, meta, copy
        )
        self.stats.record(
            round_name, shm_bytes=nbytes, unpack_s=time.perf_counter() - started
        )
        return payload

    # -- activation / summed-gradient tables ---------------------------
    def ensure_tables(
        self,
        sizes: Dict[str, int],
        dim: int,
        dtype_str: str,
        *,
        capacity_hint: Optional[Dict[str, int]] = None,
    ) -> None:
        """(Re)commit the per-domain table layout for this step's exchange.

        Layout: per slot, one ``(capacity_rows, dim)`` array per domain at a
        fixed 64-aligned offset; a step uses the first ``exchange.size``
        rows.  With a capacity hint (the per-domain user-count upper bound)
        the regions are sized once at open — untouched pages stay virtual —
        and a regrow (generation bump) only happens if a step's exchange
        outgrows the committed capacity.
        """
        itemsize = np.dtype(dtype_str).itemsize
        layout = self._table_layout
        if (
            layout is not None
            and layout[0] == dtype_str
            and layout[1] == dim
            and all(sizes.get(key, 0) <= layout[3].get(key, 0) for key in sizes)
        ):
            return
        capacity: Dict[str, int] = {}
        for key in sorted(set(sizes) | set(capacity_hint or {})):
            previous = layout[3].get(key, 0) if layout is not None else 0
            capacity[key] = max(
                sizes.get(key, 0), (capacity_hint or {}).get(key, 0), previous
            )
        offsets: Dict[str, int] = {}
        cursor = 0
        for key in sorted(capacity):
            cursor = _aligned(cursor)
            offsets[key] = cursor
            cursor += capacity[key] * dim * itemsize
        slot_bytes = max(cursor, _ALIGN)
        for region_id in ("tables", "summed"):
            region = self.regions.get(region_id)
            if region is None:
                self.regions[region_id] = _Region(region_id, slot_bytes)
                self._cursors[region_id] = 0
            elif slot_bytes > region.slot_bytes:
                region.grow(slot_bytes, at_least_double=False)
                self.stats.grows += 1
        self._table_layout = (dtype_str, dim, offsets, capacity)

    def tables_env(self) -> Dict:
        """The table layout block of the step's dispatch envelope."""
        dtype_str, dim, offsets, capacity = self._table_layout
        return {
            "tables": self.regions["tables"].descriptor(),
            "summed": self.regions["summed"].descriptor(),
            "dtype": dtype_str,
            "dim": dim,
            "offsets": offsets,
            "capacity": capacity,
        }

    def table_view(self, key: str, rows: int, which: str = "tables") -> np.ndarray:
        """The current slot's ``(rows, dim)`` view of one domain's table."""
        dtype_str, dim, offsets, _ = self._table_layout
        region = self.regions[which]
        return np.ndarray(
            (rows, dim),
            dtype=np.dtype(dtype_str),
            buffer=region.shm.buf,
            offset=self.slot * region.slot_bytes + offsets[key],
        )

    def descriptor(self, region_id: str) -> Tuple[str, str, int, int]:
        return self.regions[region_id].descriptor()


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without touching the resource tracker.

    ``SharedMemory(name=...)`` registers the name on attach (Python <=3.12),
    and forked workers share the parent's tracker process — so the obvious
    attach-then-unregister dance would delete the *creator's* registration
    and make the parent's eventual ``unlink`` KeyError inside the tracker.
    Suppressing the attach-side registration instead keeps the tracker's
    books exactly mirroring ownership: one entry per segment, held by the
    creating parent until it unlinks.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _detach(shm: shared_memory.SharedMemory) -> None:
    """Worker-side close that tolerates still-exported numpy views."""
    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None
        try:
            shm.close()
        except OSError:  # pragma: no cover
            pass


class _Attached:
    """One worker-side mapping of a parent region generation."""

    def __init__(self, descriptor: Tuple[str, str, int, int]) -> None:
        _, name, generation, slot_bytes = descriptor
        self.shm = _attach_untracked(name)
        self.generation = generation
        self.slot_bytes = slot_bytes
        self.addr = np.frombuffer(self.shm.buf, dtype=np.uint8).__array_interface__[
            "data"
        ][0]

    def close(self) -> None:
        _detach(self.shm)


class ExchangeClient:
    """Worker-side view of the exchange plane.

    Attaches parent segments lazily by name (cached per region, re-attached
    when a header names a new generation), unpacks dispatch payloads, packs
    replies into this shard's reply region, and exposes the per-domain
    activation/summed-gradient table views described by the step envelope.
    """

    def __init__(self) -> None:
        self._attached: Dict[str, _Attached] = {}
        self.slot = 0
        self._reply: Optional[Tuple[str, str, int, int]] = None
        self._reply_cursor = 0
        self._tables_env: Optional[Dict] = None
        self.grow_request: Dict[str, int] = {}

    def attach(self, descriptor: Tuple[str, str, int, int]) -> _Attached:
        region_id, name = descriptor[0], descriptor[1]
        cached = self._attached.get(region_id)
        if cached is None or cached.shm.name != name:
            if cached is not None:
                cached.close()
            cached = _Attached(descriptor)
            self._attached[region_id] = cached
        return cached

    def begin_step(self, env: Dict) -> None:
        self.slot = env["slot"]
        self._reply = env["reply"]
        self._reply_cursor = 0
        self._tables_env = env.get("tables")
        self.grow_request = {}

    def unpack(self, header, *, copy: bool = False):
        if header[0] == PIPE_HEADER:
            return header[1]
        _, descriptor, slot, skeleton, meta = header
        attached = self.attach(descriptor)
        payload, _ = _read_arrays(
            attached.shm.buf, slot * attached.slot_bytes, skeleton, meta, copy
        )
        return payload

    # -- reply packing --------------------------------------------------
    def alloc_reply(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A staging array inside the reply slot (zero-copy on send).

        On overflow, returns a plain heap array instead and notes a grow
        request — the payload then rides the pipe once and the parent
        regrows the region before the next step.
        """
        attached = self.attach(self._reply)
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        cursor = _aligned(self._reply_cursor)
        if cursor + nbytes > attached.slot_bytes:
            self._note_grow(cursor + nbytes)
            return np.empty(shape, dtype=dtype)
        view = np.ndarray(
            shape,
            dtype=dtype,
            buffer=attached.shm.buf,
            offset=self.slot * attached.slot_bytes + cursor,
        )
        self._reply_cursor = cursor + nbytes
        return view

    def pack_reply(self, payload):
        """Header for ``payload`` packed into the reply slot.

        Arrays already staged in the slot (via :meth:`alloc_reply`) are
        referenced in place — no second copy.  Overflow falls back to the
        ``("pipe", payload)`` header plus a grow request.
        """
        attached = self.attach(self._reply)
        arrays: List[np.ndarray] = []
        skeleton = _flatten(payload, arrays)
        slot_start = self.slot * attached.slot_bytes
        meta: List = []
        to_copy: List[int] = []
        for index, array in enumerate(arrays):
            offset = _inplace_offset(
                attached.addr, slot_start, attached.slot_bytes, array
            )
            meta.append((array.shape, array.dtype.str, offset))
            if offset is None:
                to_copy.append(index)
        needed = self._reply_cursor
        for index in to_copy:
            needed = _aligned(needed) + arrays[index].nbytes
        if needed > attached.slot_bytes:
            self._note_grow(needed)
            return (PIPE_HEADER, payload)
        cursor = self._reply_cursor
        for index in to_copy:
            array = arrays[index]
            cursor = _aligned(cursor)
            if array.nbytes:
                dest = np.ndarray(
                    array.shape,
                    dtype=array.dtype,
                    buffer=attached.shm.buf,
                    offset=slot_start + cursor,
                )
                dest[...] = array
            meta[index] = (array.shape, array.dtype.str, cursor)
            cursor += array.nbytes
        self._reply_cursor = cursor
        descriptor = (
            self._reply[0],
            attached.shm.name,
            attached.generation,
            attached.slot_bytes,
        )
        return (SHM_HEADER, descriptor, self.slot, skeleton, meta)

    def _note_grow(self, needed: int) -> None:
        region_id = self._reply[0]
        current = self.grow_request.get(region_id, 0)
        # Request double the miss so repeated near-misses converge quickly.
        self.grow_request[region_id] = max(current, 2 * int(needed))

    def take_grow_request(self) -> Optional[Dict[str, int]]:
        request, self.grow_request = self.grow_request, {}
        return request or None

    # -- table views -----------------------------------------------------
    def table_view(self, key: str, rows: int, which: str = "tables") -> np.ndarray:
        env = self._tables_env
        attached = self.attach(env[which])
        return np.ndarray(
            (rows, env["dim"]),
            dtype=np.dtype(env["dtype"]),
            buffer=attached.shm.buf,
            offset=self.slot * attached.slot_bytes + env["offsets"][key],
        )

    def close(self) -> None:
        attached, self._attached = self._attached, {}
        for mapping in attached.values():
            mapping.close()
