"""Model stability analysis (Section II.H).

The paper derives an upper bound (Eq. 31) on how much a prediction can change
under a perturbation of one user's input embedding:

    ||z_{u,v} - z_{u',v}||_2  <=  C_sf * C_sp^2 * ||W3||_2 *
        ( ||W2_a||_2 ||W1_a||_2 + (sum_{v_j in N_u} 1/n_j) / (N - 1)
          * ||W2_n||_2 ||W1_n||_2 ) * ||x_u - x'_u||_2

with ``C_sf`` and ``C_sp`` the Lipschitz constants of softmax and softplus.
This module computes that theoretical bound from a trained model's weights and
measures the *empirical* prediction deviation under random perturbations, so
the bound can be checked and compared across model variants (e.g. shared vs
separate head/tail transformation matrices — the design choice the analysis
motivates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .nmcdr import NMCDR

__all__ = [
    "StabilityReport",
    "spectral_norm",
    "theoretical_stability_bound",
    "empirical_prediction_deviation",
    "stability_report",
]

#: Lipschitz constant of softmax (w.r.t. the 2-norm) — at most 1.
SOFTMAX_LIPSCHITZ = 1.0
#: Lipschitz constant of softplus — its derivative is a sigmoid, bounded by 1.
SOFTPLUS_LIPSCHITZ = 1.0


def spectral_norm(matrix: np.ndarray) -> float:
    """Largest singular value (the 2-norm used throughout Eq. 28–31)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim == 1:
        return float(np.linalg.norm(matrix))
    return float(np.linalg.norm(matrix, 2))


@dataclass
class StabilityReport:
    """Theoretical bound and empirical deviation statistics for one domain."""

    domain_key: str
    theoretical_bound_coefficient: float
    perturbation_norm: float
    mean_empirical_deviation: float
    max_empirical_deviation: float
    bound_satisfied: bool

    def as_dict(self) -> Dict[str, float]:
        return {
            "domain": self.domain_key,
            "bound_coefficient": self.theoretical_bound_coefficient,
            "perturbation_norm": self.perturbation_norm,
            "mean_deviation": self.mean_empirical_deviation,
            "max_deviation": self.max_empirical_deviation,
            "bound_satisfied": float(self.bound_satisfied),
        }


def theoretical_stability_bound(model: NMCDR, domain_key: str) -> float:
    """Compute the Eq. 31 coefficient from the model's weight matrices.

    The compressed three-layer view of Section II.H maps onto the model as
    follows: ``W1`` — the heterogeneous graph encoder transformations, ``W2``
    — the (head/tail averaged) intra matching transformations, ``W3`` — the
    first prediction-layer weight.  The neighbourhood sum term is evaluated on
    the training graph of the requested domain.
    """
    params = model._params(domain_key)
    graph = model.task.domain(domain_key).train_graph

    encoder_layer = params.encoder.layers[0]
    w1_self = spectral_norm(encoder_layer.user_transform.weight.data)
    w1_neighbor = spectral_norm(encoder_layer.item_transform.weight.data)

    intra_layer = params.intra_layers[0]
    w2_head = spectral_norm(intra_layer.head_transform.weight.data)
    w2_tail = spectral_norm(intra_layer.tail_transform.weight.data)
    # The compressed model of Sec. II.H uses a single pair (W2_a, W2_n); the
    # actual model splits the neighbour matrix per user group, so we take the
    # worst (largest) group norm for a conservative bound.
    w2_self = max(w2_head, w2_tail)
    w2_neighbor = max(w2_head, w2_tail)

    w3 = spectral_norm(params.prediction.mlp.linears[0].weight.data)

    item_degrees = graph.item_degrees()
    inv_item_degrees = np.divide(
        1.0, item_degrees, out=np.zeros_like(item_degrees), where=item_degrees > 0
    )
    # Average over users of sum_{v_j in N_u} 1/n_j  (Eq. 31 is per user; we
    # report the mean so the coefficient summarises the whole domain).
    per_user_sum = np.zeros(graph.num_users)
    np.add.at(per_user_sum, graph.user_indices, inv_item_degrees[graph.item_indices])
    total_nodes = graph.num_users + graph.num_items
    neighbor_term = float(per_user_sum.mean()) / max(total_nodes - 1, 1)

    coefficient = (
        SOFTMAX_LIPSCHITZ
        * SOFTPLUS_LIPSCHITZ ** 2
        * w3
        * (w2_self * w1_self + neighbor_term * w2_neighbor * w1_neighbor)
    )
    return float(coefficient)


def empirical_prediction_deviation(
    model: NMCDR,
    domain_key: str,
    perturbation_scale: float = 0.05,
    num_users: int = 32,
    num_items: int = 16,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, float]:
    """Measure how much scores move when user embeddings are perturbed.

    Randomly perturbs ``num_users`` users' input embeddings by Gaussian noise
    of the given scale, recomputes the cached representations and reports the
    mean/maximum score deviation over ``num_items`` random items per user.
    """
    rng = rng or np.random.default_rng(0)
    params = model._params(domain_key)
    domain_task = model.task.domain(domain_key)

    users = rng.choice(
        domain_task.num_users,
        size=min(num_users, domain_task.num_users),
        replace=False,
    )
    items = rng.choice(
        domain_task.num_items,
        size=min(num_items, domain_task.num_items),
        replace=False,
    )
    pair_users = np.repeat(users, items.size)
    pair_items = np.tile(items, users.size)

    model.prepare_for_evaluation()
    baseline_scores = model.score(domain_key, pair_users, pair_items)

    original = params.user_embedding.weight.data.copy()
    noise = rng.normal(0.0, perturbation_scale, size=(users.size, original.shape[1]))
    try:
        params.user_embedding.weight.data[users] = original[users] + noise
        model.invalidate_cache()
        model.prepare_for_evaluation()
        perturbed_scores = model.score(domain_key, pair_users, pair_items)
    finally:
        params.user_embedding.weight.data = original
        model.invalidate_cache()

    deviations = np.abs(perturbed_scores - baseline_scores)
    perturbation_norms = np.linalg.norm(noise, axis=1)
    return {
        "mean_deviation": float(deviations.mean()),
        "max_deviation": float(deviations.max()),
        "mean_perturbation_norm": float(perturbation_norms.mean()),
    }


def stability_report(
    model: NMCDR,
    domain_key: str,
    perturbation_scale: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> StabilityReport:
    """Bundle the theoretical coefficient and the empirical measurement."""
    coefficient = theoretical_stability_bound(model, domain_key)
    empirical = empirical_prediction_deviation(
        model, domain_key, perturbation_scale=perturbation_scale, rng=rng
    )
    bound_value = coefficient * empirical["mean_perturbation_norm"]
    return StabilityReport(
        domain_key=domain_key,
        theoretical_bound_coefficient=coefficient,
        perturbation_norm=empirical["mean_perturbation_norm"],
        mean_empirical_deviation=empirical["mean_deviation"],
        max_empirical_deviation=empirical["max_deviation"],
        bound_satisfied=bool(empirical["max_deviation"] <= max(bound_value, 1e-12) * 10.0),
    )
