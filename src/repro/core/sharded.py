"""Sharded data-parallel step execution over shared-memory parameters.

:class:`ShardedStepExecutor` replaces the serial :class:`~repro.core.engine.
StepExecutor` without any training-loop changes (the PR-3 swap point): every
joint step is split into per-shard micro-batches (``user_id % n_shards``,
:mod:`repro.data.shard`), each shard worker — a forked process — localises
its micro-batch with the existing :class:`~repro.core.subgraph_plan.
SubgraphPlan` machinery and runs forward/backward on its own core, and the
parent combines the per-shard gradients with a fixed-order all-reduce-style
sum before one in-place Adam update.

Determinism / equivalence design
--------------------------------

The fixed-seed loss and metric stream is kept equivalent to the serial
executor by moving every rng consumer and every floating-point reduction to
a canonical place:

* **Parameters** live in one shared-memory block.  Workers alias their
  model's parameters to views of that block, the parent publishes updated
  values into it before dispatching a step, and the strict
  dispatch → compute → reduce → update lock-step means nobody reads while
  the parent writes.  Every shard therefore computes from bit-identical
  parameters; nothing about worker scheduling can leak into the numerics.
* **Matching pools** (the only rng consumed inside a training forward) are
  drawn once per step *in the parent*, in the exact full-forward order
  (:func:`~repro.core.subgraph_plan.sample_matching_pools`), and shipped to
  every worker.  The parent's sampler stream — and therefore mid-training
  evaluation — stays identical to a serial run, and workers consume no rng
  at all.
* **Losses** are reduced in canonical batch order: workers return the
  *pre-reduction* per-example loss terms, the parent scatters them back
  into the full batch's array layout and applies the same numpy reduction
  the serial executor's fused loss kernel applies.  The reported loss is
  therefore independent of ``n_shards`` given equal parameters.
* **Gradients** are summed shard-by-shard in fixed shard order
  (:func:`~repro.optim.reduce_gradient_shards`); parameters untouched by
  every shard keep ``grad=None`` exactly like the serial executor (the Adam
  moment buffers must not advance for them).

With ``n_shards=1`` the single worker replays the serial computation
verbatim (same graph, same kernels, pools injected by replay), so epoch
losses and validation metrics are bit-identical to the serial executor.
With ``n_shards>1`` each shard's forward runs over its own induced
subgraph; per-row stage outputs match the full forward to float64 exactness
(the PR-2 gate), while gradient contributions are necessarily *summed in a
different association order* than one fused full-batch backward — the
combined stream is therefore reproducible bit-for-bit run-to-run, and
equivalent to the serial stream at float64 ulp level (gated tightly in
``tests/test_sharded_executor.py``; see README "Distributed training" for
the precise guarantees).

Failure contract
----------------

``run_step`` never hangs on a dead worker: receives poll worker liveness
and a step deadline, and any worker error is re-raised in the parent with
the worker traceback attached.  :meth:`ShardedStepExecutor.close` is
idempotent, runs via ``weakref.finalize`` at garbage collection and
interpreter exit (so an executor crash mid-epoch cannot leak processes),
and escalates join → terminate → kill.  Workers are daemonic as a last
line of defence.  Parameter and gradient blocks are *named* POSIX shared
memory, each with its own ``weakref.finalize`` (which doubles as an atexit
hook) unlinking it from the creating process — an abandoned executor, a
``KeyboardInterrupt`` or an injected parent crash leaves no orphaned
``/dev/shm`` segment, and a hard ``SIGKILL`` is mopped up by Python's
``multiprocessing.resource_tracker``.

Supervision (opt-in)
--------------------

With ``max_retries > 0`` the fail-fast checks above become a *worker
supervisor*: a dead or hung shard worker is killed, re-forked (re-aliasing
the shared parameter block exactly like the original fork) and the
in-flight step is replayed from the parent's retained per-shard dispatch
log — the parent's rng and dispatch are authoritative, so the respawned
worker's step result is bit-identical to the never-failed one.  Retries
back off exponentially and are capped per shard per step; with
``degrade_on_failure`` an exhausted budget rebuilds the executor at half
the shards (down to one, and finally to in-parent serial execution) from
the last consistent state — parameters only ever advance after a fully
collected step, so no partial update can leak into the degraded run.
Every recovery event is counted in :attr:`fault_events` (surfaced in
``TrainingHistory`` and the profiling report).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import traceback
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.shard import ShardSplit, split_joint_batch
from ..optim import Optimizer, clip_grad_norm, reduce_gradient_shards
from ..profiling import profiler
from . import faults
from .engine import StepExecutor
from .exchange import (
    CommsStats,
    ExchangeClient,
    ExchangePlane,
    _release_shm,
    tree_array_bytes,
)
from .task import DOMAIN_KEYS

__all__ = [
    "ShardLoss",
    "WorkerDied",
    "WorkerTimeout",
    "ShardedStepExecutor",
    "PoolShardedStepExecutor",
]


class WorkerDied(RuntimeError):
    """A shard worker exited (or broke its pipe) mid-step."""


class WorkerTimeout(RuntimeError):
    """A shard worker blew through the step deadline (presumed hung)."""

#: Wire commands of the parent → worker pipe protocol.  ``_STEP``/``_STOP``
#: are the legacy pickled-payload commands; ``_STEP_X`` dispatches a step as
#: a tiny control envelope whose data-plane payloads live in the shm
#: exchange plane (see :mod:`repro.core.exchange`).
_STEP, _STOP, _STEP_X = "step", "stop", "stepx"


@dataclass
class ShardLoss:
    """One shard's contribution to a training step.

    Models implement ``compute_shard_loss(batches, pools=, full_sizes=,
    localize=, include_extra=) -> ShardLoss`` (see :class:`repro.core.NMCDR`
    and :class:`repro.baselines.BaselineModel`); the executor's worker
    backwards ``loss`` and ships the rest to the parent.
    """

    #: Backward target of this shard (``None`` when the shard's micro-batch
    #: is empty in every domain and the model has no extra losses).
    loss: Optional[object] = None
    #: Per-domain *raw* pre-reduction loss-term arrays, aligned with the
    #: shard's micro-batch rows (stage-blocked for NMCDR, one row per
    #: example for the pointwise baselines), in their natural pre-cast
    #: dtype so the parent's reduction rounds exactly once, like the
    #: serial fused kernel.
    terms: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-domain canonical numpy reduction (``"sum"`` or ``"mean"``) the
    #: parent applies to the reassembled full-batch array.
    reductions: Dict[str, str] = field(default_factory=dict)
    #: Dtype the serial kernel would store each reduced scalar in (the
    #: engine dtype); the parent casts before the cross-domain add.
    value_dtype: Optional[str] = None
    #: Model-level extra losses (computed on shard 0 only), as a float.
    extra: Optional[float] = None
    #: Per-parameter "this shard produced a gradient" mask (set by the
    #: executor when a step result crosses the pipe, not by models).
    present: Optional[np.ndarray] = None


#: Monotonic suffix keeping this process's shm segment names unique.
#: (``_release_shm`` — the view-tolerant close + creator-only unlink shared
#: with the exchange plane's regions — now lives in :mod:`.exchange`.)
_shm_counter = itertools.count()


class _SharedBlock:
    """One named shared-memory block with 64-byte-aligned array views.

    Forked workers inherit the mapping (and the views built over it)
    directly — nothing is pickled or re-attached, exactly like the
    anonymous blocks this replaces — but the segment is *named*, so its
    lifetime is observable and cleanup is enforceable: the creating process
    unlinks it via :meth:`release`, via ``weakref.finalize`` when the
    executor is dropped, and via the finalizer's atexit hook on interpreter
    exit; a SIGKILLed parent is cleaned up by the resource tracker.
    """

    def __init__(self, specs: List[Tuple[Tuple[int, ...], np.dtype]]) -> None:
        offsets = []
        cursor = 0
        for shape, dtype in specs:
            cursor = (cursor + 63) & ~63
            offsets.append(cursor)
            cursor += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        name = f"repro-shm-{os.getpid()}-{next(_shm_counter)}"
        self.shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(int(cursor), 1)
        )
        self.name = self.shm.name
        self.views = [
            np.frombuffer(
                self.shm.buf,
                dtype=dtype,
                count=int(np.prod(shape, dtype=np.int64)),
                offset=offset,
            ).reshape(shape)
            for (shape, dtype), offset in zip(specs, offsets)
        ]
        self._finalizer = weakref.finalize(self, _release_shm, self.shm, os.getpid())

    def release(self) -> None:
        """Unlink the segment now; idempotent (the finalizer runs once)."""
        self.views = []
        self._finalizer()


def _shutdown_workers(workers, connections) -> None:
    """Stop worker processes; join → terminate → kill.  Idempotent."""
    for connection in connections:
        try:
            connection.send((_STOP,))
        except (BrokenPipeError, OSError):
            pass
    deadline = time.monotonic() + 5.0
    for worker in workers:
        worker.join(timeout=max(0.1, deadline - time.monotonic()))
    for worker in workers:
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=2.0)
        if worker.is_alive():  # pragma: no cover — terminate should suffice
            worker.kill()
            worker.join(timeout=2.0)
    for connection in connections:
        try:
            connection.close()
        except OSError:  # pragma: no cover — already closed
            pass


def _attach_worker(model, parameters, param_views, localize) -> None:
    """Alias parameters onto the shared block and configure localisation.

    Runs in a forked child, so ``model`` and ``parameters`` are inherited
    object references; the parameter data is re-aliased onto the shared
    block so parent-side updates become visible without copies.  With
    ``localize`` each shard runs exactness-depth subgraph localisation so
    its step cost follows its micro-batch, not the graph (the parent model
    stays untouched — this is the fork's private copy).
    """
    for parameter, view in zip(parameters, param_views):
        parameter.data = view
    if (
        localize
        and model.capabilities().subgraph_sampling
        and not model.subgraph_sampling_enabled
    ):
        model.configure_subgraph_sampling(True)


def _publish_worker_gradients(parameters, grad_views: Sequence[np.ndarray]) -> np.ndarray:
    """Copy parameter gradients into the shard's shm block; return presence."""
    present = np.zeros(len(parameters), dtype=bool)
    for index, (parameter, view) in enumerate(zip(parameters, grad_views)):
        if parameter.grad is not None:
            np.copyto(view, parameter.grad)
            present[index] = True
    return present


def _make_worker_runtime(model, traced: bool):
    """Per-worker trace runtime (each shard owns its own program cache)."""
    if not traced:
        return None
    from ..tensor import trace

    trace.check_traceable(model)
    runtime = trace.TraceRuntime()
    runtime.install()
    return runtime


def _runtime_stats(runtime) -> Optional[Dict]:
    """Cumulative stats payload piggybacked on each step's done message."""
    if runtime is None:
        return None
    return dict(runtime.stats.as_dict(), arena=runtime.arena.as_dict())


def _trace_section_key(phase: str, model, micro_batches) -> Tuple:
    """Section key for one worker phase: structure, not per-batch content."""
    from ..tensor import engine as tensor_engine
    from ..tensor.trace import model_trace_signature

    present = tuple(
        sorted(
            key
            for key, batch in micro_batches.items()
            if batch is not None and len(batch) > 0
        )
    )
    return (phase, model_trace_signature(model), present, tensor_engine.get_dtype().str)


class _TablePublisher:
    """Worker-side zero-copy publisher of owned activation-table rows.

    One instance lives for the worker's whole life and is handed to
    ``encode_shard_step`` as its ``publish`` hook.  :meth:`bind` points it
    at the current step's exchange (the client already tracks the current
    slot and table generation), while the per-domain *pin providers* it
    arms for the traced gather op are stable callables — a replayed encode
    program re-resolves them every step, so the op's output slab is always
    the current double-buffer slot's owned slice of the current table
    segment (see :func:`repro.tensor.trace.pinned_output`).
    """

    def __init__(self, client: ExchangeClient, shard_index: int, runtime) -> None:
        self._client = client
        self._shard = int(shard_index)
        self._runtime = runtime
        self._exchange = None
        self._providers: Dict[str, object] = {}

    def bind(self, exchange) -> None:
        self._exchange = exchange

    def _dest(self, key: str) -> Optional[np.ndarray]:
        """This shard's contiguous owned slice of one domain's table."""
        exchange = self._exchange
        owned = exchange.owned_range(key, self._shard)
        if owned is None:
            return None  # hand-built, non-owner-grouped exchange
        table = self._client.table_view(key, exchange.size(key))
        return table[owned[0] : owned[1]]

    def _provider(self, key: str):
        provider = self._providers.get(key)
        if provider is None:

            def provider(shape, dtype, _key=key):
                return self._dest(_key)

            self._providers[key] = provider
        return provider

    def __call__(self, key: str, user_g1, owned_local) -> None:
        if user_g1 is None:
            return  # domain inactive on this shard: nothing owned to publish
        rows = np.asarray(owned_local, dtype=np.int64)
        dest = self._dest(key)
        if dest is None:
            # Non-grouped layout: plain fancy-index write (re-executed on
            # every traced replay like any other raw-numpy statement).
            table = self._client.table_view(key, self._exchange.size(key))
            table[self._exchange.owned_positions(key, self._shard)] = (
                user_g1.data[rows]
            )
            return
        runtime = self._runtime
        if runtime is not None and runtime._mode is not None:
            # Traced record/replay: run the gather as an op whose output
            # slab *is* the shm slice — replays write straight into the
            # current slot with zero serialization and zero copies.
            from ..tensor import ops
            from ..tensor.trace import pinned_output

            with pinned_output(self._provider(key)):
                ops.gather_rows(user_g1, rows)
        else:
            np.take(user_g1.data, rows, axis=0, out=dest, mode="clip")


def _owned_signature(exchange, shard_index: int) -> Tuple[bool, ...]:
    """Per-domain "this shard owns exchange rows" mask (trace-key component).

    The zero-copy publish records a gather op per *owned* domain, so the
    encode program's structure depends on this mask; folding it into the
    section key turns what would be a guard-mismatch re-trace into a
    separate cached program.
    """
    sig = []
    for key in DOMAIN_KEYS:
        owned = exchange.owned_range(key, shard_index)
        if owned is None:
            sig.append(bool(np.any(exchange.owners[key] == shard_index)))
        else:
            sig.append(owned[1] > owned[0])
    return tuple(sig)


def _single_phase_step(
    shard_index: int,
    connection,
    model,
    parameters,
    grad_views: Sequence[np.ndarray],
    micro_batches,
    pools,
    full_sizes,
    localize: bool,
    runtime=None,
    client: Optional[ExchangeClient] = None,
) -> None:
    """One PR-4 single-phase step: forward/backward → publish → done message.

    The single wire format both worker loops share — :func:`_worker_main`
    for every step, :func:`_pool_worker_main` for the pool-free fallback —
    so :meth:`ShardedStepExecutor._collect_single_phase` can parse either.
    With a trace ``runtime``, the forward+backward runs as one traced
    section; zero-grad and the gradient publish stay eager.  With an
    exchange ``client`` the done message shrinks to a control header whose
    term/presence arrays live in the shard's shm reply slot.
    """
    for parameter in parameters:
        parameter.zero_grad()

    def forward_backward():
        result = model.compute_shard_loss(
            micro_batches,
            pools=pools,
            full_sizes=full_sizes,
            localize=localize,
            include_extra=shard_index == 0,
        )
        if result.loss is not None:
            result.loss.backward()
        return result

    if runtime is None:
        result = forward_backward()
    else:
        from ..tensor.trace import model_rng_sources

        result = runtime.run_section(
            _trace_section_key("shard", model, micro_batches),
            forward_backward,
            rng_sources=model_rng_sources(model),
        )
    present = _publish_worker_gradients(parameters, grad_views)
    if client is not None:
        header = client.pack_reply(
            {
                "terms": result.terms,
                "reductions": result.reductions,
                "extra": result.extra,
                "value_dtype": result.value_dtype,
                "present": present,
            }
        )
        connection.send(
            ("done", header, _runtime_stats(runtime), client.take_grow_request())
        )
        return
    connection.send(
        (
            "done",
            result.terms,
            result.reductions,
            result.extra,
            result.value_dtype,
            present,
            _runtime_stats(runtime),
        )
    )


def _close_inherited_fds(parent_fds: Sequence[int]) -> None:
    """Close fork-inherited parent-side pipe fds (worker startup hygiene).

    A worker holding a copy of any parent-end fd — its own or an earlier
    shard's — keeps that pipe readable after the training parent dies, so
    recv() never raises EOFError and the worker leaks (with its shm).
    """
    for fd in parent_fds:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover — fd already gone
            pass


def _worker_main(
    shard_index: int,
    connection,
    parent_fds: Sequence[int],
    model,
    parameters,
    param_views: Sequence[np.ndarray],
    grad_views: Sequence[np.ndarray],
    localize: bool,
    traced: bool = False,
    use_exchange: bool = False,
) -> None:
    """Shard worker loop: recv step → forward/backward → publish gradients."""
    client = ExchangeClient() if use_exchange else None
    try:
        _close_inherited_fds(parent_fds)
        _attach_worker(model, parameters, param_views, localize)
        runtime = _make_worker_runtime(model, traced)
        step_counter = 0
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                return
            if message[0] == _STOP:
                return
            if message[0] == _STEP_X:
                env = message[1]
                client.begin_step(env)
                # Dispatch payloads are copied out of the slot: plan caches
                # retain batch/pool index arrays across steps, past the
                # slot's double-buffer lifetime.
                micro_batches = client.unpack(env["micro"], copy=True)
                bcast = env["bcast"]
                pools = (
                    client.unpack(bcast, copy=True) if bcast is not None else None
                )
                full_sizes = env["full_sizes"]
            else:
                _, micro_batches, pools, full_sizes = message
            # Worker-local step index (restarts at 0 in a respawned worker,
            # so one-shot step-matched faults cannot re-fire during replay).
            faults.worker_step(shard_index, step_counter)
            step_counter += 1
            try:
                _single_phase_step(
                    shard_index,
                    connection,
                    model,
                    parameters,
                    grad_views,
                    micro_batches,
                    pools,
                    full_sizes,
                    localize,
                    runtime,
                    client if message[0] == _STEP_X else None,
                )
            except BaseException as error:  # noqa: BLE001 — forwarded to the parent
                connection.send(("error", repr(error), traceback.format_exc()))
    finally:
        if client is not None:
            client.close()
        try:
            connection.close()
        except OSError:  # pragma: no cover
            pass


class ShardedStepExecutor(StepExecutor):
    """Data-parallel :class:`StepExecutor` over ``n_shards`` forked workers.

    Parameters
    ----------
    model:
        Any model implementing the shard protocol (``compute_shard_loss``;
        optionally ``sample_step_pools`` / ``configure_subgraph_sampling``).
        :class:`repro.core.NMCDR` and the pointwise baselines qualify.
    optimizer:
        The parent-side optimiser; its parameter list is the canonical
        ordering of the shared parameter/gradient blocks.
    n_shards:
        Worker process count.  ``1`` is the serial-replica mode (bit-exact
        against the serial executor, still exercising the full IPC path).
    step_timeout:
        Seconds the parent waits for one shard's step result before raising
        (a deadlocked worker must fail the run, not hang it).
    """

    def __init__(
        self,
        model,
        optimizer: Optimizer,
        grad_clip_norm: Optional[float] = None,
        n_shards: int = 2,
        step_timeout: float = 600.0,
        traced: bool = False,
        max_retries: int = 0,
        retry_backoff: float = 0.05,
        degrade_on_failure: bool = False,
        shm_exchange: bool = True,
    ) -> None:
        super().__init__(model, optimizer, grad_clip_norm)
        # Tracing happens inside the workers (each owns a program cache);
        # the parent never installs a runtime, it only aggregates stats.
        self.traced = bool(traced)
        self._shard_trace_stats: Dict[int, Dict] = {}
        if self.traced:
            from ..tensor.trace import check_traceable

            check_traceable(model)
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not model.capabilities().sharding:
            raise TypeError(
                f"{type(model).__name__} does not declare the sharding "
                "capability (its loss cannot be decomposed into per-shard "
                "losses deterministically); use the serial StepExecutor"
            )
        if getattr(getattr(model, "config", None), "dropout", 0.0):
            raise ValueError(
                "sharded execution requires dropout=0 (per-worker dropout masks "
                "would diverge from the serial rng stream)"
            )
        self.n_shards = int(n_shards)
        self.step_timeout = float(step_timeout)
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.degrade_on_failure = bool(degrade_on_failure)
        #: Recovery counters, merged into ``TrainingHistory`` by the engine
        #: and into the profiling report at close.  Never reset by open() so
        #: degrade-and-reopen cycles keep accumulating.
        self.fault_events: Dict[str, int] = {
            "deaths": 0,
            "timeouts": 0,
            "respawns": 0,
            "degradations": 0,
        }
        self._workers: List = []
        self._connections: List = []
        self._param_views: List[np.ndarray] = []
        self._grad_views: List[List[np.ndarray]] = []
        self._blocks: List[_SharedBlock] = []
        self._finalizer = None
        self._context = None
        self._localize = False
        #: Per-shard parent→worker message log and response count for the
        #: step in flight — the replay source for respawned workers.
        self._step_log: List[List[tuple]] = []
        self._responses: List[int] = []
        self._step_retries: List[int] = []
        #: Shared-memory exchange plane (the zero-copy data plane); pipes
        #: carry only control headers while it is on.  Lives from open() to
        #: _teardown_workers(); the stats object outlives it (degrade-and-
        #: reopen cycles keep accumulating into one ``comms`` section).
        self.shm_exchange = bool(shm_exchange)
        self.comms_stats = CommsStats()
        self._plane: Optional[ExchangePlane] = None
        #: Executor-global step counter: drives the exchange plane's
        #: double-buffer flip and the ``exchange_overflow`` fault point.
        self._global_step = 0
        self._table_spec: Optional[Tuple[int, str]] = None
        self._table_hints: Optional[Dict[str, int]] = None
        #: Final cumulative trace-stat snapshots of workers that no longer
        #: run (died + respawned, or torn down by a degrade), kept so the
        #: merged ``repro profile --traced`` report neither loses nor
        #: double-counts a replaced worker's counters.
        self._retired_trace_stats: List[Dict] = []
        #: After the degrade ladder bottoms out: run steps in-parent.
        self._serial_fallback = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return bool(self._workers)

    def open(self) -> None:
        """Allocate shared memory and fork the shard workers.

        Called lazily by :meth:`run_step` and eagerly by the training engine
        *before* the data pipeline starts, so the fork happens while the
        process is still single-threaded (forking after the prefetch worker
        thread exists would risk inheriting held locks).
        """
        if self._workers:
            return
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover — non-POSIX platforms
            raise RuntimeError(
                "ShardedStepExecutor requires the fork start method (POSIX)"
            ) from error
        self._context = context
        parameters = self.optimizer.parameters
        specs = [(p.data.shape, p.data.dtype) for p in parameters]
        param_block = _SharedBlock(specs)
        self._param_views = param_block.views
        self._blocks = [param_block]
        self._grad_views = []
        for _ in range(self.n_shards):
            grad_block = _SharedBlock(specs)
            self._blocks.append(grad_block)
            self._grad_views.append(grad_block.views)
        self._publish_parameters()
        if self.shm_exchange:
            self._plane = ExchangePlane(self.n_shards, self.comms_stats)
            self._plane.open()

        self._localize = self.n_shards > 1
        workers, connections = [], []
        # Published before the fork loop so _fork_worker can hand every
        # already-started shard's parent-end fd to the next fork for
        # closing (see the fd-hygiene note there).
        self._workers, self._connections = workers, connections
        try:
            for shard_index in range(self.n_shards):
                worker, parent_end = self._fork_worker(shard_index)
                workers.append(worker)
                connections.append(parent_end)
        except BaseException:
            # A mid-loop failure (fd exhaustion, fork error) must not leave
            # already-started workers running or the executor half-open: the
            # `if self._workers` guard above would treat a partial set as
            # fully open and run_step would dispatch short.
            _shutdown_workers(workers, connections)
            for shared_block in self._blocks:
                shared_block.release()
            if self._plane is not None:
                self._plane.close()
                self._plane = None
            self._param_views, self._grad_views, self._blocks = [], [], []
            self._workers, self._connections = [], []
            raise
        self._step_log = [[] for _ in range(self.n_shards)]
        self._responses = [0] * self.n_shards
        self._step_retries = [0] * self.n_shards
        # The finalizer holds the *live* list objects (not copies): a
        # respawn replaces entries in place, so cleanup at GC/exit always
        # targets the current worker set, never a dead predecessor's.
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, workers, connections
        )

    def _fork_worker(self, shard_index: int):
        """Fork one shard worker; shared by open() and respawn."""
        parent_end, child_end = self._context.Pipe(duplex=True)
        # Every parent-side pipe fd open at fork time is inherited by the
        # child, *including a copy of this worker's own parent end* (the
        # local above).  The child must close those copies at startup:
        # otherwise a worker blocked in recv() keeps its own pipe's peer
        # alive and never sees EOF when the training parent is killed —
        # an orphaned worker pinning its shm segments forever.
        parent_fds = [parent_end.fileno()]
        for connection in self._connections:
            try:
                parent_fds.append(connection.fileno())
            except OSError:  # pragma: no cover — already closed
                pass
        worker = self._context.Process(
            target=self._worker_target(),
            args=(
                shard_index,
                child_end,
                parent_fds,
                self.model,
                self.optimizer.parameters,
                self._param_views,
                self._grad_views[shard_index],
                self._localize,
                self.traced,
                self._plane is not None,
            ),
            name=f"repro-shard-{shard_index}",
            daemon=True,
        )
        worker.start()
        child_end.close()
        return worker, parent_end

    def _retire_trace_stats(self) -> None:
        """Move live per-shard cumulative snapshots to the retired list."""
        self._retired_trace_stats.extend(self._shard_trace_stats.values())
        self._shard_trace_stats = {}

    def _teardown_workers(self) -> None:
        """Stop workers and release shm without finalising stats (degrade path)."""
        self._retire_trace_stats()
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer()  # weakref.finalize runs at most once
        self._workers, self._connections = [], []
        self._grad_views, self._param_views = [], []
        blocks, self._blocks = self._blocks, []
        for shared_block in blocks:
            shared_block.release()
        if self._plane is not None:
            self._plane.close()
            self._plane = None

    def close(self) -> None:
        """Shut every worker down; idempotent and safe to call at any time."""
        self._teardown_workers()
        if self._retired_trace_stats:
            from ..tensor.trace import TraceStats

            # One snapshot per worker *incarnation*: each is that worker's
            # own cumulative count, so summing never double-counts, and a
            # died worker's last done-message snapshot is retained rather
            # than overwritten by its (fresh-started) replacement.
            self.trace_stats = TraceStats.merge(self._retired_trace_stats)
            profiler.record_section("trace", self.trace_stats)
            self._retired_trace_stats = []
        if any(self.fault_events.values()):
            profiler.record_section("faults", dict(self.fault_events))
        if any(
            entry["messages"] for entry in self.comms_stats.rounds.values()
        ):
            profiler.record_section("comms", self.comms_stats.as_section())

    def __enter__(self) -> "ShardedStepExecutor":
        self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _worker_target(self):
        """The worker-process entry point (overridden by the pool executor)."""
        return _worker_main

    # ------------------------------------------------------------------
    # the step
    # ------------------------------------------------------------------
    def _publish_parameters(self) -> None:
        """Copy current parameter values into the shared block."""
        for parameter, view in zip(self.optimizer.parameters, self._param_views):
            if parameter.data is not view:
                np.copyto(view, parameter.data)

    def _receive(self, shard_index: int):
        connection = self._connections[shard_index]
        worker = self._workers[shard_index]
        deadline = time.monotonic() + self.step_timeout
        while not connection.poll(0.05):
            if not worker.is_alive():
                raise WorkerDied(
                    f"shard worker {shard_index} died (exit code "
                    f"{worker.exitcode}) without returning a step result"
                )
            if time.monotonic() > deadline:
                raise WorkerTimeout(
                    f"shard worker {shard_index} timed out after "
                    f"{self.step_timeout:.0f}s"
                )
        try:
            return connection.recv()
        except (EOFError, OSError) as error:
            raise WorkerDied(
                f"shard worker {shard_index} closed its pipe mid-step"
            ) from error

    # ------------------------------------------------------------------
    # the worker supervisor
    # ------------------------------------------------------------------
    def _begin_step(self) -> None:
        """Reset the per-step replay log and retry budget."""
        self._step_log = [[] for _ in range(self.n_shards)]
        self._responses = [0] * self.n_shards
        self._step_retries = [0] * self.n_shards

    def _send_supervised(self, shard_index: int, message: tuple) -> None:
        """Log and send one parent→worker message, recovering on a dead pipe."""
        self._step_log[shard_index].append(message)
        try:
            self._connections[shard_index].send(message)
            return
        except (BrokenPipeError, OSError):
            error = WorkerDied(
                f"shard worker {shard_index} is gone (exit code "
                f"{self._workers[shard_index].exitcode}); cannot dispatch step"
            )
        while True:
            self._prepare_respawn(shard_index, error)
            try:
                # The failed message is already in the log, so a successful
                # replay leaves it delivered and unanswered — exactly the
                # state a plain send would have produced.
                self._replay_step(shard_index)
                return
            except (WorkerDied, WorkerTimeout) as next_error:
                error = next_error

    def _receive_supervised(self, shard_index: int):
        """Receive one worker response, respawning and replaying on failure."""
        pending_replay = False
        while True:
            try:
                if pending_replay:
                    self._replay_step(shard_index)
                    pending_replay = False
                message = self._receive(shard_index)
                self._responses[shard_index] += 1
                return message
            except (WorkerDied, WorkerTimeout) as error:
                self._prepare_respawn(shard_index, error)
                pending_replay = True

    def _prepare_respawn(self, shard_index: int, error: Exception) -> None:
        """Count the failure and fork a replacement, or re-raise over budget."""
        self.fault_events[
            "timeouts" if isinstance(error, WorkerTimeout) else "deaths"
        ] += 1
        attempt = self._step_retries[shard_index]
        if attempt >= self.max_retries:
            raise error
        self._step_retries[shard_index] = attempt + 1
        if self.retry_backoff:
            time.sleep(self.retry_backoff * (2**attempt))
        # Respawned workers inherit the fault module's state through fork;
        # advancing the generation keeps one-shot injected faults from
        # re-firing in the replacement (see repro.core.faults).
        faults.mark_respawn()
        old_worker = self._workers[shard_index]
        if old_worker.is_alive():
            old_worker.terminate()
            old_worker.join(timeout=2.0)
            if old_worker.is_alive():  # pragma: no cover — terminate suffices
                old_worker.kill()
                old_worker.join(timeout=2.0)
        try:
            self._connections[shard_index].close()
        except OSError:  # pragma: no cover — already closed
            pass
        # Retire the dead incarnation's last cumulative trace snapshot so
        # the replacement's (restarting-from-zero) counters don't overwrite
        # it in the merged report.
        stats = self._shard_trace_stats.pop(shard_index, None)
        if stats is not None:
            self._retired_trace_stats.append(stats)
        worker, parent_end = self._fork_worker(shard_index)
        # In-place so the close finalizer's captured lists stay current.
        self._workers[shard_index] = worker
        self._connections[shard_index] = parent_end
        self.fault_events["respawns"] += 1

    def _replay_step(self, shard_index: int) -> None:
        """Re-drive the in-flight step on a freshly respawned worker.

        The parent's retained dispatch log is authoritative: every logged
        message is re-sent in order and the responses the parent had
        already consumed before the failure are received again and
        discarded (the recomputation is bit-identical — same shared
        parameters, same parent-drawn pools, same micro-batch).  The strict
        1:1 send/receive alternation of both wire protocols makes the
        interleaving deadlock-free: at most one response is ever
        outstanding.  On return the worker is exactly where its predecessor
        was when it failed.
        """
        log = self._step_log[shard_index]
        drained = self._responses[shard_index]
        connection = self._connections[shard_index]
        for index, message in enumerate(log):
            try:
                connection.send(message)
            except (BrokenPipeError, OSError) as error:
                raise WorkerDied(
                    f"shard worker {shard_index} died again during step replay"
                ) from error
            if index < drained:
                reply = self._receive(shard_index)
                if reply[0] == "error":
                    self._raise_worker_failure(shard_index, reply)

    def _degrade(self) -> None:
        """Drop to fewer shards (ultimately in-parent serial) and reopen.

        Parameters only advance after a fully collected step, so the
        executor state at this point is the last consistent one; the
        in-flight step is re-run at the reduced width from identical
        parameters and the already-drawn pools.
        """
        self.fault_events["degradations"] += 1
        self._teardown_workers()
        if self.n_shards > 1:
            self.n_shards = max(1, self.n_shards // 2)
            self.open()
        else:
            self._serial_fallback = True

    def _run_serial_step(self, batches, pools) -> float:
        """In-parent execution — the degrade ladder's final rung.

        Replays the serial executor's semantics through the shard protocol
        with one full-width micro-batch, so loss assembly and gradient
        handling stay on the exact code path the equivalence gates cover.
        """
        split = split_joint_batch(batches, 1)
        self.optimizer.zero_grad()
        result = self.model.compute_shard_loss(
            split.micro_batches[0],
            pools=pools,
            full_sizes=split.full_sizes,
            localize=False,
            include_extra=True,
        )
        if result.loss is not None:
            result.loss.backward()
        with profiler.scope("train/optimizer"):
            if self.grad_clip_norm is not None:
                clip_grad_norm(self.model.parameters(), self.grad_clip_norm)
            self.optimizer.step()
        self.model.invalidate_cache()
        return self._assemble_loss(split, [result])

    def _raise_worker_failure(self, shard_index: int, message) -> None:
        raise RuntimeError(
            f"shard worker {shard_index} failed: {message[1]}\n"
            f"--- worker traceback ---\n{message[2]}"
        )

    def _collect_single_phase(self) -> List[ShardLoss]:
        """Receive every shard's one-shot step result (the PR-4 protocol).

        Parses both wire forms: the legacy 7-tuple with pickled payloads and
        the exchange plane's 4-tuple ``("done", header, trace_stats, grow)``
        whose arrays live in the shard's shm reply slot.
        """
        results: List[ShardLoss] = []
        for shard_index in range(self.n_shards):
            message = self._receive_supervised(shard_index)
            if message[0] == "error":
                self._raise_worker_failure(shard_index, message)
            if len(message) == 4:
                _, header, trace_stats, grow = message
                self._plane.request_grow(grow)
                payload = self._plane.unpack(header, "loss")
                terms = payload["terms"]
                reductions = payload["reductions"]
                extra = payload["extra"]
                value_dtype = payload["value_dtype"]
                present = payload["present"]
            else:
                _, terms, reductions, extra, value_dtype, present, trace_stats = message
                self.comms_stats.record(
                    "loss", pipe_bytes=tree_array_bytes((terms, present))
                )
            if trace_stats is not None:
                self._shard_trace_stats[shard_index] = trace_stats
            results.append(
                ShardLoss(
                    terms=terms,
                    reductions=reductions,
                    extra=extra,
                    value_dtype=value_dtype,
                    present=present,
                )
            )
        return results

    def run_step(self, batches) -> float:
        try:
            if not self._serial_fallback:
                self.open()
            # Pools are drawn exactly once per step, *before* any attempt:
            # retries and degrades re-use them, so the parent rng stream —
            # and everything downstream of it — is independent of failures.
            pools = (
                self.model.sample_step_pools()
                if self.model.capabilities().matching_pools
                else None
            )
            while True:
                if self._serial_fallback:
                    return self._run_serial_step(batches, pools)
                with profiler.scope("train/publish"):
                    self._publish_parameters()
                self._begin_step()
                try:
                    return self._attempt_step(batches, pools)
                except (WorkerDied, WorkerTimeout):
                    if not self.degrade_on_failure:
                        raise
                    # The retry budget for this step is exhausted; rebuild
                    # narrower from the last consistent state and re-run it.
                    self._degrade()
        except Exception:
            # Leave no worker behind when a step fails; the engine's finally
            # block would close us anyway, but callers driving the executor
            # directly (profiling, tests) must not leak processes either.
            self.close()
            raise

    def _begin_plane_step(self, reply_bound: Optional[int] = None) -> int:
        """Advance the plane to this step's buffer slot; apply regrows.

        Runs before any message of the step is sent (the respawn-replay log
        must never reference a replaced segment) and services the
        ``exchange_overflow`` fault point by force-regrowing every region —
        fresh segment names, bumped generations — mid-epoch.
        """
        step_index = self._global_step
        self._global_step += 1
        forced = faults.fire("exchange_overflow", step=step_index) is not None
        self._plane.begin_step(
            step_index, reply_bound=reply_bound, force_regrow=forced
        )
        return step_index

    def _dispatch_plane(self, split: ShardSplit, step_index: int, bcast_payload,
                        tables_env) -> None:
        """Send every shard its step envelope (control header over the pipe)."""
        plane = self._plane
        bcast = (
            plane.pack("bcast", bcast_payload, "broadcast")
            if bcast_payload is not None
            else None
        )
        for shard_index in range(self.n_shards):
            env = {
                "step": step_index,
                "slot": plane.slot,
                "micro": plane.pack(
                    f"p2w{shard_index}",
                    split.micro_batches[shard_index],
                    "dispatch",
                ),
                "bcast": bcast,
                "full_sizes": split.full_sizes,
                "reply": plane.descriptor(f"w2p{shard_index}"),
                "tables": tables_env,
            }
            self._send_supervised(shard_index, (_STEP_X, env))

    def _single_phase_reply_bound(self, split: ShardSplit) -> int:
        """Generous upper bound on one shard's reply-slot bytes.

        Loss-term layouts are model-private (stage-blocked for NMCDR), so
        the bound assumes up to 16 blocks of 8-byte terms over the *full*
        batch per domain plus the presence mask and alignment slack.  An
        underestimate is not an error — the reply rides the pipe once and
        the region regrows at the next step begin.
        """
        bound = 8192 + 64 * (len(self.optimizer.parameters) + 1)
        for size in split.full_sizes.values():
            bound += 128 * (int(size) + 8)
        return bound

    def _attempt_step(self, batches, pools) -> float:
        """One supervised execution of the single-phase (PR-4) protocol."""
        split = split_joint_batch(batches, self.n_shards)
        with profiler.scope("train/dispatch"):
            if self._plane is not None:
                step_index = self._begin_plane_step(
                    self._single_phase_reply_bound(split)
                )
                self._dispatch_plane(split, step_index, pools, None)
            else:
                for shard_index in range(self.n_shards):
                    message = (
                        _STEP,
                        split.micro_batches[shard_index],
                        pools,
                        split.full_sizes,
                    )
                    self.comms_stats.record(
                        "dispatch", pipe_bytes=tree_array_bytes(message)
                    )
                    self._send_supervised(shard_index, message)
        with profiler.scope("train/shard_wait"):
            results = self._collect_single_phase()
        with profiler.scope("train/reduce"):
            reduce_gradient_shards(
                self.optimizer.parameters,
                self._grad_views,
                [result.present for result in results],
            )
        with profiler.scope("train/optimizer"):
            if self.grad_clip_norm is not None:
                clip_grad_norm(self.model.parameters(), self.grad_clip_norm)
            self.optimizer.step()
        self.model.invalidate_cache()
        return self._assemble_loss(split, results)

    def _assemble_loss(self, split: ShardSplit, results: Sequence[ShardLoss]) -> float:
        """Reduce per-shard loss terms in canonical (serial) batch order.

        The raw (pre-cast) terms are scattered back into the full batch's
        array layout, reduced with the serial kernel's own numpy reduction,
        and only then cast to the engine dtype — one rounding, exactly
        where the serial executor rounds — before the cross-domain add.
        """
        value_dtype = next(
            (result.value_dtype for result in results if result.value_dtype), None
        )
        total = None

        def accumulate(total, value):
            if value_dtype is not None:
                value = np.asarray(value).astype(value_dtype)
            return value if total is None else total + value

        for key in DOMAIN_KEYS:
            full_size = split.full_sizes.get(key)
            if not full_size:
                continue
            contributions = [
                (shard_index, result.terms[key])
                for shard_index, result in enumerate(results)
                if key in result.terms
            ]
            if not contributions:  # pragma: no cover — non-empty batches always land
                continue
            first_shard, first_terms = contributions[0]
            shard_rows = split.positions[key][first_shard].size
            stage_blocks = first_terms.shape[0] // max(shard_rows, 1)
            full_terms = np.empty(
                (stage_blocks * full_size,) + first_terms.shape[1:], dtype=first_terms.dtype
            )
            for shard_index, terms in contributions:
                rows = split.positions[key][shard_index]
                micro_size = rows.size
                for block in range(stage_blocks):
                    full_terms[block * full_size + rows] = terms[
                        block * micro_size : (block + 1) * micro_size
                    ]
            reduction = results[contributions[0][0]].reductions[key]
            value = full_terms.sum() if reduction == "sum" else full_terms.mean()
            total = accumulate(total, value)
        for result in results:
            if result.extra is not None:
                total = accumulate(total, result.extra)
        if total is None:
            raise ValueError("run_step needs at least one non-empty batch")
        return float(total)


def _pool_worker_main(
    shard_index: int,
    connection,
    parent_fds: Sequence[int],
    model,
    parameters,
    param_views: Sequence[np.ndarray],
    grad_views: Sequence[np.ndarray],
    localize: bool,
    traced: bool = False,
    use_exchange: bool = False,
) -> None:
    """Pool-sharded worker loop: encode → gather → match → scatter → finish.

    Each step runs the two-phase protocol of
    :class:`PoolShardedStepExecutor`: phase 1 encodes the micro-batch
    closure plus this shard's *owned* slice of the pool exchange and ships
    the owned encoder activations; after the parent's all-gather, phase 2
    runs the matching stages against the full activation table, backwards up
    to the boundary and returns the table gradients; after the parent's
    mirrored scatter, phase 3 backwards the received owned-row gradients
    through the encoder and publishes the combined parameter gradients.

    Steps of models without matching pools (``exchange is None``) fall back
    to the single-phase protocol of :func:`_worker_main` unchanged (the
    shared :func:`_single_phase_step` helper keeps the wire formats one).

    With tracing enabled each phase records/replays as its *own* program
    (``encode`` has no backward event; ``match`` and ``finish`` each carry
    one).  The finish surrogate chains through the encode program's recycled
    nodes, so an encode-side re-trace invalidates the finish program's
    guards on the same step and both self-heal together.
    """
    client = ExchangeClient() if use_exchange else None
    publisher: Optional[_TablePublisher] = None
    try:
        _close_inherited_fds(parent_fds)
        _attach_worker(model, parameters, param_views, localize)
        runtime = _make_worker_runtime(model, traced)
        step_counter = 0
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                return
            if message[0] == _STOP:
                return
            plane_step = message[0] == _STEP_X
            if plane_step:
                env = message[1]
                client.begin_step(env)
                micro_batches = client.unpack(env["micro"], copy=True)
                bcast = env["bcast"]
                pools, exchange = (
                    client.unpack(bcast, copy=True)
                    if bcast is not None
                    else (None, None)
                )
                full_sizes = env["full_sizes"]
            else:
                _, micro_batches, pools, full_sizes, exchange = message
            step_index = step_counter
            step_counter += 1
            try:
                if exchange is None:
                    faults.worker_step(shard_index, step_index)
                    _single_phase_step(
                        shard_index,
                        connection,
                        model,
                        parameters,
                        grad_views,
                        micro_batches,
                        pools,
                        full_sizes,
                        localize,
                        runtime,
                        client if plane_step else None,
                    )
                    continue
                faults.worker_step(shard_index, step_index, "enc")
                for parameter in parameters:
                    parameter.zero_grad()
                publish = None
                if plane_step:
                    if publisher is None:
                        publisher = _TablePublisher(client, shard_index, runtime)
                    publisher.bind(exchange)
                    publish = publisher

                def encode_phase():
                    return model.encode_shard_step(
                        micro_batches,
                        pools=pools,
                        exchange=exchange,
                        shard_index=shard_index,
                        full_sizes=full_sizes,
                        publish=publish,
                    )

                if runtime is None:
                    state, activations = encode_phase()
                    rng_sources = ()
                else:
                    from ..tensor.trace import model_rng_sources

                    section_key = _trace_section_key("encode", model, micro_batches)
                    if publish is not None:
                        # The zero-copy publish records one gather op per
                        # *owned* domain, so the program structure depends
                        # on the ownership mask too.
                        section_key += (_owned_signature(exchange, shard_index),)
                    rng_sources = model_rng_sources(model)
                    state, activations = runtime.run_section(
                        section_key,
                        encode_phase,
                        rng_sources=rng_sources,
                    )
                if plane_step:
                    # Owned table rows were written in place; the reply is a
                    # bare barrier tag (plus any piggybacked grow request).
                    connection.send(("enc", None, client.take_grow_request()))
                else:
                    connection.send(("enc", activations))
                message = connection.recv()
                if message[0] == _STOP:
                    return
                if plane_step:
                    tables = {
                        key: client.table_view(key, exchange.size(key))
                        for key in DOMAIN_KEYS
                    }
                    # Boundary-gradient buffers are staged in the reply slot
                    # *before* the phase runs so the model's copyto is the
                    # only copy the gradients ever take.
                    boundary_out = {
                        key: client.alloc_reply(
                            tables[key].shape, tables[key].dtype
                        )
                        for key in DOMAIN_KEYS
                    }
                else:
                    tables = message[1]
                    boundary_out = None
                faults.worker_step(shard_index, step_index, "match")

                def match_phase():
                    return model.match_shard_step(
                        state,
                        tables,
                        include_extra=shard_index == 0,
                        boundary_out=boundary_out,
                    )

                if runtime is None:
                    result, boundary = match_phase()
                else:
                    result, boundary = runtime.run_section(
                        _trace_section_key("match", model, micro_batches),
                        match_phase,
                        rng_sources=rng_sources,
                    )
                if plane_step:
                    header = client.pack_reply(
                        {
                            "terms": result.terms,
                            "reductions": result.reductions,
                            "extra": result.extra,
                            "value_dtype": result.value_dtype,
                            "boundary": boundary,
                        }
                    )
                    connection.send(("match", header, client.take_grow_request()))
                else:
                    connection.send(
                        (
                            "match",
                            result.terms,
                            result.reductions,
                            result.extra,
                            result.value_dtype,
                            boundary,
                        )
                    )
                message = connection.recv()
                if message[0] == _STOP:
                    return
                if plane_step:
                    # The summed gradients live in the shared "summed"
                    # region; this shard reads its owned slice directly.
                    owned_grads = {}
                    for key in DOMAIN_KEYS:
                        summed = client.table_view(
                            key, exchange.size(key), which="summed"
                        )
                        owned = exchange.owned_range(key, shard_index)
                        if owned is not None:
                            owned_grads[key] = summed[owned[0] : owned[1]]
                        else:
                            owned_grads[key] = np.ascontiguousarray(
                                summed[exchange.owned_positions(key, shard_index)]
                            )
                else:
                    owned_grads = message[1]
                faults.worker_step(shard_index, step_index, "finish")
                if runtime is None:
                    model.finish_shard_step(state, owned_grads)
                else:
                    runtime.run_section(
                        _trace_section_key("finish", model, micro_batches),
                        lambda: model.finish_shard_step(state, owned_grads),
                        rng_sources=rng_sources,
                    )
                present = _publish_worker_gradients(parameters, grad_views)
                if plane_step:
                    header = client.pack_reply({"present": present})
                    connection.send(
                        (
                            "done",
                            header,
                            _runtime_stats(runtime),
                            client.take_grow_request(),
                        )
                    )
                else:
                    connection.send(("done", present, _runtime_stats(runtime)))
            except BaseException as error:  # noqa: BLE001 — forwarded to the parent
                connection.send(("error", repr(error), traceback.format_exc()))
    finally:
        if client is not None:
            client.close()
        try:
            connection.close()
        except OSError:  # pragma: no cover
            pass


class PoolShardedStepExecutor(ShardedStepExecutor):
    """Sharded executor with a partitioned matching-pool closure.

    The replicated :class:`ShardedStepExecutor` folds the whole pool closure
    into every shard's subgraph, so per-shard step cost carries a fixed
    O(pool) term — the Amdahl floor of ``BENCH_efficiency.json:
    sharded_scaling``.  This executor partitions the pool closure across
    shards instead and exchanges only the pool users' *encoder activations*
    through one extra IPC round per step, with the mirrored gradient
    exchange on the way back.  Per-shard cost then follows
    ``batch + pool/n_shards``.

    Step protocol (strict lock-step, liveness-polled at every phase)::

        parent: publish params → draw pools → partition pool closure
                → dispatch (micro-batch, pools, full sizes, exchange)
        shard:  phase 1 — encode batch closure + owned pool slice,
                send owned activations
        parent: all-gather into per-domain tables, broadcast
        shard:  phase 2 — matching stages over local rows + table,
                backward to the boundary, send loss terms + table grads
        parent: sum table grads in fixed shard order, scatter owned rows
        shard:  phase 3 — encoder backward seeded with the summed owned
                gradients, publish parameter gradients
        parent: fixed-order reduce → clip → one optimiser update

    Determinism matches the replicated executor's contract: pools are drawn
    once in the parent (identical rng stream and mid-training evaluation),
    losses reduce in canonical batch order, table gradients and parameter
    gradients sum in fixed shard order.  Loss values are bit-identical per
    step given equal parameters; the gradient sum re-associates across the
    boundary, so epoch losses track the replicated executor at float64 ulp
    level while validation metrics stay bit-identical (gated in
    ``tests/test_pool_sharded_executor.py``).

    Models without matching pools (``plan_pool_exchange`` missing or
    returning ``None`` — the pointwise baselines) degenerate to the
    replicated single-phase protocol unchanged.
    """

    def _worker_target(self):
        return _pool_worker_main

    def _load_table_spec(self) -> Tuple[int, str]:
        """The model's (row dim, dtype) table spec + capacity hints, cached."""
        if self._table_spec is None:
            self._table_spec = tuple(self.model.exchange_table_spec())
            self._table_hints = self.model.exchange_plane_hints()
        return self._table_spec

    def _pool_reply_bound(self, split: ShardSplit, exchange, dim: int,
                          itemsize: int) -> int:
        """Single-phase bound plus the staged boundary-gradient tables."""
        bound = self._single_phase_reply_bound(split)
        for key in DOMAIN_KEYS:
            bound += exchange.size(key) * dim * itemsize + 64
        return bound

    def _attempt_step(self, batches, pools) -> float:
        """One supervised execution of the pool-exchange (PR-5) protocol."""
        exchange = (
            self.model.plan_pool_exchange(pools, self.n_shards)
            if pools is not None and self.model.capabilities().pool_exchange
            else None
        )
        split = split_joint_batch(batches, self.n_shards)
        # A model that plans a pool exchange also provides the table spec the
        # plane lays its activation / summed-gradient regions out from — the
        # ``pool_exchange`` capability declares both halves of the contract.
        plane = self._plane
        if plane is not None:
            if exchange is not None:
                dim, dtype_str = self._load_table_spec()
                reply_bound = self._pool_reply_bound(
                    split, exchange, dim, np.dtype(dtype_str).itemsize
                )
            else:
                reply_bound = self._single_phase_reply_bound(split)
            step_index = self._begin_plane_step(reply_bound)
            if exchange is not None:
                # After begin_step: a forced regrow must not invalidate the
                # table descriptors the envelope is about to carry.
                plane.ensure_tables(
                    {key: exchange.size(key) for key in DOMAIN_KEYS},
                    dim,
                    dtype_str,
                    capacity_hint=self._table_hints,
                )
                tables_env = plane.tables_env()
            else:
                tables_env = None
            bcast_payload = (
                (pools, exchange)
                if pools is not None or exchange is not None
                else None
            )
            with profiler.scope("train/dispatch"):
                self._dispatch_plane(split, step_index, bcast_payload, tables_env)
        else:
            with profiler.scope("train/dispatch"):
                for shard_index in range(self.n_shards):
                    message = (
                        _STEP,
                        split.micro_batches[shard_index],
                        pools,
                        split.full_sizes,
                        exchange,
                    )
                    self.comms_stats.record(
                        "dispatch", pipe_bytes=tree_array_bytes(message)
                    )
                    self._send_supervised(shard_index, message)
        if exchange is None:
            with profiler.scope("train/shard_wait"):
                results = self._collect_single_phase()
        elif plane is not None:
            results = self._run_exchange_phases_plane(exchange)
        else:
            results = self._run_exchange_phases(exchange)
        with profiler.scope("train/reduce"):
            reduce_gradient_shards(
                self.optimizer.parameters,
                self._grad_views,
                [result.present for result in results],
            )
        with profiler.scope("train/optimizer"):
            if self.grad_clip_norm is not None:
                clip_grad_norm(self.model.parameters(), self.grad_clip_norm)
            self.optimizer.step()
        self.model.invalidate_cache()
        return self._assemble_loss(split, results)

    # ------------------------------------------------------------------
    # the two-phase exchange
    # ------------------------------------------------------------------
    def _broadcast(self, message) -> None:
        for shard_index in range(self.n_shards):
            self._send_supervised(shard_index, message)

    def _run_exchange_phases_plane(self, exchange) -> List[ShardLoss]:
        """The gather/broadcast/scatter rounds over the exchange plane.

        Workers write their owned activation rows straight into the shared
        ``tables`` region during encode, so the gather is a bare reply
        barrier and the broadcast a bare go-ahead tag; the parent sums the
        boundary gradients into the shared ``summed`` region (fixed shard
        order — the deterministic reduction the equivalence gates rely on)
        and the scatter is again just a tag, each shard reading its owned
        slice in place.
        """
        plane = self._plane
        stats = self.comms_stats
        dim, dtype_str = self._table_spec
        itemsize = np.dtype(dtype_str).itemsize
        table_bytes = sum(
            exchange.size(key) * dim * itemsize for key in DOMAIN_KEYS
        )

        # Phase 1 barrier: every shard has published its owned table rows.
        with profiler.scope("train/pool_gather"):
            for shard_index in range(self.n_shards):
                message = self._receive_supervised(shard_index)
                if message[0] == "error":
                    self._raise_worker_failure(shard_index, message)
                plane.request_grow(message[2])
            stats.record(
                "gather", messages=self.n_shards, shm_bytes=table_bytes
            )
            self._broadcast(("tables",))
            stats.record(
                "broadcast",
                messages=self.n_shards,
                shm_bytes=table_bytes * self.n_shards,
            )

        # Phase 2: per-shard loss terms + boundary gradients (shm headers).
        results: List[ShardLoss] = []
        boundaries: List[Dict[str, np.ndarray]] = []
        with profiler.scope("train/shard_wait"):
            for shard_index in range(self.n_shards):
                message = self._receive_supervised(shard_index)
                if message[0] == "error":
                    self._raise_worker_failure(shard_index, message)
                plane.request_grow(message[2])
                payload = plane.unpack(message[1], "loss")
                results.append(
                    ShardLoss(
                        terms=payload["terms"],
                        reductions=payload["reductions"],
                        extra=payload["extra"],
                        value_dtype=payload["value_dtype"],
                    )
                )
                boundaries.append(payload["boundary"])

        # Mirrored backward exchange, summed in place in the shared region.
        with profiler.scope("train/pool_scatter"):
            started = time.perf_counter()
            for key in DOMAIN_KEYS:
                total = plane.table_view(key, exchange.size(key), which="summed")
                total[...] = 0.0
                for boundary in boundaries:
                    grads = boundary.get(key)
                    if grads is not None and grads.size:
                        total += grads
            stats.record(
                "scatter",
                messages=self.n_shards,
                shm_bytes=table_bytes,
                pack_s=time.perf_counter() - started,
            )
            self._broadcast(("grads",))

        # Phase 3: encoder backwards complete; collect gradient presence.
        with profiler.scope("train/shard_wait"):
            for shard_index in range(self.n_shards):
                message = self._receive_supervised(shard_index)
                if message[0] == "error":
                    self._raise_worker_failure(shard_index, message)
                plane.request_grow(message[3])
                payload = plane.unpack(message[1], "finish", copy=True)
                results[shard_index].present = payload["present"]
                trace_stats = message[2]
                if trace_stats is not None:
                    self._shard_trace_stats[shard_index] = trace_stats
        return results

    def _run_exchange_phases(self, exchange) -> List[ShardLoss]:
        # Phase 1: gather the owned encoder activations into full tables.
        with profiler.scope("train/pool_gather"):
            shard_activations = []
            for shard_index in range(self.n_shards):
                message = self._receive_supervised(shard_index)
                if message[0] == "error":
                    self._raise_worker_failure(shard_index, message)
                shard_activations.append(message[1])
                self.comms_stats.record(
                    "gather", pipe_bytes=tree_array_bytes(message[1])
                )
            tables: Dict[str, np.ndarray] = {}
            for key in DOMAIN_KEYS:
                reference = shard_activations[0][key]
                table = np.empty(
                    (exchange.size(key), reference.shape[1]), dtype=reference.dtype
                )
                for shard_index in range(self.n_shards):
                    positions = exchange.owned_positions(key, shard_index)
                    if positions.size:
                        table[positions] = shard_activations[shard_index][key]
                tables[key] = table
            self.comms_stats.record(
                "broadcast",
                messages=self.n_shards,
                pipe_bytes=tree_array_bytes(tables) * self.n_shards,
            )
            self._broadcast(("tables", tables))

        # Phase 2: per-shard matching results + boundary (table) gradients.
        results: List[ShardLoss] = []
        boundaries: List[Dict[str, np.ndarray]] = []
        with profiler.scope("train/shard_wait"):
            for shard_index in range(self.n_shards):
                message = self._receive_supervised(shard_index)
                if message[0] == "error":
                    self._raise_worker_failure(shard_index, message)
                _, terms, reductions, extra, value_dtype, boundary = message
                self.comms_stats.record(
                    "loss", pipe_bytes=tree_array_bytes((terms, boundary))
                )
                results.append(
                    ShardLoss(
                        terms=terms,
                        reductions=reductions,
                        extra=extra,
                        value_dtype=value_dtype,
                    )
                )
                boundaries.append(boundary)

        # Mirrored backward exchange: sum the table gradients in fixed shard
        # order (the deterministic reduction the equivalence gates rely on)
        # and scatter each row's total back to its owning shard.
        with profiler.scope("train/pool_scatter"):
            summed: Dict[str, np.ndarray] = {}
            for key in DOMAIN_KEYS:
                total = np.zeros_like(tables[key])
                for boundary in boundaries:
                    grads = boundary.get(key)
                    if grads is not None and grads.size:
                        total += grads
                summed[key] = total
            for shard_index in range(self.n_shards):
                owned = {
                    key: np.ascontiguousarray(
                        summed[key][exchange.owned_positions(key, shard_index)]
                    )
                    for key in DOMAIN_KEYS
                }
                self.comms_stats.record(
                    "scatter", pipe_bytes=tree_array_bytes(owned)
                )
                self._send_supervised(shard_index, ("grads", owned))

        # Phase 3: encoder backwards complete; collect gradient presence.
        with profiler.scope("train/shard_wait"):
            for shard_index in range(self.n_shards):
                message = self._receive_supervised(shard_index)
                if message[0] == "error":
                    self._raise_worker_failure(shard_index, message)
                results[shard_index].present = message[1]
                self.comms_stats.record(
                    "finish", pipe_bytes=tree_array_bytes(message[1])
                )
                trace_stats = message[2]
                if trace_stats is not None:
                    self._shard_trace_stats[shard_index] = trace_stats
        return results
