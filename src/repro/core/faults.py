"""Config/env-driven fault injection for the fault-tolerance test harness.

Production code calls the tiny hook functions below at its failure-critical
sites (worker step entry, checkpoint write, engine epoch boundaries); with no
faults armed every hook is a cheap no-op.  Tests — and operators rehearsing
recovery — arm :class:`FaultSpec` entries either programmatically
(:func:`configure`) or through the ``REPRO_FAULTS`` environment variable,
which survives into forked shard workers and CLI subprocesses.

Injection points
----------------

``worker_exit``
    The shard worker calls ``os._exit`` at the start of the matching step
    (or pool-protocol phase) — a hard crash the parent must detect and
    recover from.
``worker_hang``
    The worker sleeps past any reasonable step deadline, exercising the
    supervisor's hang detection (``delay`` overrides the default sleep).
``worker_slow``
    The worker sleeps ``delay`` seconds and then completes normally — a slow
    step must *not* trigger recovery while it stays under the deadline.
``checkpoint_crash``
    The checkpoint writer dies after producing the temporary file but before
    the atomic rename — the previous checkpoint must survive intact.
``checkpoint_corrupt``
    The checkpoint writer flips bytes in the finished file — the loader must
    fail loudly, never restore a partial state.
``parent_exit``
    The training parent process exits hard at an epoch/step boundary (after
    any due checkpoint), simulating a kill for resume tests.
``exchange_overflow``
    The sharded executor's shm exchange plane force-regrows every region at
    the matching step's begin (fresh segments, bumped generations) as if the
    step's payload had overflowed — workers must re-attach mid-epoch and the
    training stream must stay bit-identical.
``reload_corrupt``
    The serve-tier hot reloader corrupts what it is about to trust: with
    ``phase=file`` it flips bytes in the checkpoint archive before loading
    (the digest check must reject it); with ``phase=table`` it perturbs
    the freshly built *shadow* store tables (the canary slate must reject
    it).  A phase-less spec fires at the first site reached (``file``).
    Either way the serving generation must roll back untouched.
``reload_crash``
    A hard ``os._exit`` mid-reload: ``phase=publish`` dies inside
    :meth:`RepresentationStore.save` between the shadow ``.npz`` write and
    the atomic rename (the prior archive must stay loadable, generation
    unbumped); ``phase=swap`` dies in the hot reloader after the shadow
    store was built but before the swap (no persisted artifact may be
    torn).
``store_stale``
    The scorer front end sees an artificial staleness lag of ``lag``
    parameter updates, driving the serve degradation ladder (stale-flagged
    answers, the matching-module cold path, the typed unavailable error)
    without a live trainer.
``scorer_slow``
    The scorer sleeps ``delay`` seconds inside its micro-batch loop
    (optionally only at micro-batch index ``step``) — the lever that makes
    request deadlines observable and proves deadline enforcement never
    hangs.

Respawn semantics
-----------------

Fault state lives in module globals, so a forked worker inherits the armed
specs of its parent.  A *respawned* worker would therefore re-fire the very
fault that killed its predecessor and retry forever; to model one-off
failures, each spec is armed at the current *generation* and the supervisor
bumps the generation (:func:`mark_respawn`) before re-forking.  Specs fire
only in their own generation unless ``refire=True`` — the knob used to drive
retry budgets to exhaustion and test graceful degradation.

``REPRO_FAULTS`` grammar (comma-separated specs, colon-separated fields)::

    REPRO_FAULTS="worker_exit:shard=1:step=2,worker_slow:delay=0.2"
    REPRO_FAULTS="worker_exit:shard=0:refire,parent_exit:epoch=2"
    REPRO_FAULTS="exchange_overflow:step=3"
    REPRO_FAULTS="reload_corrupt:phase=file,scorer_slow:delay=0.2"
    REPRO_FAULTS="store_stale:lag=7,reload_crash:phase=publish"
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "FaultSpec",
    "configure",
    "clear",
    "active_specs",
    "load_env",
    "mark_respawn",
    "fire",
    "worker_step",
    "checkpoint_should_crash",
    "checkpoint_should_corrupt",
    "parent_boundary",
    "reload_should_corrupt",
    "reload_crash_point",
    "injected_staleness_lag",
    "scorer_chunk",
]

#: Exit code used by injected hard-crash faults, distinct from real failures.
FAULT_EXIT_CODE = 23

#: Environment variable holding the fault spec string.
ENV_VAR = "REPRO_FAULTS"

_WORKER_POINTS = ("worker_exit", "worker_hang", "worker_slow")
_POINTS = _WORKER_POINTS + (
    "checkpoint_crash",
    "checkpoint_corrupt",
    "parent_exit",
    "exchange_overflow",
    "reload_corrupt",
    "reload_crash",
    "store_stale",
    "scorer_slow",
)


@dataclass
class FaultSpec:
    """One armed fault: where it fires, how often, and in which generation."""

    point: str
    #: Restrict to one shard worker (``None`` matches every shard).
    shard: Optional[int] = None
    #: Restrict to one step index (worker-local for worker points,
    #: engine-global for ``parent_exit``); ``None`` matches every step.
    step: Optional[int] = None
    #: Restrict to one pool-protocol phase (``step``/``enc``/``match``/
    #: ``finish``) — ``None`` matches any phase.
    phase: Optional[str] = None
    #: Restrict ``parent_exit`` to one epoch boundary.
    epoch: Optional[int] = None
    #: Sleep length for ``worker_slow``/``scorer_slow`` (and override for
    #: ``worker_hang``).
    delay: float = 0.0
    #: Injected staleness lag for ``store_stale`` (payload, not a filter).
    lag: int = 0
    #: How many times this spec may fire in one process (per process copy —
    #: a forked worker starts from the parent's remaining budget).
    count: int = 1
    #: Keep firing in respawned workers (later generations); the lever that
    #: exhausts retry budgets.
    refire: bool = False
    #: Generation the spec was armed in (filled by :func:`configure`).
    armed_generation: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.point not in _POINTS:
            raise ValueError(f"unknown fault point '{self.point}'; expected one of {_POINTS}")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if self.lag < 0:
            raise ValueError("lag must be >= 0")


_specs: List[FaultSpec] = []
_generation = 0
_env_loaded = False


def configure(*specs: FaultSpec) -> None:
    """Arm the given specs (replacing any already armed)."""
    global _specs, _env_loaded
    _env_loaded = True  # explicit configuration overrides the environment
    for spec in specs:
        spec.armed_generation = _generation
    _specs = list(specs)


def clear() -> None:
    """Disarm everything (tests call this in teardown)."""
    global _specs, _env_loaded, _generation
    _specs = []
    _generation = 0
    _env_loaded = True


def active_specs() -> List[FaultSpec]:
    """The currently armed specs (after env loading)."""
    _ensure_env()
    return list(_specs)


def parse_spec(text: str) -> FaultSpec:
    """Parse one ``point:key=value:flag`` fragment of ``REPRO_FAULTS``."""
    parts = [part for part in text.strip().split(":") if part]
    if not parts:
        raise ValueError("empty fault spec")
    kwargs: Dict[str, object] = {}
    for part in parts[1:]:
        if "=" in part:
            key, value = part.split("=", 1)
            if key in ("shard", "step", "epoch", "count", "lag"):
                kwargs[key] = int(value)
            elif key == "delay":
                kwargs[key] = float(value)
            elif key == "phase":
                kwargs[key] = value
            else:
                raise ValueError(f"unknown fault spec field '{key}'")
        elif part == "refire":
            kwargs["refire"] = True
        else:
            raise ValueError(f"malformed fault spec fragment '{part}'")
    return FaultSpec(parts[0], **kwargs)


def load_env(value: Optional[str] = None) -> None:
    """Arm specs from ``REPRO_FAULTS`` (or an explicit string)."""
    text = os.environ.get(ENV_VAR, "") if value is None else value
    specs = [parse_spec(part) for part in text.split(",") if part.strip()]
    configure(*specs)


def _ensure_env() -> None:
    """Lazily pick up ``REPRO_FAULTS`` the first time any hook is consulted."""
    global _env_loaded
    if not _env_loaded:
        _env_loaded = True
        if os.environ.get(ENV_VAR):
            load_env()


def mark_respawn() -> None:
    """Advance the generation before re-forking a worker.

    Called by the worker supervisor so the replacement worker (which inherits
    this module's state through fork) does not re-fire the one-shot fault
    that killed its predecessor.
    """
    global _generation
    _ensure_env()
    _generation += 1


def _matches(spec: FaultSpec, point: str, context: Dict[str, object]) -> bool:
    if spec.point != point or spec.count <= 0:
        return False
    if not spec.refire and spec.armed_generation != _generation:
        return False
    for key in ("shard", "step", "phase", "epoch"):
        wanted = getattr(spec, key)
        if wanted is not None and context.get(key) != wanted:
            return False
    return True


def fire(point: str, **context: object) -> Optional[FaultSpec]:
    """Return (and consume one count of) the first matching armed spec."""
    _ensure_env()
    if not _specs:  # the hot-path fast exit
        return None
    for spec in _specs:
        if _matches(spec, point, context):
            spec.count -= 1
            return spec
    return None


# ----------------------------------------------------------------------
# site-specific hooks
# ----------------------------------------------------------------------
def worker_step(shard: int, step: int, phase: str = "step") -> None:
    """Worker-side hook at the top of every step (and pool phase).

    Order matters: a slow step completes, a hang blocks until the parent's
    deadline kills the worker, an exit dies instantly.
    """
    spec = fire("worker_slow", shard=shard, step=step, phase=phase)
    if spec is not None:
        time.sleep(spec.delay)
    spec = fire("worker_hang", shard=shard, step=step, phase=phase)
    if spec is not None:
        time.sleep(spec.delay or 3600.0)
    spec = fire("worker_exit", shard=shard, step=step, phase=phase)
    if spec is not None:
        os._exit(FAULT_EXIT_CODE)


def checkpoint_should_crash() -> bool:
    """Checkpoint-writer hook between the temp write and the atomic rename."""
    return fire("checkpoint_crash") is not None


def checkpoint_should_corrupt() -> bool:
    """Checkpoint-writer hook after a successful write."""
    return fire("checkpoint_corrupt") is not None


def parent_boundary(epoch: Optional[int] = None, step: Optional[int] = None) -> None:
    """Parent-side hook at epoch/step boundaries (after due checkpoints)."""
    if fire("parent_exit", epoch=epoch, step=step) is not None:
        os._exit(FAULT_EXIT_CODE)


def reload_should_corrupt(phase: str) -> bool:
    """Hot-reloader hook: corrupt the artifact handled at ``phase``.

    ``phase="file"`` corrupts the checkpoint archive before loading;
    ``phase="table"`` corrupts the freshly built shadow store tables.  A
    phase-less spec fires at the first site reached (``file``).
    """
    return fire("reload_corrupt", phase=phase) is not None


def reload_crash_point(phase: str) -> None:
    """Hard-kill hook inside the reload/publish critical sections.

    ``phase="publish"`` sits between the store's shadow ``.npz`` write and
    its atomic rename; ``phase="swap"`` sits between the shadow store build
    and the in-process swap.
    """
    if fire("reload_crash", phase=phase) is not None:
        os._exit(FAULT_EXIT_CODE)


def injected_staleness_lag() -> Optional[int]:
    """Scorer-side hook: an artificial staleness lag, or ``None``."""
    spec = fire("store_stale")
    return spec.lag if spec is not None else None


def scorer_chunk(chunk: int) -> None:
    """Scorer-side hook at the top of every micro-batch (``step`` = index)."""
    spec = fire("scorer_slow", step=chunk)
    if spec is not None:
        time.sleep(spec.delay)
