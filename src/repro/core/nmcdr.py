"""The NMCDR model (Section II): neural node matching for multi-target CDR.

The model is built from the components defined in this package:

* :class:`HeterogeneousGraphEncoder` — per-domain user–item message passing;
* :class:`IntraNodeMatching` — within-domain head/tail user matching;
* :class:`InterNodeMatching` — cross-domain matching for overlapped and
  non-overlapped users;
* :class:`IntraNodeComplementing` — user-to-item virtual links correcting
  under-represented (tail) users;
* :class:`PredictionHead` — shared scoring MLP, also used by the companion
  objectives of every stage.

One forward pass produces the staged user representations ``u_g0 .. u_g4`` for
*both* domains simultaneously (the inter matching step couples them), which is
also what lets the joint trainer optimise both domains' losses from a single
graph traversal (Eq. 24).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..data.dataloader import Batch
from ..graph import MatchingNeighborSampler, SubgraphCache
from ..nn import Embedding, ModelCapabilities, Module, ModuleList
from ..profiling import profiler
from ..tensor import Tensor, no_grad, ops
from ..tensor.engine import get_dtype
from .complementing import IntraNodeComplementing
from .config import NMCDRConfig
from .encoder import HeterogeneousGraphEncoder
from .inter_matching import InterNodeMatching
from .intra_matching import IntraNodeMatching
from .plan_schedule import PlanSchedule, PoolShardedPlanner, plan_structure_key
from .prediction import PredictionHead
from .sharded import ShardLoss
from .subgraph_plan import (
    PoolExchange,
    SubgraphPlan,
    SubgraphSettings,
    build_pool_exchange,
    build_subgraph_plan,
    build_subgraph_plan_from_pools,
    sample_matching_pools,
)
from .task import CDRTask, DOMAIN_KEYS

__all__ = ["NMCDR", "DomainRepresentations"]


@dataclass
class _PoolShardStepState:
    """Worker-side state carried between the phases of a pool-sharded step.

    ``reps`` holds the live phase-1 autograd graph (stages 0/1); ``leaves``
    the phase-2 boundary leaf tensors whose accumulated gradients seed the
    phase-3 encoder backward.
    """

    plan: SubgraphPlan
    reps: Dict[str, DomainRepresentations]
    batches: Dict[str, Optional[Batch]]
    full_sizes: Optional[Dict[str, int]]
    leaves: Dict[str, Dict[str, Tensor]] = field(default_factory=dict)


#: Stage names in pipeline order; ``user_g4`` feeds the final prediction loss.
STAGES = ("user_g0", "user_g1", "user_g2", "user_g3", "user_g4")


class _PoolReplaySampler:
    """Sampler that replays pre-drawn matching pools in full-forward order.

    The sharded executor draws every pool of a step in the parent process
    (:func:`~repro.core.subgraph_plan.sample_matching_pools`) and ships them
    to the shard workers; a worker running the *full-graph* forward (replica
    mode, ``n_shards=1``) injects them through this object so the forward
    consumes the exact pools of the serial stream without touching any rng.
    """

    def __init__(self, intra_pools, inter_pools, config: NMCDRConfig) -> None:
        self._draws = []
        for layer in range(config.num_matching_layers):
            if config.use_intra_matching:
                for key in DOMAIN_KEYS:
                    self._draws.append(("partition", intra_pools[key][layer]))
            if config.use_inter_matching:
                for key in DOMAIN_KEYS:
                    self._draws.append(("pool", inter_pools[key][layer]))
        self._cursor = 0

    def _next(self, kind: str):
        if self._cursor >= len(self._draws) or self._draws[self._cursor][0] != kind:
            raise RuntimeError(
                "matching-pool replay out of sync with the forward pass "
                f"(wanted a {kind!r} draw at position {self._cursor})"
            )
        value = self._draws[self._cursor][1]
        self._cursor += 1
        return value

    def sample_partition(self, partition):
        return self._next("partition")

    def sample(self, candidates):
        return self._next("pool")


class DomainRepresentations(dict):
    """Per-domain staged representations produced by one forward pass.

    Keys: ``user_g0`` (look-up), ``user_g1`` (graph encoder), ``user_g2``
    (intra matching), ``user_g3`` (inter matching), ``user_g4``
    (complementing) and ``items`` (item representations used for scoring).
    """


class _DomainParameters(Module):
    """All learnable parameters owned by a single domain."""

    def __init__(self, num_users: int, num_items: int, config: NMCDRConfig, rng: np.random.Generator) -> None:
        super().__init__()
        dim = config.embedding_dim
        self.user_embedding = Embedding(num_users, dim, rng=rng)
        self.item_embedding = Embedding(num_items, dim, rng=rng)
        self.encoder = HeterogeneousGraphEncoder(
            dim,
            config.resolved_hge_dim,
            num_layers=config.num_encoder_layers,
            kernel=config.gnn_kernel,
            rng=rng,
        )
        self.intra_layers = ModuleList(
            [
                IntraNodeMatching(config.resolved_hge_dim, config.resolved_igm_dim, rng=rng)
                for _ in range(config.num_matching_layers)
            ]
        )
        self.inter_layers = ModuleList(
            [
                InterNodeMatching(config.resolved_igm_dim, config.resolved_cgm_dim, rng=rng)
                for _ in range(config.num_matching_layers)
            ]
        )
        self.complementing = IntraNodeComplementing(
            config.resolved_cgm_dim, config.resolved_ref_dim, rng=rng
        )
        self.prediction = PredictionHead(
            config.resolved_ref_dim,
            config.resolved_hge_dim,
            hidden_sizes=config.prediction_hidden,
            dropout=config.dropout,
            rng=rng,
        )


class NMCDR(Module):
    """Neural node matching model for a two-domain CDR task."""

    def __init__(self, task: CDRTask, config: Optional[NMCDRConfig] = None) -> None:
        super().__init__()
        self.task = task
        self.config = config or NMCDRConfig()
        rng = np.random.default_rng(self.config.seed)
        self.domain_a_params = _DomainParameters(
            task.domain_a.num_users, task.domain_a.num_items, self.config, rng
        )
        self.domain_b_params = _DomainParameters(
            task.domain_b.num_users, task.domain_b.num_items, self.config, rng
        )
        self._sampler = MatchingNeighborSampler(
            self.config.max_matching_neighbors, rng=np.random.default_rng(self.config.seed + 1)
        )
        #: Pass-through sampler for pre-drawn pools (sampled-subgraph mode).
        self._identity_sampler = MatchingNeighborSampler(None)
        self._subgraph_settings: Optional[SubgraphSettings] = None
        self._subgraph_caches: Optional[Dict[str, SubgraphCache]] = None
        self._plan_schedule: Optional[PlanSchedule] = None
        self._pool_planner: Optional[PoolShardedPlanner] = None
        self._cache: Optional[Dict[str, Dict[str, np.ndarray]]] = None

    # ------------------------------------------------------------------
    # capability declaration
    # ------------------------------------------------------------------
    def capabilities(self) -> ModelCapabilities:
        """NMCDR implements every optional execution protocol in the repo."""
        return ModelCapabilities(
            encode_match_split=True,
            sharding=True,
            matching_pools=True,
            pool_exchange=True,
            subgraph_sampling=True,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _params(self, key: str) -> _DomainParameters:
        if key == "a":
            return self.domain_a_params
        if key == "b":
            return self.domain_b_params
        raise KeyError(f"unknown domain key '{key}'")

    # ------------------------------------------------------------------
    # sampled-subgraph training mode
    # ------------------------------------------------------------------
    def configure_subgraph_sampling(
        self,
        enabled: bool = True,
        *,
        num_hops: Optional[int] = None,
        fanout: Optional[int] = None,
        cache_size: int = 16,
        scheduled: bool = False,
    ) -> None:
        """Switch mini-batch training to k-hop subgraph forwards.

        When enabled, :meth:`compute_batch_loss` extracts the induced
        ``num_hops``-hop subgraph around each step's batch (plus every
        matching pool and overlap partner the pipeline reads) and runs the
        whole five-stage forward on local tensors, making the step cost a
        function of the batch rather than the graph.  Evaluation
        (:meth:`prepare_for_evaluation`) always uses the exact full-graph
        forward.

        ``num_hops`` defaults to the model's *exactness depth*:
        ``num_encoder_layers``, plus one hop for the GCN/GAT kernels (their
        normalisation — far-endpoint degrees resp. per-node attention
        softmaxes — reads the neighbourhood structure of the frontier
        nodes), plus one hop when node complementing is enabled (Eq. 18–19
        read the encoder outputs of the batch users' neighbour items, which
        in turn need *their* own encoder neighbourhood).  That default,
        together with ``fanout=None``, makes sampled training *exact*: the
        batch rows of every stage — and therefore losses and parameter
        gradients — match the full-graph forward to floating-point
        equality.  Smaller hop counts or a ``fanout`` cap trade exactness
        for bounded subgraphs.

        The per-domain subgraph cache holds at most ``cache_size`` induced
        subgraphs; signatures repeat (and hit) only when the step's seed
        sets do — e.g. with deterministic matching pools
        (``max_matching_neighbors=None``) and fixed negatives — so the
        default is kept small to bound memory on large graphs.

        ``scheduled=True`` replaces the per-step plan rebuild with a
        persistent :class:`~repro.core.plan_schedule.PlanSchedule`:
        delta-updated seed sets, an incremental k-hop expansion and pool
        draws in the same full-forward rng order — plans (and therefore
        losses and gradients) stay bit-identical to per-step building.
        """
        if not enabled:
            self._subgraph_settings = None
            self._subgraph_caches = None
            self._plan_schedule = None
            self._pool_planner = None
            return
        if num_hops is not None:
            resolved = num_hops
        else:
            resolved = max(self.config.num_encoder_layers, 1)
            if self.config.gnn_kernel.lower() in ("gcn", "gat"):
                resolved += 1
            if self.config.use_complementing:
                resolved += 1
        self._subgraph_settings = SubgraphSettings(num_hops=resolved, fanout=fanout)
        self._subgraph_caches = {key: SubgraphCache(cache_size) for key in DOMAIN_KEYS}
        self._plan_schedule = (
            PlanSchedule(
                self.task,
                self.config,
                self._subgraph_settings,
                self._sampler,
                self._subgraph_caches,
            )
            if scheduled
            else None
        )

    @property
    def subgraph_sampling_enabled(self) -> bool:
        return self._subgraph_settings is not None

    @property
    def plan_schedule(self) -> Optional[PlanSchedule]:
        """The active incremental plan schedule, if one is configured."""
        return self._plan_schedule

    def on_epoch_start(self, epoch: int) -> None:
        """Training-engine epoch hook: advance the plan schedule's epoch."""
        if self._plan_schedule is not None:
            self._plan_schedule.begin_epoch(epoch)

    # ------------------------------------------------------------------
    # traced step replay hooks (repro.tensor.trace)
    # ------------------------------------------------------------------
    def trace_signature(self) -> Tuple:
        """Structural key component for traced step replay (not per-batch)."""
        return (
            type(self).__name__,
            plan_structure_key(
                self._subgraph_settings,
                scheduled=self._plan_schedule is not None,
                pool_sharded=self._pool_planner is not None,
            ),
        )

    def trace_rng_sources(self) -> Tuple:
        """Generators a training step consumes (rewound on trace fallback)."""
        rng = self._sampler._rng
        return (rng,) if isinstance(rng, np.random.Generator) else ()

    # ------------------------------------------------------------------
    # forward pipeline
    # ------------------------------------------------------------------
    def _active_keys(self, plan: Optional[SubgraphPlan]) -> Tuple[str, ...]:
        return tuple(
            key for key in DOMAIN_KEYS if plan is None or plan.is_active(key)
        )

    def encode_representations(
        self,
        plan: Optional[SubgraphPlan] = None,
        *,
        keys: Optional[Tuple[str, ...]] = None,
    ) -> Dict[str, DomainRepresentations]:
        """Stages 0/1: look-up plus heterogeneous graph encoder, per domain.

        Returns partial :class:`DomainRepresentations` carrying ``user_g0``,
        ``user_g1`` and ``items`` — the encoder/matching boundary the
        pool-sharded executor exchanges activations across.  A pool-sharded
        domain that is active only through its exchange table (no local
        subgraph) gets empty zero-row tensors so the matching stage can
        concatenate the table uniformly.

        ``keys`` restricts encoding to the named domains.  A domain's
        encoder output depends only on that domain's embedding/encoder
        parameters and its training graph, so a caller holding valid
        encoder outputs for the other domain (the serving store's
        incremental refresh) may recompute one domain alone and splice the
        stored tensors back in before :meth:`match_representations`.
        """
        config = self.config
        reps: Dict[str, DomainRepresentations] = {}
        for key in self._active_keys(plan):
            if keys is not None and key not in keys:
                continue
            params = self._params(key)
            if plan is None:
                graph = self.task.domain(key).train_graph
                user_g0 = params.user_embedding.all()
                item_g0 = params.item_embedding.all()
            elif plan.domain(key).active:
                subgraph = plan.domain(key).subgraph
                graph = subgraph.graph
                user_g0 = params.user_embedding(subgraph.user_ids)
                item_g0 = params.item_embedding(subgraph.item_ids)
            else:
                # Table-only domain (pool-sharded, empty local subgraph).
                reps[key] = DomainRepresentations(
                    user_g0=Tensor(np.zeros((0, config.embedding_dim))),
                    user_g1=Tensor(np.zeros((0, config.resolved_hge_dim))),
                    items=Tensor(np.zeros((0, config.resolved_hge_dim))),
                )
                continue
            user_g1, item_g1 = params.encoder(graph, user_g0, item_g0)
            reps[key] = DomainRepresentations(user_g0=user_g0, user_g1=user_g1, items=item_g1)
        return reps

    def match_representations(
        self,
        reps: Dict[str, DomainRepresentations],
        plan: Optional[SubgraphPlan] = None,
        pool_tables: Optional[Dict[str, Tensor]] = None,
    ) -> Dict[str, DomainRepresentations]:
        """Stages 2–4: matching blocks and complementing over encoded reps.

        ``pool_tables`` (pool-sharded execution) appends the exchanged
        pool-activation table after each domain's local encoder rows; the
        plan's pool/overlap indices then address this *combined* row space.
        The table rows evolve through the same matching recursion as the
        replicated executor's single copies — bit-identical values by the
        encoder-exactness contract — while their encoder backward happens on
        their owning shards via the mirrored gradient exchange.
        """
        config = self.config
        active_keys = self._active_keys(plan)

        encoded_users: Dict[str, Tensor] = {}
        for key in active_keys:
            user_g1 = reps[key]["user_g1"]
            table = pool_tables.get(key) if pool_tables is not None else None
            if table is not None and table.shape[0]:
                user_g1 = ops.concat([user_g1, table], axis=0)
            encoded_users[key] = user_g1

        # Stage 2/3: stacked intra + inter matching blocks (coupled across domains).
        current: Dict[str, Tensor] = dict(encoded_users)
        intra_out: Dict[str, Tensor] = dict(encoded_users)
        inter_out: Dict[str, Tensor] = dict(encoded_users)
        for layer_index in range(config.num_matching_layers):
            # intra matching within each domain
            if config.use_intra_matching:
                for key in active_keys:
                    params = self._params(key)
                    if plan is None:
                        current[key] = params.intra_layers[layer_index](
                            current[key], self.task.domain(key).partition, self._sampler
                        )
                    else:
                        current[key] = params.intra_layers[layer_index](
                            current[key], pools=plan.domain(key).intra_pools[layer_index]
                        )
            intra_out = dict(current)

            # inter matching across domains (computed from the same input state)
            if config.use_inter_matching:
                pairs = self.task.overlap_pairs
                updated: Dict[str, Tensor] = {}
                for key in active_keys:
                    other = self.task.other_key(key)
                    if plan is None:
                        own_overlap = pairs[:, 0] if key == "a" else pairs[:, 1]
                        other_overlap = pairs[:, 1] if key == "a" else pairs[:, 0]
                        other_repr = current[other]
                        other_pool = self.task.non_overlap_indices(other)
                        sampler = self._sampler
                    else:
                        domain_plan = plan.domain(key)
                        own_overlap = domain_plan.overlap_own
                        other_overlap = domain_plan.overlap_other
                        # The pool was drawn when the plan was built (its
                        # users are subgraph seeds), so the pass-through
                        # sampler forwards the local ids untouched.
                        other_pool = domain_plan.inter_pools[layer_index]
                        other_repr = current.get(other)
                        if other_repr is None:
                            other_repr = Tensor(
                                np.zeros((0, current[key].shape[1]))
                            )
                        sampler = self._identity_sampler
                    updated[key] = self._params(key).inter_layers[layer_index](
                        current[key],
                        other_repr,
                        own_overlap,
                        other_overlap,
                        other_pool,
                        self._params(other).inter_layers[layer_index].cross,
                        sampler,
                    )
                current = updated
            inter_out = dict(current)

        for key in active_keys:
            reps[key]["user_g2"] = intra_out[key]
            reps[key]["user_g3"] = inter_out[key]

        # Stage 4: intra node complementing.
        for key in active_keys:
            params = self._params(key)
            if config.use_complementing:
                if plan is None:
                    graph = self.task.domain(key).train_graph
                else:
                    subgraph = plan.domain(key).subgraph
                    graph = subgraph.graph if subgraph is not None else None
                reps[key]["user_g4"] = params.complementing(
                    graph,
                    reps[key]["user_g3"],
                    reps[key]["items"],
                    num_users=reps[key]["user_g3"].shape[0],
                )
            else:
                reps[key]["user_g4"] = reps[key]["user_g3"]
        return reps

    def forward_representations(
        self, plan: Optional[SubgraphPlan] = None
    ) -> Dict[str, DomainRepresentations]:
        """Run the five-stage pipeline and return staged representations.

        Without a ``plan`` the pipeline propagates over the full graphs of
        both domains (the exact path used for evaluation).  With a
        :class:`SubgraphPlan` every stage operates on the plan's induced
        subgraph tensors: row ``i`` of each returned stage corresponds to
        global node ``plan.domain(key).subgraph.user_ids[i]`` (items
        likewise), and domains the plan marks inactive are skipped entirely.
        The pipeline is :meth:`encode_representations` (stages 0/1) followed
        by :meth:`match_representations` (stages 2–4) — the boundary the
        pool-sharded executor splits the step at.
        """
        return self.match_representations(self.encode_representations(plan), plan)

    # ------------------------------------------------------------------
    # training loss
    # ------------------------------------------------------------------
    def compute_batch_loss(self, batches: Dict[str, Optional[Batch]]) -> Tensor:
        """Total loss of Eq. 24 for the given per-domain mini-batches.

        ``batches`` maps domain keys to :class:`Batch` objects (``None`` skips
        a domain).  One forward pass serves both domains; when subgraph
        sampling is configured (:meth:`configure_subgraph_sampling`), that
        pass propagates only over the induced k-hop subgraph around the
        batches and the loss reads local rows.
        """
        plan: Optional[SubgraphPlan] = None
        if self._subgraph_settings is not None:
            with profiler.scope("plan/build"):
                if self._plan_schedule is not None:
                    plan = self._plan_schedule.plan_for(batches)
                else:
                    plan = build_subgraph_plan(
                        self.task,
                        self.config,
                        batches,
                        self._sampler,
                        self._subgraph_settings,
                        self._subgraph_caches,
                    )
        reps = self.forward_representations(plan)
        w_co_a, w_co_b, w_cls_a, w_cls_b = self.config.loss_weights
        total: Optional[Tensor] = None

        for key, companion_weight, cls_weight in (
            ("a", w_co_a, w_cls_a),
            ("b", w_co_b, w_cls_b),
        ):
            batch = batches.get(key)
            if batch is None or len(batch) == 0:
                continue
            if plan is not None:
                domain_plan = plan.domain(key)
                batch = Batch(
                    users=domain_plan.batch_users,
                    items=domain_plan.batch_items,
                    labels=batch.labels,
                )
            domain_loss = self._domain_loss(key, reps[key], batch, companion_weight, cls_weight)
            total = domain_loss if total is None else total + domain_loss

        if total is None:
            raise ValueError("compute_batch_loss needs at least one non-empty batch")
        return total

    def _domain_loss(
        self,
        key: str,
        reps: DomainRepresentations,
        batch: Batch,
        companion_weight: float,
        cls_weight: float,
        weight_batch_size: Optional[int] = None,
        return_example_terms: bool = False,
    ) -> Tensor:
        """Final (Eq. 23) plus companion (Eq. 22) losses for one domain.

        All stages share one prediction head, so the five per-stage scoring
        passes are batched into a single head invocation on the stacked
        stage rows: one MLP forward/backward instead of five, with the
        per-stage means recovered by a constant weight vector.  (With a
        non-zero head dropout this draws one mask across the stacked rows
        rather than five independent ones — the expectation is unchanged.)

        ``weight_batch_size`` overrides the per-stage mean's normaliser —
        the sharded executor computes micro-batch losses normalised by the
        *full* batch size so per-shard partial losses (and gradients) sum
        to the full-batch quantities.  ``return_example_terms=True``
        additionally returns the raw pre-reduction weighted loss-term
        array (one row per stacked stage row, in its natural pre-cast
        dtype), which the executor reassembles in canonical batch order
        and reduces exactly like the fused kernel; the returned loss
        tensor is the unchanged fused ``"sum"`` node either way, so the
        backward pass is the serial one verbatim.
        """
        params = self._params(key)
        batch_size = batch.users.shape[0]
        weight_size = weight_batch_size if weight_batch_size is not None else batch_size

        # Stage roster: the final prediction on u_g4 first, then the
        # companions u_g0 .. u_g3 when enabled.
        if self.config.use_companion:
            stages = ("user_g4", *STAGES[:4])
            stage_weights = (
                cls_weight,
                *(w * companion_weight for w in self.config.companion_weights),
            )
        else:
            stages = ("user_g4",)
            stage_weights = (cls_weight,)

        user_rows = ops.gather_concat_rows([reps[stage] for stage in stages], batch.users)
        item_rows = ops.gather_rows(reps["items"], np.tile(batch.items, len(stages)))
        predictions = params.prediction(user_rows, item_rows)

        labels = np.tile(batch.labels.reshape(-1, 1), (len(stages), 1))
        # sum_k weight_k * mean(bce over stage-k block), as one weighted sum.
        example_weights = np.repeat(
            np.asarray(stage_weights, dtype=predictions.data.dtype) / weight_size,
            batch_size,
        ).reshape(-1, 1)
        if return_example_terms:
            return ops.binary_cross_entropy_probs(
                predictions, labels, weights=example_weights, reduction="sum",
                return_terms=True,
            )
        return ops.binary_cross_entropy_probs(
            predictions, labels, weights=example_weights, reduction="sum"
        )

    # ------------------------------------------------------------------
    # sharded execution protocol
    # ------------------------------------------------------------------
    def supports_sharding(self) -> bool:
        return True

    def sample_step_pools(self):
        """Draw one training step's matching pools (parent-side, per step).

        Consumes exactly the sampler rng a serial training forward would —
        whether that forward is full-graph (pools drawn inside the matching
        layers) or plan-based (pools pre-drawn by the plan builder) — so a
        sharded run's parent rng stream, and therefore its mid-training
        evaluation, matches the serial executor's.
        """
        return sample_matching_pools(self.task, self.config, self._sampler)

    def compute_shard_loss(
        self,
        batches: Dict[str, Optional[Batch]],
        *,
        pools=None,
        full_sizes: Optional[Dict[str, int]] = None,
        localize: bool = False,
        include_extra: bool = True,
    ) -> "ShardLoss":
        """One shard's loss for its micro-batches (worker-side, rng-free).

        ``pools`` are the step's parent-drawn matching pools.  With
        ``localize=True`` the five-stage forward runs over the induced
        subgraph around the micro-batch (plus the pools' closure), so shard
        cost follows the micro-batch; with ``localize=False`` (the
        ``n_shards=1`` replica mode) the forward replays the serial
        computation verbatim — the model's own configured path, with the
        pools injected — and is bit-identical to the serial executor.
        Loss terms are normalised by ``full_sizes`` (the step's full batch
        sizes) so the per-shard losses and gradients decompose the
        full-batch quantities.
        """
        del include_extra  # NMCDR has no model-level extra losses
        if pools is None:
            raise ValueError("NMCDR shard steps need the parent-drawn matching pools")
        if not any(batch is not None and len(batch) > 0 for batch in batches.values()):
            # Every domain of this shard's micro-batch is empty (more shards
            # than batch users): contribute nothing instead of running a
            # pool-only forward.
            return ShardLoss()
        intra_pools, inter_pools = pools
        plan: Optional[SubgraphPlan] = None
        replay_sampler: Optional[_PoolReplaySampler] = None
        if localize or self._subgraph_settings is not None:
            settings = self._subgraph_settings
            caches = self._subgraph_caches
            if settings is None:
                # Workers localise at the exactness depth by default; the
                # executor configures this post-fork, so reaching this branch
                # means a caller drove the protocol directly.
                self.configure_subgraph_sampling(True)
                settings, caches = self._subgraph_settings, self._subgraph_caches
            plan = build_subgraph_plan_from_pools(
                self.task, self.config, batches, intra_pools, inter_pools, settings, caches
            )
        else:
            replay_sampler = _PoolReplaySampler(intra_pools, inter_pools, self.config)

        original_sampler = self._sampler
        if replay_sampler is not None:
            self._sampler = replay_sampler
        try:
            reps = self.forward_representations(plan)
        finally:
            self._sampler = original_sampler
        return self._shard_loss_terms(reps, batches, plan, full_sizes)

    def _shard_loss_terms(
        self,
        reps: Dict[str, DomainRepresentations],
        batches: Dict[str, Optional[Batch]],
        plan: Optional[SubgraphPlan],
        full_sizes: Optional[Dict[str, int]],
    ) -> "ShardLoss":
        """Assemble one shard's :class:`ShardLoss` from staged representations.

        Losses are normalised by the step's *full* batch sizes so per-shard
        partial losses (and gradients) sum to the full-batch quantities; the
        raw pre-reduction terms ride along for the parent's canonical-order
        reduction.
        """
        w_co_a, w_co_b, w_cls_a, w_cls_b = self.config.loss_weights
        total: Optional[Tensor] = None
        terms: Dict[str, np.ndarray] = {}
        for key, companion_weight, cls_weight in (
            ("a", w_co_a, w_cls_a),
            ("b", w_co_b, w_cls_b),
        ):
            batch = batches.get(key)
            if batch is None or len(batch) == 0:
                continue
            if plan is not None:
                domain_plan = plan.domain(key)
                local_batch = Batch(
                    users=domain_plan.batch_users,
                    items=domain_plan.batch_items,
                    labels=batch.labels,
                )
            else:
                local_batch = batch
            full_size = (full_sizes or {}).get(key, len(batch))
            loss, raw_terms = self._domain_loss(
                key,
                reps[key],
                local_batch,
                companion_weight,
                cls_weight,
                weight_batch_size=full_size,
                return_example_terms=True,
            )
            terms[key] = raw_terms
            total = loss if total is None else total + loss
        return ShardLoss(
            loss=total,
            terms=terms,
            reductions={key: "sum" for key in terms},
            value_dtype=str(total.data.dtype) if total is not None else None,
        )

    # ------------------------------------------------------------------
    # pool-sharded execution protocol (two-phase step)
    # ------------------------------------------------------------------
    def plan_pool_exchange(self, pools, n_shards: int) -> Optional[PoolExchange]:
        """Partition one step's matching-pool closure across shards.

        Called parent-side once per step with the pools
        :meth:`sample_step_pools` drew; the returned
        :class:`~repro.core.subgraph_plan.PoolExchange` ships to every
        worker with the step message.
        """
        if pools is None:
            return None
        intra_pools, inter_pools = pools
        return build_pool_exchange(self.task, intra_pools, inter_pools, n_shards)

    def exchange_table_spec(self):
        """``(row_dim, dtype_str)`` the shm exchange sizes activation tables by."""
        return int(self.config.resolved_hge_dim), np.dtype(get_dtype()).str

    def exchange_plane_hints(self) -> Dict[str, int]:
        """Per-domain table-row capacity hints for the shm exchange plane.

        A domain's pool closure can never exceed its user population, so
        sizing the per-domain activation/gradient tables at ``num_users``
        rows up front makes steady-state regrows structurally impossible
        (the pages are virtual until written).
        """
        return {key: int(self.task.domain(key).num_users) for key in DOMAIN_KEYS}

    def encode_shard_step(
        self,
        batches: Dict[str, Optional[Batch]],
        *,
        pools,
        exchange: PoolExchange,
        shard_index: int,
        full_sizes: Optional[Dict[str, int]] = None,
        publish=None,
    ):
        """Phase 1 of a pool-sharded step: encode, extract owned activations.

        Builds the shard's pool-partitioned plan (micro-batch closure plus
        the *owned* slice of the pool exchange — per-shard encoder cost
        follows ``batch + pool/n_shards``), runs stages 0/1, and returns the
        opaque step state together with the owned exchange users' encoder
        activations, ``{key: (n_owned, D) float array}``, for the parent's
        all-gather.

        With ``publish`` set (the shm exchange plane's table publisher),
        ``publish(key, user_g1, owned_local)`` is called per active domain —
        the publisher gathers the owned rows straight into its shared
        activation table — and ``publish(key, None, None)`` for domains with
        no owned rows; the returned activations dict is then ``None``.
        """
        if pools is None:
            raise ValueError("pool-sharded steps need the parent-drawn matching pools")
        intra_pools, inter_pools = pools
        if self._subgraph_settings is None:
            # Workers localise at the exactness depth by default; the
            # executor configures this post-fork, so reaching this branch
            # means a caller drove the protocol directly.
            self.configure_subgraph_sampling(True)
        planner = self._pool_planner
        if (
            planner is None
            or planner.shard_index != shard_index
            or planner.settings is not self._subgraph_settings
        ):
            planner = PoolShardedPlanner(
                self.task,
                self.config,
                self._subgraph_settings,
                self._subgraph_caches,
                shard_index,
            )
            self._pool_planner = planner
        plan = planner.plan_for(batches, intra_pools, inter_pools, exchange)
        reps = self.encode_representations(plan)
        dtype = get_dtype()
        state = _PoolShardStepState(
            plan=plan, reps=reps, batches=batches, full_sizes=full_sizes
        )
        if publish is not None:
            for key in DOMAIN_KEYS:
                domain_plan = plan.domain(key)
                if key in reps and domain_plan.owned_local.size:
                    publish(key, reps[key]["user_g1"], domain_plan.owned_local)
                else:
                    publish(key, None, None)
            return state, None
        activations: Dict[str, np.ndarray] = {}
        for key in DOMAIN_KEYS:
            domain_plan = plan.domain(key)
            if key in reps and domain_plan.owned_local.size:
                activations[key] = np.ascontiguousarray(
                    reps[key]["user_g1"].data[domain_plan.owned_local]
                )
            else:
                activations[key] = np.zeros(
                    (0, self.config.resolved_hge_dim), dtype=dtype
                )
        return state, activations

    def match_shard_step(
        self,
        state: "_PoolShardStepState",
        tables: Dict[str, np.ndarray],
        *,
        include_extra: bool = True,
        boundary_out: Optional[Dict[str, np.ndarray]] = None,
    ):
        """Phase 2: matching stages over local rows + the gathered pool table.

        The encoder outputs are re-entered as *detached boundary leaves* (a
        custom autograd boundary: the matching graph starts at fresh leaf
        tensors sharing the phase-1 arrays), the exchanged table joins them
        as one leaf per domain, and the backward pass of this phase stops at
        the boundary — accumulating matching/prediction parameter gradients,
        the boundary leaves' gradients (re-injected into the encoder graph
        in phase 3) and the table gradients returned here for the parent's
        mirrored scatter.  Returns ``(ShardLoss, {key: (E, D) grad array})``;
        the shard loss's ``loss`` field is already backwarded and cleared.
        """
        del include_extra  # NMCDR has no model-level extra losses
        plan = state.plan
        detached: Dict[str, DomainRepresentations] = {}
        table_leaves: Dict[str, Tensor] = {}
        dtype = get_dtype()
        for key in self._active_keys(plan):
            reps_k = state.reps[key]
            leaves = {
                name: Tensor(reps_k[name].data, requires_grad=True)
                for name in ("user_g0", "user_g1", "items")
            }
            detached[key] = DomainRepresentations(
                user_g0=leaves["user_g0"],
                user_g1=leaves["user_g1"],
                items=leaves["items"],
            )
            table = tables.get(key)
            if table is None:
                table = np.zeros(
                    (plan.domain(key).exchange_size, self.config.resolved_hge_dim),
                    dtype=dtype,
                )
            table_leaves[key] = Tensor(table, requires_grad=True)
            state.leaves[key] = leaves

        out = self.match_representations(detached, plan, pool_tables=table_leaves)
        result = self._shard_loss_terms(out, state.batches, plan, state.full_sizes)
        if result.loss is not None:
            result.loss.backward()
            result.loss = None
        boundary: Dict[str, np.ndarray] = {}
        for key, leaf in table_leaves.items():
            dest = None if boundary_out is None else boundary_out.get(key)
            if dest is not None:
                # Exchange-plane path: the caller pre-allocated the gradient
                # buffer (a shm reply-slot view), so the boundary never takes
                # an extra heap copy on its way to the wire.
                if leaf.grad is not None:
                    np.copyto(dest, leaf.grad)
                else:
                    dest[...] = 0.0
                boundary[key] = dest
            elif leaf.grad is not None:
                boundary[key] = np.array(leaf.grad, copy=True)
            else:
                boundary[key] = np.zeros(leaf.data.shape, dtype=leaf.data.dtype)
        return result, boundary

    def finish_shard_step(
        self, state: "_PoolShardStepState", owned_grads: Dict[str, np.ndarray]
    ) -> None:
        """Phase 3: one backward through the encoder graph (graph of phase 1).

        Seeds the encoder backward with the boundary leaves' accumulated
        gradients plus the summed table gradients of this shard's *owned*
        rows (scattered back by the parent in fixed shard order), expressed
        as a scalar surrogate ``Σ (activation · seed)`` whose single
        backward reproduces the exact vector-Jacobian products — so each
        phase traverses its own graph exactly once.
        """
        surrogate: Optional[Tensor] = None
        for key, leaves in state.leaves.items():
            domain_plan = state.plan.domain(key)
            g1_seed = leaves["user_g1"].grad
            own = owned_grads.get(key) if owned_grads else None
            if own is not None and own.size:
                if g1_seed is None:
                    g1_seed = np.zeros(
                        leaves["user_g1"].data.shape, dtype=leaves["user_g1"].data.dtype
                    )
                else:
                    g1_seed = np.array(g1_seed, copy=True)
                g1_seed[domain_plan.owned_local] += own
            for name, seed in (
                ("user_g0", leaves["user_g0"].grad),
                ("user_g1", g1_seed),
                ("items", leaves["items"].grad),
            ):
                if seed is None:
                    continue
                source = state.reps[key][name]
                if not source.requires_grad:
                    continue
                term = (source * seed).sum()
                surrogate = term if surrogate is None else surrogate + term
        if surrogate is not None and surrogate.requires_grad:
            surrogate.backward()

    # ------------------------------------------------------------------
    # evaluation interface
    # ------------------------------------------------------------------
    def prepare_for_evaluation(self) -> None:
        """Run one forward pass and cache representations for scoring."""
        self.eval()
        with no_grad():
            reps = self.forward_representations()
        self._cache = {
            key: {name: tensor.data.copy() for name, tensor in reps[key].items()}
            for key in DOMAIN_KEYS
        }
        self.train()

    def score(self, domain_key: str, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Affinity scores from the cached representations (Eq. 20)."""
        if self._cache is None:
            self.prepare_for_evaluation()
        cache = self._cache[domain_key]
        params = self._params(domain_key)
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        with no_grad():
            user_rows = Tensor(cache["user_g4"][users])
            item_rows = Tensor(cache["items"][items])
            probabilities = params.prediction(user_rows, item_rows)
        return probabilities.data.ravel()

    def score_pairs(
        self, domain_key: str, user_rows: np.ndarray, item_rows: np.ndarray
    ) -> np.ndarray:
        """Prediction-head probabilities for already-gathered representation rows.

        The serving tier gathers ``user_g4`` (or ``user_g3`` for cold-start
        users) and item rows from its persistent store and scores them here —
        the same head invocation :meth:`score` runs on its forward cache, so
        store-backed scoring is bit-identical to full rescoring.
        """
        params = self._params(domain_key)
        with no_grad():
            probabilities = params.prediction(Tensor(user_rows), Tensor(item_rows))
        return probabilities.data.ravel()

    def stage_representations(self, domain_key: str) -> Dict[str, np.ndarray]:
        """Cached per-stage user representations (used by the Fig. 5 analysis)."""
        if self._cache is None:
            self.prepare_for_evaluation()
        return dict(self._cache[domain_key])

    def invalidate_cache(self) -> None:
        """Drop cached representations (called by the trainer after each update)."""
        self._cache = None
