"""Intra node complementing module (Section II.E).

Corrects under-represented user embeddings by soft user-to-item matching over
the user's observed neighbourhood: Eq. 18 computes virtual link strengths as a
per-user softmax of inner products, and Eq. 19 adds the attention-weighted,
transformed item representations back onto the user representation.

The implementation works edge-wise so it is linear in the number of observed
interactions and fully differentiable (attention numerator/denominator are
both part of the autograd graph).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import InteractionGraph
from ..graph.message_passing import segment_softmax_attend
from ..nn import Linear, Module
from ..tensor import Tensor

__all__ = ["IntraNodeComplementing"]


class IntraNodeComplementing(Module):
    """Attention-based complementing of potentially missing interactions."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_dim != out_dim:
            raise ValueError(
                "node complementing requires in_dim == out_dim for the additive update of "
                f"Eq. 19 (got {in_dim} and {out_dim}); the paper sets D_cgm = D_ref"
            )
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.ref_transform = Linear(in_dim, out_dim, rng=rng)

    def forward(
        self,
        graph: Optional[InteractionGraph],
        user_repr: Tensor,
        item_repr: Tensor,
        num_users: Optional[int] = None,
    ) -> Tensor:
        """Return ``u_g4`` given ``u_g3`` and the item representations.

        Eq. 18 (per-user softmax of inner-product scores over the observed
        neighbourhood, max-shifted for stability) and Eq. 19 (attention-
        weighted transformed item messages added residually) run as one
        fused :func:`segment_softmax_attend` kernel; the item transform is
        applied to the item table once rather than per edge.

        ``num_users`` overrides the segment count when ``user_repr`` carries
        more rows than the graph (the pool-sharded combined row space appends
        exchange-table rows after the local subgraph rows; they have no
        observed edges, so their update is the identity — exactly what the
        segment softmax produces for edge-less segments).  ``graph=None``
        (a domain with no local subgraph at all) is treated as edge-less.
        """
        if graph is None or graph.num_edges == 0:
            return user_repr
        complemented = segment_softmax_attend(
            user_repr,
            item_repr,
            self.ref_transform(item_repr),
            graph.user_indices,
            graph.item_indices,
            num_users if num_users is not None else graph.num_users,
        )
        return user_repr + complemented

    def virtual_link_strengths(
        self,
        graph: InteractionGraph,
        user_repr: Tensor,
        item_repr: Tensor,
    ) -> np.ndarray:
        """Return the per-edge attention weights of Eq. 18 (analysis helper)."""
        edge_users = graph.user_indices
        edge_items = graph.item_indices
        scores = np.einsum(
            "ij,ij->i", user_repr.data[edge_users], item_repr.data[edge_items]
        )
        max_per_user = np.full(graph.num_users, -np.inf)
        np.maximum.at(max_per_user, edge_users, scores)
        max_per_user[~np.isfinite(max_per_user)] = 0.0
        exp_scores = np.exp(scores - max_per_user[edge_users])
        denominator = np.zeros(graph.num_users)
        np.add.at(denominator, edge_users, exp_scores)
        return exp_scores / (denominator[edge_users] + 1e-12)
