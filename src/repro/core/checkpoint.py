"""Deterministic training checkpoints: snapshot, atomic write, bit-exact resume.

A checkpoint captures the *complete* training state of a
:class:`~repro.core.engine.TrainingEngine` run:

* model parameters and the Adam moment buffers (plus ``step_count``/``lr``);
* the LR-scheduler epoch and the early-stopping counter;
* every rng stream a step consumes — the per-domain loader generators (as
  snapshotted by the data pipeline at epoch granularity, so the prefetch
  worker's lookahead does not leak into the saved state) and the model's
  step generators (:func:`repro.tensor.trace.model_rng_sources`, e.g.
  NMCDR's matching-pool sampler);
* the :class:`~repro.core.engine.TrainingHistory` including the
  early-stopping best state;
* the loop position: next epoch, steps already executed inside it, the
  partial epoch-loss accumulator and the global step counter.

Because the training engine's numerics are pure functions of (parameters,
optimiser state, rng streams, batch stream) — the repo-wide determinism
contract every executor is gated on — restoring all of the above and
replaying the loop from the recorded position produces **bit-identical**
float64 losses, metrics and final parameters to the uninterrupted run
(gated in ``tests/test_checkpoint_resume.py`` for the serial, sharded and
pool-sharded executors).

File format
-----------

One ``.npz`` archive per checkpoint: a JSON ``meta`` entry (format version,
position, rng states, scalar state, config fingerprint, payload digest) plus
``param::<name>``, ``adam_m::<i>`` / ``adam_v::<i>`` and ``best::<name>``
arrays.  Writes are atomic — temp file in the same directory, flush+fsync,
``os.replace`` — so a crash mid-write (fault-injected in the test suite) can
never leave a half-written file under a checkpoint name; retention keeps the
newest ``keep`` files.  Loads verify the format version, the required keys
and a SHA-256 digest over every array, and raise :class:`CheckpointError`
with a clear message on any mismatch — never a silent partial restore.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from . import faults
from .engine import Callback, EngineContext, TrainingHistory

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "ResumeState",
    "TrainingCheckpoint",
    "checkpoint_path",
    "list_checkpoints",
    "latest_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "restore_training_state",
    "CheckpointCallback",
]

#: Schema version of the checkpoint archive; bumped on incompatible changes.
CHECKPOINT_VERSION = 1

_FILE_PREFIX = "ckpt"

#: TrainerConfig fields that do not influence the training numerics and are
#: therefore free to differ between the checkpointing and the resuming run.
_VOLATILE_CONFIG_FIELDS = frozenset(
    {
        "verbose",
        "profile",
        "checkpoint_dir",
        "checkpoint_every",
        "checkpoint_every_steps",
        "checkpoint_keep",
        "worker_max_retries",
        "worker_retry_backoff",
        "worker_step_timeout",
        "degrade_on_failure",
        # Pure IPC-transport choice: shm and pickled pipes carry the same
        # payloads through the same fixed-order reductions, so a run may be
        # resumed under either without perturbing the numerics.
        "shm_exchange",
    }
)

#: History fields serialised verbatim into the meta blob (JSON round-trips
#: Python floats exactly, so the restored accumulators stay bit-identical).
_HISTORY_SCALARS = (
    "best_epoch",
    "best_validation_score",
    "train_seconds_per_batch",
    "num_batches",
    "step_seconds_total",
    "data_prep_seconds_total",
    "data_wait_seconds_total",
    "fit_wall_seconds",
    "worker_deaths",
    "worker_timeouts",
    "worker_respawns",
    "executor_degradations",
    "checkpoints_written",
)
_HISTORY_LISTS = (
    "epoch_losses",
    "validation_metrics",
    "epoch_wall_seconds",
    "learning_rates",
)


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, parsed or validated."""


@dataclass
class ResumeState:
    """Loop position a restored run continues from."""

    #: Epoch index the resumed loop enters first.
    next_epoch: int
    #: Steps of that epoch already executed (replayed, not re-run).
    steps_into_epoch: int
    #: Global step counter at the checkpoint.
    total_steps: int
    #: Partial epoch-loss sum accumulated over the already-executed steps.
    epoch_loss: float = 0.0


@dataclass
class TrainingCheckpoint:
    """In-memory form of one checkpoint archive."""

    meta: Dict
    parameters: Dict[str, np.ndarray]
    adam_m: List[np.ndarray]
    adam_v: List[np.ndarray]
    best_state: Optional[Dict[str, np.ndarray]] = None
    path: Optional[Path] = None

    @property
    def resume_state(self) -> ResumeState:
        position = self.meta["position"]
        return ResumeState(
            next_epoch=int(position["next_epoch"]),
            steps_into_epoch=int(position["steps_into_epoch"]),
            total_steps=int(position["total_steps"]),
            epoch_loss=float(position["epoch_loss"]),
        )


# ----------------------------------------------------------------------
# serialisation helpers
# ----------------------------------------------------------------------
def _json_default(value):
    """Convert numpy scalars so the meta blob stays pure JSON."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray) and value.ndim == 0:
        return value.item()
    raise TypeError(f"checkpoint meta cannot serialise {type(value).__name__}")


def _payload_digest(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over every array's name, dtype, shape and raw bytes."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def checkpoint_path(directory: Union[str, Path], epoch: int, total_steps: int) -> Path:
    """Canonical file name: sortable by (epoch, step) lexicographically."""
    return Path(directory) / f"{_FILE_PREFIX}-epoch{epoch:05d}-step{total_steps:09d}.npz"


def list_checkpoints(directory: Union[str, Path]) -> List[Path]:
    """All checkpoint files in ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"{_FILE_PREFIX}-epoch*-step*.npz"))


def latest_checkpoint(directory: Union[str, Path]) -> Optional[Path]:
    """The newest checkpoint in ``directory`` (``None`` when empty)."""
    found = list_checkpoints(directory)
    return found[-1] if found else None


def _prune(directory: Path, keep: int) -> None:
    for stale in list_checkpoints(directory)[:-keep] if keep > 0 else []:
        try:
            stale.unlink()
        except OSError:  # pragma: no cover — concurrent cleanup
            pass


def generator_state(rng) -> Dict:
    """JSON-safe snapshot of a ``numpy.random.Generator``."""
    return rng.bit_generator.state


def set_generator_state(rng, state: Dict) -> None:
    rng.bit_generator.state = state


def save_checkpoint(
    directory: Union[str, Path],
    *,
    model,
    optimizer,
    history: TrainingHistory,
    position: ResumeState,
    loader_rng_states: Dict[str, Dict],
    model_rng_states: Sequence[Dict],
    config_fingerprint: Dict,
    scheduler_state: Optional[Dict] = None,
    early_stopping_state: Optional[Dict] = None,
    keep: int = 3,
) -> Path:
    """Write one checkpoint atomically and prune old files; returns the path.

    The temp-write → fsync → ``os.replace`` sequence guarantees a checkpoint
    name only ever points at a complete archive; the injected
    ``checkpoint_crash`` fault (which dies between write and rename) is the
    test for exactly this property.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    arrays: Dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[f"param::{name}"] = value
    for index, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
        arrays[f"adam_m::{index}"] = m
        arrays[f"adam_v::{index}"] = v
    if history.best_state is not None:
        for name, value in history.best_state.items():
            arrays[f"best::{name}"] = value

    from ..tensor import engine as tensor_engine

    meta = {
        "format_version": CHECKPOINT_VERSION,
        "position": {
            "next_epoch": position.next_epoch,
            "steps_into_epoch": position.steps_into_epoch,
            "total_steps": position.total_steps,
            "epoch_loss": position.epoch_loss,
        },
        "rng": {
            "loaders": loader_rng_states,
            "model_sources": list(model_rng_states),
        },
        "optimizer": {
            "type": type(optimizer).__name__,
            "step_count": optimizer.step_count,
            "lr": optimizer.lr,
            "num_parameters": len(optimizer.parameters),
        },
        "scheduler": scheduler_state,
        "early_stopping": early_stopping_state,
        "history": {
            **{name: getattr(history, name) for name in _HISTORY_SCALARS},
            **{name: getattr(history, name) for name in _HISTORY_LISTS},
            "has_best_state": history.best_state is not None,
        },
        "config": config_fingerprint,
        "engine_dtype": tensor_engine.get_dtype().str,
        "digest": _payload_digest(arrays),
    }
    payload = dict(arrays)
    payload["meta"] = np.frombuffer(
        json.dumps(meta, default=_json_default).encode("utf-8"), dtype=np.uint8
    )

    final_path = checkpoint_path(directory, position.next_epoch, position.total_steps)
    fd, tmp_name = tempfile.mkstemp(
        prefix=final_path.name + ".tmp-", dir=str(directory)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        if faults.checkpoint_should_crash():
            # Simulated crash between write and rename: the temp file exists
            # but no checkpoint name ever points at it.
            raise CheckpointError("injected checkpoint-write crash before rename")
        os.replace(tmp_name, final_path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if faults.checkpoint_should_corrupt():
        # Simulated torn write: flip bytes in the middle of the finished
        # file so the loader's integrity checks must catch it.
        with open(final_path, "r+b") as handle:
            handle.seek(max(final_path.stat().st_size // 2, 0))
            handle.write(b"\xde\xad\xbe\xef" * 8)
    _prune(directory, keep)
    return final_path


def load_checkpoint(
    path: Union[str, Path], *, params_only: bool = False
) -> TrainingCheckpoint:
    """Parse and validate one checkpoint archive.

    Raises :class:`CheckpointError` on a missing file, a truncated or
    corrupted archive, an unknown format version or a digest mismatch — a
    checkpoint either restores completely or not at all.

    ``params_only`` is the inference-tier loading mode (``repro serve``):
    the optimizer moment buffers are neither materialised nor checked for
    completeness, so an archive whose Adam payload was stripped for
    deployment still loads — only the model parameters (and the
    early-stopping best state, when present) are returned.  The payload
    digest is always verified; a params-only load of a corrupted archive
    fails with the same clear integrity error as a full load.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        with np.load(path) as archive:
            if "meta" not in archive.files:
                raise CheckpointError(
                    f"{path} is not a training checkpoint (no meta entry)"
                )
            meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
            arrays = {
                name: archive[name] for name in archive.files if name != "meta"
            }
    except CheckpointError:
        raise
    except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError) as error:
        raise CheckpointError(
            f"checkpoint {path} is truncated or corrupted ({error!r}); "
            "restore from an older checkpoint"
        ) from error
    version = meta.get("format_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version!r}; this build "
            f"reads version {CHECKPOINT_VERSION} — re-train or convert"
        )
    digest = _payload_digest(arrays)
    if digest != meta.get("digest"):
        raise CheckpointError(
            f"checkpoint {path} failed integrity verification: payload "
            f"digest {digest[:12]}… does not match recorded "
            f"{str(meta.get('digest'))[:12]}…; the file is corrupted"
        )

    parameters = {
        name[len("param::"):]: value
        for name, value in arrays.items()
        if name.startswith("param::")
    }
    adam: Dict[str, List[np.ndarray]] = {"adam_m": [], "adam_v": []}
    if not params_only:
        for kind in ("adam_m", "adam_v"):
            entries = {
                int(name.split("::", 1)[1]): value
                for name, value in arrays.items()
                if name.startswith(f"{kind}::")
            }
            adam[kind] = [entries[index] for index in sorted(entries)]
    best_state = {
        name[len("best::"):]: value
        for name, value in arrays.items()
        if name.startswith("best::")
    }
    expected = int(meta["optimizer"]["num_parameters"])
    if not params_only and (
        len(adam["adam_m"]) != expected or len(adam["adam_v"]) != expected
    ):
        raise CheckpointError(
            f"checkpoint {path} is incomplete: expected {expected} Adam moment "
            f"pairs, found {len(adam['adam_m'])}/{len(adam['adam_v'])}"
        )
    if meta["history"].get("has_best_state") and not best_state:
        raise CheckpointError(
            f"checkpoint {path} is incomplete: early-stopping best state "
            "recorded in meta but missing from the payload"
        )
    return TrainingCheckpoint(
        meta=meta,
        parameters=parameters,
        adam_m=adam["adam_m"],
        adam_v=adam["adam_v"],
        best_state=best_state or None,
        path=path,
    )


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------
def config_fingerprint(config) -> Dict:
    """The numerics-relevant TrainerConfig fields, JSON-ready."""
    fingerprint = {}
    for name, value in vars(config).items():
        if name in _VOLATILE_CONFIG_FIELDS:
            continue
        fingerprint[name] = value
    return fingerprint


def restore_training_state(
    checkpoint: TrainingCheckpoint,
    *,
    model,
    optimizer,
    loaders: Dict[str, object],
    config,
    scheduler=None,
    early_stopping=None,
) -> tuple:
    """Load a checkpoint into live training objects; returns (history, resume).

    Every restore is strict: a config or dtype mismatch, an unknown loader
    key or a generator-count mismatch raises :class:`CheckpointError` rather
    than silently resuming a different run.
    """
    meta = checkpoint.meta
    from ..tensor import engine as tensor_engine

    live_dtype = tensor_engine.get_dtype().str
    if meta["engine_dtype"] != live_dtype:
        raise CheckpointError(
            f"checkpoint was written under engine dtype {meta['engine_dtype']} "
            f"but the current engine dtype is {live_dtype}"
        )
    saved_config = meta["config"]
    live_config = json.loads(
        json.dumps(config_fingerprint(config), default=_json_default)
    )
    if saved_config != live_config:
        changed = sorted(
            key
            for key in set(saved_config) | set(live_config)
            if saved_config.get(key) != live_config.get(key)
        )
        raise CheckpointError(
            "checkpoint config mismatch: resuming would not replay the "
            f"original run (differing fields: {changed})"
        )

    model.load_state_dict(checkpoint.parameters)
    model.invalidate_cache()

    if len(optimizer.parameters) != int(meta["optimizer"]["num_parameters"]):
        raise CheckpointError(
            "checkpoint optimiser state does not match the live model "
            f"({meta['optimizer']['num_parameters']} vs "
            f"{len(optimizer.parameters)} parameters)"
        )
    for index, (m, v) in enumerate(zip(checkpoint.adam_m, checkpoint.adam_v)):
        np.copyto(optimizer._m[index], m)
        np.copyto(optimizer._v[index], v)
    optimizer.step_count = int(meta["optimizer"]["step_count"])
    optimizer.lr = float(meta["optimizer"]["lr"])

    loader_states = meta["rng"]["loaders"]
    unknown = sorted(set(loader_states) - set(loaders))
    if unknown:
        raise CheckpointError(f"checkpoint loader rng for unknown domains: {unknown}")
    for key, state in loader_states.items():
        set_generator_state(loaders[key]._rng, state)

    from ..tensor.trace import model_rng_sources

    sources = model_rng_sources(model)
    saved_sources = meta["rng"]["model_sources"]
    if len(sources) != len(saved_sources):
        raise CheckpointError(
            f"checkpoint recorded {len(saved_sources)} model rng streams but "
            f"the live model exposes {len(sources)}"
        )
    for rng, state in zip(sources, saved_sources):
        set_generator_state(rng, state)

    scheduler_state = meta.get("scheduler")
    if scheduler is not None and scheduler_state is not None:
        scheduler.epoch = int(scheduler_state["epoch"])
        scheduler.base_lr = float(scheduler_state["base_lr"])
    elif (scheduler is None) != (scheduler_state is None):
        raise CheckpointError(
            "checkpoint and live engine disagree about LR-scheduler presence"
        )
    early_state = meta.get("early_stopping")
    if early_stopping is not None and early_state is not None:
        early_stopping.evals_without_improvement = int(
            early_state["evals_without_improvement"]
        )

    history = TrainingHistory()
    saved_history = meta["history"]
    for name in _HISTORY_SCALARS:
        if name in saved_history:
            setattr(history, name, saved_history[name])
    for name in _HISTORY_LISTS:
        setattr(history, name, list(saved_history.get(name, [])))
    history.best_state = checkpoint.best_state
    history.resumed_from = str(checkpoint.path) if checkpoint.path else "<memory>"
    return history, checkpoint.resume_state


# ----------------------------------------------------------------------
# the engine callback
# ----------------------------------------------------------------------
class CheckpointCallback(Callback):
    """Write checkpoints at the configured epoch/step cadence.

    Wired automatically by :class:`~repro.core.engine.TrainingEngine` when
    ``TrainerConfig.checkpoint_dir`` is set.  Epoch-cadence checkpoints are
    taken *after* the epoch's evaluation and callbacks completed (the
    engine's ``on_epoch_complete`` hook) so the early-stopping state in the
    file matches the loop position; step-cadence checkpoints record the
    loader rng as of the epoch start (the epoch's batch stream is a pure
    function of that state) plus how many steps to replay-and-skip.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        config = engine.config
        self.directory = Path(config.checkpoint_dir)
        self.every_epochs = int(config.checkpoint_every)
        self.every_steps = int(config.checkpoint_every_steps)
        self.keep = int(config.checkpoint_keep)
        self._epoch_loss = 0.0
        self._epoch_steps = 0

    # -- engine-side state the callback mirrors -------------------------
    def on_fit_start(self, context: EngineContext) -> None:
        resume = context.resume
        if resume is not None and resume.steps_into_epoch > 0:
            self._epoch_loss = resume.epoch_loss
            self._epoch_steps = resume.steps_into_epoch

    def on_epoch_start(self, context: EngineContext, epoch: int) -> None:
        resume = context.resume
        if not (
            resume is not None
            and epoch == resume.next_epoch
            and resume.steps_into_epoch > 0
        ):
            self._epoch_loss = 0.0
            self._epoch_steps = 0

    def on_step_end(self, context: EngineContext, step: int, loss: float) -> None:
        # Same accumulation order as the engine's epoch_loss, so a mid-epoch
        # checkpoint stores the bit-exact partial sum.
        self._epoch_loss += loss
        self._epoch_steps += 1
        if self.every_steps and step % self.every_steps == 0:
            self._save_mid_epoch(context)
        faults.parent_boundary(step=step)

    def on_epoch_complete(self, context: EngineContext, epoch: int) -> None:
        if self.every_epochs and (epoch + 1) % self.every_epochs == 0:
            self._save_epoch_boundary(context, epoch)
        faults.parent_boundary(epoch=epoch)

    # -- snapshot assembly ----------------------------------------------
    def _write(self, context: EngineContext, position: ResumeState, loader_rng) -> None:
        if loader_rng is None:
            raise CheckpointError(
                "the data pipeline did not expose loader rng snapshots; "
                "checkpointing requires pipeline-managed loaders"
            )
        from ..tensor.trace import model_rng_sources

        scheduler = self.engine.scheduler
        stopper = self.engine.early_stopper
        path = save_checkpoint(
            self.directory,
            model=context.model,
            optimizer=context.optimizer,
            history=context.history,
            position=position,
            loader_rng_states=loader_rng,
            model_rng_states=[
                generator_state(rng) for rng in model_rng_sources(context.model)
            ],
            config_fingerprint=json.loads(
                json.dumps(config_fingerprint(context.config), default=_json_default)
            ),
            scheduler_state=(
                {"epoch": scheduler.epoch, "base_lr": scheduler.base_lr}
                if scheduler is not None
                else None
            ),
            early_stopping_state=(
                {"evals_without_improvement": stopper.evals_without_improvement}
                if stopper is not None
                else None
            ),
            keep=self.keep,
        )
        context.history.checkpoints_written += 1
        context.history.last_checkpoint = str(path)

    def _save_epoch_boundary(self, context: EngineContext, epoch: int) -> None:
        # Loader rng as of *after* this epoch's production == before the
        # next epoch's; the pipeline snapshots it around materialisation so
        # prefetch lookahead cannot leak into the saved state.
        self._write(
            context,
            ResumeState(
                next_epoch=epoch + 1,
                steps_into_epoch=0,
                total_steps=context.history.num_batches,
                epoch_loss=0.0,
            ),
            context.pipeline.epoch_rng_after,
        )

    def _save_mid_epoch(self, context: EngineContext) -> None:
        self._write(
            context,
            ResumeState(
                next_epoch=context.epoch,
                steps_into_epoch=self._epoch_steps,
                total_steps=context.history.num_batches,
                epoch_loss=self._epoch_loss,
            ),
            context.pipeline.epoch_rng_before,
        )
