"""Persistent per-epoch subgraph-plan schedules for sampled training.

PR 2 rebuilt a :class:`~repro.core.subgraph_plan.SubgraphPlan` from scratch on
every training step: draw the matching pools, union the seed sets, run the
k-hop expansion over *all* seeds and extract the induced subgraph with scipy
fancy indexing.  At scale the plan build dominates the sampled-mode step cost
(it was the top open item in ROADMAP.md).  :class:`PlanSchedule` keeps the
construction incremental across the steps of an epoch:

* **Pools in the full-forward rng order.**  Pool sets are drawn lazily, one
  per executed step, consuming the model's matching-sampler rng exactly as
  the per-step builder would — which is what keeps scheduled training
  bit-identical to per-step training (and to the full-graph forward at the
  PR-2 exactness depth).  Skipped steps draw nothing, and a mid-training
  evaluation sees the same sampler state in both modes.
* **Delta-updated seed sets.**  The seed union decomposes as
  ``close(pools ∪ batch) = close(pools) ∪ close(batch)`` (partner closure
  distributes over unions), so the pool part — the *static closure* — is
  cached and only the small per-batch part is recomputed between consecutive
  steps.  With deterministic pools (``max_matching_neighbors=None``) the
  static closure is computed once and reused for the whole run.
* **Incremental k-hop expansion.**  The k-hop node set distributes over seed
  unions, so the static closure's expansion is computed once (on its first
  reuse) and each step only expands the batch delta — O(batch) frontier work
  instead of O(pools + batch).  This holds for fanout-capped expansion too:
  capped draws use the signature-stable per-node reservoir of
  :func:`repro.graph.sampling.sample_khop_nodes` (each node's kept neighbour
  subset is a pure hash of the node), so delta expansion no longer falls
  back to full per-step expansion when a fanout is set.
* **CSR-native extraction.**  The induced subgraph is assembled straight from
  the parent adjacency's CSR slices (:func:`repro.graph.induced_subgraph`),
  bypassing the scipy fancy-indexing path and the COO→CSR canonicalisation.

:class:`PoolShardedPlanner` applies the same incremental machinery inside a
pool-sharded shard worker: the *owned slice* of the step's pool exchange
plays the static closure's role (cached by content digest — the exchange
arrays arrive freshly unpickled every step, so identity keying would never
hit), and only the micro-batch delta is expanded per step.

Equivalence is structural, not approximate: for the same rng state and batch
sequence, :meth:`PlanSchedule.plan_for` returns plans whose arrays are
byte-identical to :func:`~repro.core.subgraph_plan.build_subgraph_plan`'s
(gated in ``tests/test_plan_schedule.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dataloader import Batch
from ..graph import MatchingNeighborSampler, SubgraphCache
from ..graph.sampling import sample_khop_nodes
from .config import NMCDRConfig
from .subgraph_plan import (
    PoolExchange,
    SubgraphPlan,
    SubgraphSettings,
    _sample_pools,
    batch_index_arrays,
    build_pool_sharded_plan,
    close_seed_users,
    finalize_subgraph_plan,
)
from .task import CDRTask, DOMAIN_KEYS

__all__ = [
    "PlanScheduleStats",
    "PlanSchedule",
    "PoolShardedPlanner",
    "plan_structure_key",
]

_EMPTY = np.empty(0, dtype=np.int64)


def plan_structure_key(
    settings: Optional[SubgraphSettings],
    scheduled: bool = False,
    pool_sharded: bool = False,
) -> Tuple:
    """Structural signature of the plan pipeline a model trains through.

    Used as the trace-section key component for traced step replay
    (:mod:`repro.tensor.trace`): two steps with the same structure key build
    autograd graphs with identical op sequences, so replay programs keyed on
    it get near-perfect hit rates.  Per-batch content (node sets, pool draws)
    deliberately stays out of the key — the trace guard re-validates every
    replayed op, so a key collision can only cost a re-trace, never
    correctness.
    """
    if settings is None:
        return ("full-graph",)
    return (
        "sampled",
        settings.num_hops,
        settings.fanout,
        bool(scheduled),
        bool(pool_sharded),
    )


@dataclass
class PlanScheduleStats:
    """Counters describing how much work the schedule actually avoided."""

    plans_built: int = 0
    static_closure_reuses: int = 0
    delta_expansions: int = 0
    full_expansions: int = 0
    epochs: int = 0


@dataclass
class _StaticClosure:
    """Cached pool-side seed closure, keyed by the pool arrays' identity.

    Holding strong references to the pool arrays makes the ``is``-based key
    sound: the referenced objects cannot be garbage collected (and their ids
    recycled) while this entry is alive.  Deterministic samplers return the
    task/partition-owned arrays themselves every step, so the key hits; a
    random sampler returns fresh arrays and the closure is rebuilt — exactly
    the per-step cost the schedule would have paid anyway.
    """

    pool_refs: Tuple[np.ndarray, ...]
    seed_users: Dict[str, np.ndarray]
    #: Per-domain k-hop (user_ids, item_ids) of the static seeds; populated
    #: lazily on the first reuse.
    node_sets: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None


def _flatten_pools(
    intra_pools: Dict[str, list], inter_pools: Dict[str, list]
) -> Tuple[np.ndarray, ...]:
    flat: List[np.ndarray] = []
    for key in DOMAIN_KEYS:
        for head, tail in intra_pools[key]:
            flat.append(head)
            flat.append(tail)
        flat.extend(inter_pools[key])
    return tuple(flat)


class PlanSchedule:
    """Incremental builder of per-step :class:`SubgraphPlan` objects."""

    def __init__(
        self,
        task: CDRTask,
        config: NMCDRConfig,
        settings: SubgraphSettings,
        sampler: MatchingNeighborSampler,
        caches: Dict[str, SubgraphCache],
    ) -> None:
        self.task = task
        self.config = config
        self.settings = settings
        self.sampler = sampler
        self.caches = caches
        self.stats = PlanScheduleStats()
        self._static: Optional[_StaticClosure] = None

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def begin_epoch(self, epoch: int) -> None:
        """Epoch-boundary hook; the schedule's caches survive across epochs.

        Nothing rng-related happens here: pool draws stay strictly lazy so an
        epoch with skipped (all-empty) steps consumes exactly as much sampler
        state as per-step building would.
        """
        self.stats.epochs += 1

    # ------------------------------------------------------------------
    # plan construction
    # ------------------------------------------------------------------
    def _static_closure(
        self, intra_pools: Dict[str, list], inter_pools: Dict[str, list]
    ) -> _StaticClosure:
        refs = _flatten_pools(intra_pools, inter_pools)
        cached = self._static
        if (
            cached is not None
            and len(cached.pool_refs) == len(refs)
            and all(a is b for a, b in zip(cached.pool_refs, refs))
        ):
            self.stats.static_closure_reuses += 1
            if cached.node_sets is None:
                # First reuse: the pools are stable, so the one-off expansion
                # of the static seeds now pays for itself every later step.
                # Valid under a fanout cap too: the per-node reservoir makes
                # capped expansion distribute over seed unions.
                cached.node_sets = {
                    key: sample_khop_nodes(
                        self.task.domain(key).train_graph,
                        cached.seed_users[key],
                        _EMPTY,
                        num_hops=self.settings.num_hops,
                        fanout=self.settings.fanout,
                    )
                    for key in DOMAIN_KEYS
                }
            return cached

        seed_parts: Dict[str, list] = {}
        for key in DOMAIN_KEYS:
            other = self.task.other_key(key)
            parts: List[np.ndarray] = []
            for head, tail in intra_pools[key]:
                parts.append(head)
                parts.append(tail)
            parts.extend(inter_pools[other])  # pools of `key`'s users
            seed_parts[key] = parts
        closure = _StaticClosure(
            pool_refs=refs, seed_users=close_seed_users(self.task, seed_parts)
        )
        self._static = closure
        return closure

    def plan_for(self, batches: Dict[str, Optional[Batch]]) -> SubgraphPlan:
        """Build this step's plan, reusing everything the epoch already paid for."""
        intra_pools, inter_pools = _sample_pools(self.task, self.config, self.sampler)
        batch_users, batch_items = batch_index_arrays(batches)
        static = self._static_closure(intra_pools, inter_pools)

        batch_closed = close_seed_users(
            self.task, {key: [batch_users[key]] for key in DOMAIN_KEYS}
        )

        node_sets: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None
        if static.node_sets is not None:
            # Every active domain gets explicit node sets below, so the
            # finalisation only reads the seed arrays for the is-this-domain
            # -active check — hand it a non-empty representative instead of
            # paying the full O(N) seed union every step.
            seed_users = {
                key: (
                    static.seed_users[key]
                    if static.seed_users[key].size
                    else batch_closed[key]
                )
                for key in DOMAIN_KEYS
            }
            # Delta expansion: k-hop distance to (S ∪ B) is the min of the
            # distances to S and to B, so the union of the two expansions is
            # exactly the single-pass expansion of the union.  With a fanout
            # cap the same identity holds on the per-node reservoir's subset
            # digraph (each node's capped neighbour draw is frontier- and
            # seed-independent).
            node_sets = {}
            for key in DOMAIN_KEYS:
                if seed_users[key].size == 0 and batch_items[key].size == 0:
                    continue
                delta_users = np.setdiff1d(
                    batch_closed[key], static.seed_users[key], assume_unique=True
                )
                delta = sample_khop_nodes(
                    self.task.domain(key).train_graph,
                    delta_users,
                    batch_items[key],
                    num_hops=self.settings.num_hops,
                    fanout=self.settings.fanout,
                )
                static_users, static_items = static.node_sets[key]
                merged_users = np.union1d(static_users, delta[0])
                merged_items = np.union1d(static_items, delta[1])
                # A union the same size as the static set *is* the static set
                # (the union is a superset); reusing the very same array
                # objects lets the subgraph cache's identity fast path skip
                # even the node-set hashing.
                if merged_users.size == static_users.size:
                    merged_users = static_users
                if merged_items.size == static_items.size:
                    merged_items = static_items
                node_sets[key] = (merged_users, merged_items)
            self.stats.delta_expansions += 1
        else:
            seed_users = {
                key: np.union1d(static.seed_users[key], batch_closed[key])
                for key in DOMAIN_KEYS
            }
            self.stats.full_expansions += 1

        self.stats.plans_built += 1
        return finalize_subgraph_plan(
            self.task,
            batch_users,
            batch_items,
            seed_users,
            intra_pools,
            inter_pools,
            self.settings,
            self.caches,
            node_sets=node_sets,
        )


class PoolShardedPlanner:
    """Incremental builder of pool-sharded per-step plans (worker-side).

    Mirrors :class:`PlanSchedule` for the pool-sharded execution mode: the
    shard's *owned slice* of the pool exchange is the static part — its
    k-hop expansion is cached and reused while the owned user set repeats
    (deterministic pools repeat it every step; random pools rebuild it,
    which is exactly the cost the per-step path would pay anyway) — and only
    the micro-batch closure is expanded per step.  Valid under a fanout cap
    too (the per-node reservoir makes capped expansion distribute over seed
    unions).  For the same exchange and batches the produced plans are
    byte-identical to :func:`~repro.core.subgraph_plan.build_pool_sharded_plan`
    without ``node_sets`` (gated in ``tests/test_pool_sharded_executor.py``).
    """

    def __init__(
        self,
        task: CDRTask,
        config: NMCDRConfig,
        settings: SubgraphSettings,
        caches: Dict[str, SubgraphCache],
        shard_index: int,
    ) -> None:
        self.task = task
        self.config = config
        self.settings = settings
        self.caches = caches
        self.shard_index = int(shard_index)
        self.stats = PlanScheduleStats()
        self._static_digest: Optional[Tuple[bytes, ...]] = None
        self._static_nodes: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    def _static_node_sets(
        self, owned: Dict[str, np.ndarray]
    ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        digest = tuple(owned[key].tobytes() for key in DOMAIN_KEYS)
        if digest == self._static_digest:
            self.stats.static_closure_reuses += 1
            return self._static_nodes
        self._static_nodes = {
            key: sample_khop_nodes(
                self.task.domain(key).train_graph,
                owned[key],
                _EMPTY,
                num_hops=self.settings.num_hops,
                fanout=self.settings.fanout,
            )
            for key in DOMAIN_KEYS
        }
        self._static_digest = digest
        return self._static_nodes

    def plan_for(
        self,
        batches: Dict[str, Optional[Batch]],
        intra_pools: Dict[str, list],
        inter_pools: Dict[str, list],
        exchange: PoolExchange,
    ) -> SubgraphPlan:
        """Build this shard's pool-sharded plan for one step."""
        owned = {
            key: exchange.owned_users(key, self.shard_index) for key in DOMAIN_KEYS
        }
        static_nodes = self._static_node_sets(owned)

        batch_users, batch_items = batch_index_arrays(batches)
        batch_closed = close_seed_users(
            self.task, {key: [batch_users[key]] for key in DOMAIN_KEYS}
        )

        node_sets: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for key in DOMAIN_KEYS:
            if (
                owned[key].size == 0
                and batch_closed[key].size == 0
                and batch_items[key].size == 0
            ):
                continue
            delta_users = np.setdiff1d(
                batch_closed[key], owned[key], assume_unique=True
            )
            delta = sample_khop_nodes(
                self.task.domain(key).train_graph,
                delta_users,
                batch_items[key],
                num_hops=self.settings.num_hops,
                fanout=self.settings.fanout,
            )
            static_users, static_items = static_nodes[key]
            merged_users = np.union1d(static_users, delta[0])
            merged_items = np.union1d(static_items, delta[1])
            # A union the same size as the static set *is* the static set;
            # reusing the same array objects lets the subgraph cache's
            # identity fast path skip even the node-set hashing.
            if merged_users.size == static_users.size:
                merged_users = static_users
            if merged_items.size == static_items.size:
                merged_items = static_items
            node_sets[key] = (merged_users, merged_items)
        self.stats.delta_expansions += 1
        self.stats.plans_built += 1

        return build_pool_sharded_plan(
            self.task,
            self.config,
            batches,
            intra_pools,
            inter_pools,
            exchange,
            self.shard_index,
            self.settings,
            self.caches,
            node_sets=node_sets,
            batch_closed=batch_closed,
        )
