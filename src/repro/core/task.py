"""Task bundle: everything a CDR model needs to train and evaluate on a scenario.

``CDRTask`` packages the leave-one-out splits, training interaction graphs,
head/tail partitions and overlap alignment of the two domains, so the NMCDR
model and every baseline consume exactly the same training signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..data.schema import CDRDataset, DomainData
from ..data.split import DomainSplit, leave_one_out_split
from ..graph import HeadTailPartition, InteractionGraph

__all__ = ["DomainTask", "CDRTask", "build_task", "DOMAIN_KEYS"]

DOMAIN_KEYS = ("a", "b")


@dataclass
class DomainTask:
    """Per-domain view of a CDR task."""

    key: str
    domain: DomainData
    split: DomainSplit
    train_graph: InteractionGraph
    partition: HeadTailPartition

    @property
    def num_users(self) -> int:
        return self.domain.num_users

    @property
    def num_items(self) -> int:
        return self.domain.num_items


@dataclass
class CDRTask:
    """A two-domain CDR training/evaluation task."""

    dataset: CDRDataset
    domain_a: DomainTask
    domain_b: DomainTask
    overlap_pairs: np.ndarray
    #: Memoised per-key derived index arrays (the task is immutable, yet the
    #: matching stages used to rebuild these O(num_users) arrays every step).
    _index_cache: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def domain(self, key: str) -> DomainTask:
        if key == "a":
            return self.domain_a
        if key == "b":
            return self.domain_b
        raise KeyError(f"unknown domain key '{key}'; expected 'a' or 'b'")

    def other_key(self, key: str) -> str:
        if key == "a":
            return "b"
        if key == "b":
            return "a"
        raise KeyError(f"unknown domain key '{key}'")

    @property
    def num_overlapping(self) -> int:
        return int(self.overlap_pairs.shape[0])

    def overlap_indices(self, key: str) -> np.ndarray:
        """Local indices of overlapped users in the requested domain (memoised).

        Returning the same array object every call (rather than a fresh view)
        lets identity-keyed downstream memos — the subgraph localisation
        cache in particular — recognise repeated lookups.
        """
        cached = self._index_cache.get(f"overlap_{key}")
        if cached is None:
            column = 0 if key == "a" else 1
            cached = np.ascontiguousarray(self.overlap_pairs[:, column])
            self._index_cache[f"overlap_{key}"] = cached
        return cached

    def non_overlap_indices(self, key: str) -> np.ndarray:
        """Local indices of non-overlapped users in the requested domain (memoised)."""
        cached = self._index_cache.get(f"non_overlap_{key}")
        if cached is None:
            domain = self.domain(key)
            mask = np.ones(domain.num_users, dtype=bool)
            mask[self.overlap_indices(key)] = False
            cached = np.where(mask)[0]
            self._index_cache[f"non_overlap_{key}"] = cached
        return cached

    def partner_lookup(self, key: str) -> np.ndarray:
        """Array mapping a local user index to its overlap partner in the other
        domain, or ``-1`` for non-overlapped users (memoised)."""
        cached = self._index_cache.get(f"partner_{key}")
        if cached is None:
            own_column = 0 if key == "a" else 1
            cached = -np.ones(self.domain(key).num_users, dtype=np.int64)
            if self.overlap_pairs.size:
                cached[self.overlap_pairs[:, own_column]] = self.overlap_pairs[:, 1 - own_column]
            self._index_cache[f"partner_{key}"] = cached
        return cached

    def summary(self) -> Dict:
        return {
            "scenario": self.dataset.name,
            "overlap": self.num_overlapping,
            "domain_a": {
                "name": self.domain_a.domain.name,
                "users": self.domain_a.num_users,
                "items": self.domain_a.num_items,
                "train_interactions": self.domain_a.split.num_train,
                "eval_users": self.domain_a.split.num_eval_users,
            },
            "domain_b": {
                "name": self.domain_b.domain.name,
                "users": self.domain_b.num_users,
                "items": self.domain_b.num_items,
                "train_interactions": self.domain_b.split.num_train,
                "eval_users": self.domain_b.split.num_eval_users,
            },
        }


def build_task(dataset: CDRDataset, head_threshold: int = 7) -> CDRTask:
    """Split both domains, build the training graphs and align the overlap.

    The training graph of each domain is built from *training* interactions
    only so the held-out validation/test positives never participate in
    message passing.
    """
    split_a = leave_one_out_split(dataset.domain_a)
    split_b = leave_one_out_split(dataset.domain_b)
    graph_a = split_a.train_domain().interaction_graph()
    graph_b = split_b.train_domain().interaction_graph()

    domain_a = DomainTask(
        key="a",
        domain=dataset.domain_a,
        split=split_a,
        train_graph=graph_a,
        partition=HeadTailPartition(graph_a.user_degrees(), head_threshold),
    )
    domain_b = DomainTask(
        key="b",
        domain=dataset.domain_b,
        split=split_b,
        train_graph=graph_b,
        partition=HeadTailPartition(graph_b.user_degrees(), head_threshold),
    )
    return CDRTask(
        dataset=dataset,
        domain_a=domain_a,
        domain_b=domain_b,
        overlap_pairs=dataset.overlap_pairs(),
    )
