"""The paper's primary contribution: the NMCDR model and its training harness."""

from .complementing import IntraNodeComplementing
from .config import NMCDRConfig, TrainerConfig
from .encoder import HeterogeneousGraphEncoder
from .engine import (
    Callback,
    EarlyStoppingCallback,
    EngineContext,
    LRSchedulerCallback,
    StepExecutor,
    TrainingEngine,
)
from .plan_schedule import PlanSchedule, PlanScheduleStats, PoolShardedPlanner
from .inter_matching import InterNodeMatching
from .intra_matching import IntraNodeMatching
from .nmcdr import NMCDR, DomainRepresentations
from .prediction import PredictionHead
from .representation import ModelCapabilities, RepresentationModel
from .sharded import PoolShardedStepExecutor, ShardedStepExecutor, ShardLoss
from .subgraph_plan import (
    DomainSubgraphPlan,
    PoolExchange,
    SubgraphPlan,
    SubgraphSettings,
    build_pool_exchange,
    build_pool_sharded_plan,
    build_subgraph_plan,
)
from .stability import (
    StabilityReport,
    empirical_prediction_deviation,
    spectral_norm,
    stability_report,
    theoretical_stability_bound,
)
from .task import CDRTask, DomainTask, DOMAIN_KEYS, build_task
from .trainer import CDRTrainer, TrainingHistory
from .variants import VARIANT_NAMES, build_variant, variant_config

__all__ = [
    "NMCDRConfig",
    "TrainerConfig",
    "HeterogeneousGraphEncoder",
    "IntraNodeMatching",
    "InterNodeMatching",
    "IntraNodeComplementing",
    "PredictionHead",
    "NMCDR",
    "DomainRepresentations",
    "ModelCapabilities",
    "RepresentationModel",
    "CDRTask",
    "DomainTask",
    "DOMAIN_KEYS",
    "build_task",
    "CDRTrainer",
    "TrainingHistory",
    "TrainingEngine",
    "StepExecutor",
    "ShardedStepExecutor",
    "PoolShardedStepExecutor",
    "ShardLoss",
    "PoolExchange",
    "PoolShardedPlanner",
    "build_pool_exchange",
    "build_pool_sharded_plan",
    "EngineContext",
    "Callback",
    "EarlyStoppingCallback",
    "LRSchedulerCallback",
    "PlanSchedule",
    "PlanScheduleStats",
    "VARIANT_NAMES",
    "variant_config",
    "build_variant",
    "SubgraphPlan",
    "DomainSubgraphPlan",
    "SubgraphSettings",
    "build_subgraph_plan",
    "StabilityReport",
    "spectral_norm",
    "theoretical_stability_bound",
    "empirical_prediction_deviation",
    "stability_report",
]
