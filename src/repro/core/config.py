"""Configuration dataclasses for the NMCDR model and the joint CDR trainer.

The defaults follow Section III.A.4 ("Parameter Settings") with sizes scaled
down for the synthetic CPU-only reproduction: the paper uses an embedding
dimension of 128, 512 matching neighbours and a batch size of 512 on an A100;
the reproduction defaults to 32 / 64 / 256 which preserve behaviour at a
fraction of the cost.  Every value is overridable per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

__all__ = ["NMCDRConfig", "TrainerConfig"]


@dataclass
class NMCDRConfig:
    """Hyper-parameters of the NMCDR architecture.

    Attributes
    ----------
    embedding_dim:
        Look-up table dimension ``D`` (Eq. 1).  The paper uses 128.
    hge_dim, igm_dim, cgm_dim, ref_dim:
        Transformation dimensions of the heterogeneous graph encoder, intra
        node matching, inter node matching and node complementing modules
        (``D_hge``, ``D_igm``, ``D_cgm``, ``D_ref``).  The paper sets all of
        them equal to ``D``; the same convention is kept here, so leaving them
        at ``None`` mirrors ``embedding_dim``.
    num_encoder_layers:
        Depth of the heterogeneous graph encoder.
    num_matching_layers:
        How many stacked intra+inter matching blocks to apply (the paper uses
        three graph aggregation layers in the matching module).
    gnn_kernel:
        ``"vanilla"`` (Eq. 2–4), ``"gcn"`` or ``"gat"``.
    head_threshold:
        ``K_head`` of Eq. 5 — users with more interactions are head users.
    max_matching_neighbors:
        Matching-neighbour sample size (512 in the paper, Fig. 3).
    companion_weights:
        ``w_1 .. w_4`` of Eq. 22 (per-stage companion losses).
    loss_weights:
        ``w_5 .. w_8`` of Eq. 24 (companion A, companion B, cls A, cls B).
    prediction_hidden:
        Hidden sizes of the stacked prediction MLP (Eq. 20).
    use_intra_matching / use_inter_matching / use_complementing / use_companion:
        Ablation switches corresponding to w/o-Igm, w/o-Cgm, w/o-Inc, w/o-Sup.
    """

    embedding_dim: int = 32
    hge_dim: Optional[int] = None
    igm_dim: Optional[int] = None
    cgm_dim: Optional[int] = None
    ref_dim: Optional[int] = None
    num_encoder_layers: int = 1
    num_matching_layers: int = 1
    gnn_kernel: str = "vanilla"
    head_threshold: int = 7
    max_matching_neighbors: Optional[int] = 64
    companion_weights: Tuple[float, float, float, float] = (1.0, 1.0, 1.0, 1.0)
    loss_weights: Tuple[float, float, float, float] = (1.0, 1.0, 1.0, 1.0)
    prediction_hidden: Tuple[int, ...] = (32,)
    dropout: float = 0.0
    use_intra_matching: bool = True
    use_inter_matching: bool = True
    use_complementing: bool = True
    use_companion: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.num_encoder_layers < 1:
            raise ValueError("num_encoder_layers must be >= 1")
        if self.num_matching_layers < 1:
            raise ValueError("num_matching_layers must be >= 1")
        if self.head_threshold < 0:
            raise ValueError("head_threshold must be non-negative")
        if len(self.companion_weights) != 4:
            raise ValueError(
                "companion_weights must have exactly four entries (w1..w4)",
            )
        if len(self.loss_weights) != 4:
            raise ValueError("loss_weights must have exactly four entries (w5..w8)")

    # Resolved transformation dimensions --------------------------------
    @property
    def resolved_hge_dim(self) -> int:
        return self.hge_dim or self.embedding_dim

    @property
    def resolved_igm_dim(self) -> int:
        return self.igm_dim or self.embedding_dim

    @property
    def resolved_cgm_dim(self) -> int:
        return self.cgm_dim or self.embedding_dim

    @property
    def resolved_ref_dim(self) -> int:
        return self.ref_dim or self.embedding_dim

    def variant(self, **overrides) -> "NMCDRConfig":
        """Return a copy with the given fields replaced (ablation helper)."""
        return replace(self, **overrides)


@dataclass
class TrainerConfig:
    """Training-loop hyper-parameters shared by NMCDR and every baseline."""

    num_epochs: int = 15
    batch_size: int = 256
    learning_rate: float = 5e-3
    weight_decay: float = 1e-6
    negatives_per_positive: int = 1
    grad_clip_norm: Optional[float] = 5.0
    early_stopping_patience: Optional[int] = None
    eval_every: int = 0
    num_eval_negatives: int = 99
    verbose: bool = False
    #: When true the trainer enables the global profiler for the duration of
    #: ``fit`` and stores the phase report on the returned history.
    profile: bool = False
    #: When true, models exposing ``configure_subgraph_sampling`` (NMCDR and
    #: the graph baselines) train on induced k-hop subgraphs around each
    #: mini-batch instead of the full graph, making step cost O(batch).
    #: Evaluation always runs the exact full-graph forward.  Models without
    #: graph propagation ignore the switch (they are already O(batch)).
    sampled_subgraph_training: bool = False
    #: Hop count of the sampled subgraph; ``None`` resolves to the model's
    #: exactness depth (encoder layers, plus one when node complementing is
    #: enabled), which with ``subgraph_fanout=None`` keeps sampled training
    #: numerically exact.
    subgraph_num_hops: Optional[int] = None
    #: Per-hop neighbour cap for high-degree nodes; ``None`` means no cap
    #: (exact neighbourhoods).  Setting it bounds subgraph size at the cost
    #: of approximate propagation for truncated nodes.
    subgraph_fanout: Optional[int] = None
    #: When true, sampled-subgraph training builds its plans through the
    #: persistent per-epoch :class:`~repro.core.plan_schedule.PlanSchedule`
    #: (delta-updated seed sets, incremental k-hop expansion) instead of
    #: rebuilding from scratch every step.  Plans — and therefore losses and
    #: gradients — are bit-identical to per-step building.
    scheduled_subgraph_plans: bool = False
    #: Background data prefetching: ``0`` (default) prepares batches on the
    #: training thread exactly like the historical loop (seed parity); any
    #: positive value runs the data pipeline on a worker thread buffering
    #: that many *epochs* ahead (``1`` = double buffering), overlapping
    #: epoch-boundary example materialisation and negative sampling with the
    #: training steps.  The batch sequence is identical under a fixed seed.
    prefetch_epochs: int = 0
    #: Which step executor drives the optimisation step: ``"serial"`` (the
    #: seed-parity default, in-process) or ``"sharded"`` — the data-parallel
    #: :class:`~repro.core.sharded.ShardedStepExecutor`, which splits every
    #: joint batch across ``n_shards`` forked worker processes over
    #: shared-memory parameters and reduces gradients with a fixed-order
    #: sum before one Adam update.
    executor: str = "serial"
    #: Worker-process count of the sharded executor (ignored when
    #: ``executor="serial"``).  ``1`` is the serial-replica mode: bit-exact
    #: against the serial executor while exercising the full process path.
    n_shards: int = 1
    #: Partition the matching-pool closure across the shards instead of
    #: replicating it into every shard's subgraph (requires
    #: ``executor="sharded"``).  Each step then runs the two-phase protocol
    #: of :class:`~repro.core.sharded.PoolShardedStepExecutor` — encode →
    #: activation all-gather → match/backward → gradient scatter → reduce —
    #: so per-shard cost follows ``batch + pool/n_shards`` at the price of
    #: one extra IPC round trip per step.  Replicated mode (the default)
    #: wins for small pools; pool sharding wins once the pool closure
    #: dominates per-shard work (see README "Distributed training").
    pool_sharding: bool = False
    #: Record each step's forward+backward into a flat replay program (one
    #: per plan signature) and replay it on subsequent steps instead of
    #: rebuilding the autograd graph: no per-step ``Tensor`` node allocation,
    #: no topological re-sort, activations/gradients reuse arena slabs.  A
    #: per-op guard falls back to eager execution and re-traces whenever a
    #: step diverges from its recording, so results are bit-identical to
    #: eager training (asserted in float64 by the ``traced`` test suite).
    #: Works with every executor — sharded workers each own a program cache.
    #: Requires ``dropout=0.0`` (per-module dropout draws cannot be rewound
    #: after a guard fallback).
    traced_steps: bool = False
    #: Carry the sharded executors' steady-state data-plane payloads —
    #: dispatch index sets, activation tables, summed table gradients, loss
    #: terms — through pre-allocated double-buffered shared-memory exchange
    #: blocks instead of pickling them over the worker pipes; pipes then
    #: carry only tiny control headers.  Bit-identical to the pickled path
    #: (same fixed-order reductions) and purely an IPC optimisation; set
    #: ``False`` to fall back to the PR-4/PR-5 pickled-pipe protocol.
    shm_exchange: bool = True
    #: Learning-rate schedule applied once per epoch: ``None`` keeps the
    #: fixed rate of the paper, ``"step"`` decays by ``lr_gamma`` every
    #: ``lr_step_size`` epochs, ``"exponential"`` decays by ``lr_gamma``
    #: every epoch.
    lr_scheduler: Optional[str] = None
    lr_step_size: int = 5
    lr_gamma: float = 0.5
    #: Directory for training checkpoints (``None`` disables checkpointing).
    #: Each checkpoint snapshots the *complete* training state — parameters,
    #: Adam moments, scheduler/early-stopping state, every rng stream and the
    #: history — so a killed run resumed via ``CDRTrainer.fit(resume_from=...)``
    #: (or ``repro resume``) replays the uninterrupted run bit-identically.
    checkpoint_dir: Optional[str] = None
    #: Epoch cadence of checkpoint writes (every N completed epochs, after
    #: that epoch's evaluation); ``0`` disables epoch-boundary checkpoints.
    checkpoint_every: int = 1
    #: Step cadence of mid-epoch checkpoints (every N global steps);
    #: ``0`` (default) disables mid-epoch checkpoints.
    checkpoint_every_steps: int = 0
    #: Retention: keep only the newest K checkpoint files (``0`` keeps all).
    checkpoint_keep: int = 3
    #: Supervised sharded execution: how many times a dead or hung shard
    #: worker is respawned (with the in-flight step replayed from the
    #: parent's retained dispatch) before the failure is considered
    #: persistent.  ``0`` (default) keeps the PR-4 fail-fast contract: any
    #: worker death or hang raises immediately.
    worker_max_retries: int = 0
    #: Base backoff between respawn attempts, doubled per retry.
    worker_retry_backoff: float = 0.05
    #: Seconds the parent waits for one shard's step result before treating
    #: the worker as hung.
    worker_step_timeout: float = 600.0
    #: After the retry budget is exhausted, rebuild the executor at fewer
    #: shards (halving down to serial in-parent execution) from the last
    #: consistent state instead of raising — training completes, degraded.
    degrade_on_failure: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_epochs <= 0:
            raise ValueError("num_epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.negatives_per_positive <= 0:
            raise ValueError("negatives_per_positive must be positive")
        if self.subgraph_num_hops is not None and self.subgraph_num_hops < 1:
            raise ValueError("subgraph_num_hops must be >= 1 or None")
        if self.subgraph_fanout is not None and self.subgraph_fanout < 1:
            raise ValueError("subgraph_fanout must be >= 1 or None")
        if self.prefetch_epochs < 0:
            raise ValueError("prefetch_epochs must be >= 0")
        if self.executor not in ("serial", "sharded"):
            raise ValueError("executor must be 'serial' or 'sharded'")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.pool_sharding and self.executor != "sharded":
            raise ValueError("pool_sharding requires executor='sharded'")
        if self.lr_scheduler is not None:
            from ..optim.scheduler import SCHEDULER_NAMES

            if self.lr_scheduler not in SCHEDULER_NAMES:
                raise ValueError(
                    f"lr_scheduler must be None or one of {SCHEDULER_NAMES}"
                )
        if self.lr_step_size < 1:
            raise ValueError("lr_step_size must be >= 1")
        if self.lr_gamma <= 0:
            raise ValueError("lr_gamma must be positive")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.checkpoint_every_steps < 0:
            raise ValueError("checkpoint_every_steps must be >= 0")
        if self.checkpoint_keep < 0:
            raise ValueError("checkpoint_keep must be >= 0")
        if (
            self.checkpoint_dir is not None
            and not self.checkpoint_every
            and not self.checkpoint_every_steps
        ):
            raise ValueError(
                "checkpoint_dir is set but both checkpoint cadences are 0"
            )
        if self.worker_max_retries < 0:
            raise ValueError("worker_max_retries must be >= 0")
        if self.worker_retry_backoff < 0:
            raise ValueError("worker_retry_backoff must be >= 0")
        if self.worker_step_timeout <= 0:
            raise ValueError("worker_step_timeout must be positive")

    def variant(self, **overrides) -> "TrainerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)
