"""Joint two-domain training loop shared by NMCDR and all baselines.

Any model implementing the small protocol below can be trained:

* ``parameters()`` — trainable parameters (provided by :class:`repro.nn.Module`);
* ``compute_batch_loss(batches)`` — scalar loss :class:`Tensor` for a dict of
  per-domain :class:`~repro.data.Batch` objects;
* ``prepare_for_evaluation()`` / ``invalidate_cache()`` — representation cache
  management around parameter updates;
* ``score(domain_key, users, items)`` — the :class:`repro.metrics.Scorer`
  interface used by the ranking evaluator.

The trainer draws one mini-batch per domain per step (the multi-target
setting: both domains are optimised simultaneously, Eq. 24) and optionally
evaluates on the validation split for early stopping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import zip_longest
from typing import Dict, List, Optional

import numpy as np

from ..data.dataloader import InteractionDataLoader
from ..metrics.evaluator import RankingEvaluator
from ..optim import Adam, clip_grad_norm
from ..profiling import profiler
from .config import TrainerConfig
from .task import CDRTask, DOMAIN_KEYS

__all__ = ["TrainingHistory", "CDRTrainer"]


@dataclass
class TrainingHistory:
    """Per-epoch records collected during :meth:`CDRTrainer.fit`."""

    epoch_losses: List[float] = field(default_factory=list)
    validation_metrics: List[Dict[str, Dict[str, float]]] = field(default_factory=list)
    best_epoch: int = -1
    best_validation_score: float = -np.inf
    train_seconds_per_batch: float = 0.0
    num_batches: int = 0
    best_state: Optional[Dict[str, np.ndarray]] = None
    #: Phase/op report collected when ``TrainerConfig.profile`` is set.
    profile_report: Optional[str] = None

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class CDRTrainer:
    """Joint trainer for one two-domain CDR task."""

    def __init__(self, model, task: CDRTask, config: Optional[TrainerConfig] = None) -> None:
        self.model = model
        self.task = task
        self.config = config or TrainerConfig()
        if self.config.sampled_subgraph_training and hasattr(
            model, "configure_subgraph_sampling"
        ):
            # Models without graph propagation (most non-graph baselines) are
            # already O(batch) per step and simply train full-batch.
            model.configure_subgraph_sampling(
                True,
                num_hops=self.config.subgraph_num_hops,
                fanout=self.config.subgraph_fanout,
            )
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        rng = np.random.default_rng(self.config.seed)
        self._loaders = {
            key: InteractionDataLoader(
                task.domain(key).split,
                batch_size=self.config.batch_size,
                negatives_per_positive=self.config.negatives_per_positive,
                rng=np.random.default_rng(rng.integers(0, 2**32 - 1)),
            )
            for key in DOMAIN_KEYS
        }
        self._valid_evaluators: Optional[Dict[str, RankingEvaluator]] = None
        self._eval_rng_seed = int(rng.integers(0, 2**32 - 1))

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self) -> TrainingHistory:
        """Train for ``num_epochs`` epochs and return the training history."""
        history = TrainingHistory()
        if self.config.profile:
            profiler.reset()
            profiler.enable()
        try:
            self._fit_loop(history)
        finally:
            # The profiler installs process-wide engine hooks; they must come
            # off even when training is interrupted mid-epoch.
            if self.config.profile:
                history.profile_report = profiler.report()
                profiler.disable()

        if history.best_state is not None:
            self.model.load_state_dict(history.best_state)
            self.model.invalidate_cache()
        return history

    def _fit_loop(self, history: TrainingHistory) -> None:
        patience = self.config.early_stopping_patience
        epochs_without_improvement = 0
        total_batch_time = 0.0
        total_batches = 0
        for epoch in range(self.config.num_epochs):
            epoch_loss = 0.0
            epoch_batches = 0
            for batch_a, batch_b in zip_longest(self._loaders["a"], self._loaders["b"]):
                # zip_longest pads the shorter domain loader with None; drop
                # exhausted/empty domains and skip steps with no data at all
                # instead of handing None (or nothing) to the model.
                batches = {
                    key: batch
                    for key, batch in (("a", batch_a), ("b", batch_b))
                    if batch is not None and len(batch) > 0
                }
                if not batches:
                    continue
                started = time.perf_counter()
                self.optimizer.zero_grad()
                with profiler.scope("train/forward"):
                    loss = self.model.compute_batch_loss(batches)
                with profiler.scope("train/backward"):
                    loss.backward()
                with profiler.scope("train/optimizer"):
                    if self.config.grad_clip_norm is not None:
                        clip_grad_norm(self.model.parameters(), self.config.grad_clip_norm)
                    self.optimizer.step()
                self.model.invalidate_cache()
                total_batch_time += time.perf_counter() - started
                total_batches += 1
                epoch_loss += loss.item()
                epoch_batches += 1
            history.epoch_losses.append(epoch_loss / max(epoch_batches, 1))

            if self.config.verbose:
                print(
                    f"[{type(self.model).__name__}] epoch {epoch + 1}/{self.config.num_epochs} "
                    f"loss={history.epoch_losses[-1]:.4f}"
                )

            if self.config.eval_every and (epoch + 1) % self.config.eval_every == 0:
                metrics = self.evaluate(subset="valid")
                history.validation_metrics.append(metrics)
                score = float(
                    np.mean([metrics[key]["ndcg@10"] for key in DOMAIN_KEYS if key in metrics])
                )
                if score > history.best_validation_score:
                    history.best_validation_score = score
                    history.best_epoch = epoch
                    history.best_state = self.model.state_dict()
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if patience is not None and epochs_without_improvement >= patience:
                        break

        history.train_seconds_per_batch = total_batch_time / max(total_batches, 1)
        history.num_batches = total_batches

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, subset: str = "test") -> Dict[str, Dict[str, float]]:
        """Evaluate both domains with the 1 + N ranking protocol."""
        self.model.prepare_for_evaluation()
        results: Dict[str, Dict[str, float]] = {}
        for key in DOMAIN_KEYS:
            split = self.task.domain(key).split
            if split.num_eval_users == 0:
                continue
            evaluator = RankingEvaluator(
                split,
                key,
                num_negatives=self.config.num_eval_negatives,
                subset=subset,
                rng=np.random.default_rng(self._eval_rng_seed),
            )
            results[key] = evaluator.evaluate(self.model)
        return results
