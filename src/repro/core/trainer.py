"""Joint two-domain training facade shared by NMCDR and all baselines.

Any model implementing the small protocol below can be trained:

* ``parameters()`` — trainable parameters (provided by :class:`repro.nn.Module`);
* ``compute_batch_loss(batches)`` — scalar loss :class:`Tensor` for a dict of
  per-domain :class:`~repro.data.Batch` objects;
* ``prepare_for_evaluation()`` / ``invalidate_cache()`` — representation cache
  management around parameter updates;
* ``score(domain_key, users, items)`` — the :class:`repro.metrics.Scorer`
  interface used by the ranking evaluator;
* optionally ``on_epoch_start(epoch)`` — epoch-boundary hook (NMCDR uses it
  to advance its incremental plan schedule).

:class:`CDRTrainer` is a thin facade: it assembles the per-domain loaders,
the optimiser and the evaluation closure, then delegates the loop to the
staged :class:`~repro.core.engine.TrainingEngine` (data pipeline → plan
provider → step executor, with early stopping and LR scheduling as
callbacks).  One mini-batch per domain per step is drawn (the multi-target
setting: both domains are optimised simultaneously, Eq. 24); the default
configuration — serial pipeline, per-step plans — replays the historical
monolithic loop bit-for-bit under a fixed seed.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..data.dataloader import InteractionDataLoader
from ..metrics.evaluator import RankingEvaluator
from ..optim import Adam
from ..profiling import profiler
from .config import TrainerConfig
from .engine import Callback, StepExecutor, TrainingEngine, TrainingHistory
from .task import CDRTask, DOMAIN_KEYS

__all__ = ["TrainingHistory", "CDRTrainer"]


class CDRTrainer:
    """Joint trainer for one two-domain CDR task."""

    def __init__(
        self,
        model,
        task: CDRTask,
        config: Optional[TrainerConfig] = None,
        callbacks: Sequence[Callback] = (),
        executor: Optional[StepExecutor] = None,
    ) -> None:
        self.model = model
        self.task = task
        self.config = config or TrainerConfig()
        self._callbacks = list(callbacks)
        self._executor = executor
        if self.config.sampled_subgraph_training and model.capabilities().subgraph_sampling:
            # Models without graph propagation (most non-graph baselines) are
            # already O(batch) per step and simply train full-batch.
            model.configure_subgraph_sampling(
                True,
                num_hops=self.config.subgraph_num_hops,
                fanout=self.config.subgraph_fanout,
                scheduled=self.config.scheduled_subgraph_plans,
            )
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        if self._executor is None and self.config.executor == "sharded":
            from .sharded import PoolShardedStepExecutor, ShardedStepExecutor

            executor_cls = (
                PoolShardedStepExecutor
                if self.config.pool_sharding
                else ShardedStepExecutor
            )
            self._executor = executor_cls(
                model,
                self.optimizer,
                grad_clip_norm=self.config.grad_clip_norm,
                n_shards=self.config.n_shards,
                traced=self.config.traced_steps,
                shm_exchange=self.config.shm_exchange,
                step_timeout=self.config.worker_step_timeout,
                max_retries=self.config.worker_max_retries,
                retry_backoff=self.config.worker_retry_backoff,
                degrade_on_failure=self.config.degrade_on_failure,
            )
        rng = np.random.default_rng(self.config.seed)
        self._loaders = {
            key: InteractionDataLoader(
                task.domain(key).split,
                batch_size=self.config.batch_size,
                negatives_per_positive=self.config.negatives_per_positive,
                rng=np.random.default_rng(rng.integers(0, 2**32 - 1)),
            )
            for key in DOMAIN_KEYS
        }
        self._eval_rng_seed = int(rng.integers(0, 2**32 - 1))

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def build_engine(self) -> TrainingEngine:
        """Assemble the staged engine for this trainer's model and config."""
        return TrainingEngine(
            self.model,
            self.optimizer,
            self.config,
            evaluate_fn=lambda: self.evaluate(subset="valid"),
            executor=self._executor,
            callbacks=self._callbacks,
        )

    def fit(self, resume_from: Optional[str] = None) -> TrainingHistory:
        """Train for ``num_epochs`` epochs and return the training history.

        ``resume_from`` names a checkpoint file (or a checkpoint directory,
        resolved to its newest file) written by a run with an equivalent
        config: the complete training state — parameters, Adam moments,
        scheduler/early-stopping state, every rng stream, history — is
        restored and the loop continues from the recorded position, bit-
        identical to a run that was never interrupted.
        """
        engine = self.build_engine()
        history = TrainingHistory()
        resume = None
        start_epoch = 0
        if resume_from is not None:
            from pathlib import Path

            from .checkpoint import (
                CheckpointError,
                latest_checkpoint,
                load_checkpoint,
                restore_training_state,
            )

            path = Path(resume_from)
            if path.is_dir():
                path = latest_checkpoint(path)
                if path is None:
                    raise CheckpointError(f"no checkpoint found in {resume_from}")
            history, resume = restore_training_state(
                load_checkpoint(path),
                model=self.model,
                optimizer=self.optimizer,
                loaders=self._loaders,
                config=self.config,
                scheduler=engine.scheduler,
                early_stopping=engine.early_stopper,
            )
            start_epoch = resume.next_epoch
            if start_epoch >= self.config.num_epochs:
                # The checkpoint already covers the full run; nothing to do.
                return history
        # The pipeline is built at fit time from the live loader dict so a
        # caller may swap loaders in between construction and training.
        pipeline = engine.build_pipeline(self._loaders, start_epoch=start_epoch)
        if self.config.profile:
            profiler.reset()
            profiler.enable()
        try:
            engine.fit(pipeline, history=history, resume=resume)
        finally:
            # The profiler installs process-wide engine hooks; they must come
            # off even when training is interrupted mid-epoch.
            if self.config.profile:
                history.profile_report = profiler.report()
                profiler.disable()

        if history.best_state is not None:
            self.model.load_state_dict(history.best_state)
            self.model.invalidate_cache()
        return history

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, subset: str = "test") -> Dict[str, Dict[str, float]]:
        """Evaluate both domains with the 1 + N ranking protocol."""
        self.model.prepare_for_evaluation()
        results: Dict[str, Dict[str, float]] = {}
        for key in DOMAIN_KEYS:
            split = self.task.domain(key).split
            if split.num_eval_users == 0:
                continue
            evaluator = RankingEvaluator(
                split,
                key,
                num_negatives=self.config.num_eval_negatives,
                subset=subset,
                rng=np.random.default_rng(self._eval_rng_seed),
            )
            results[key] = evaluator.evaluate(self.model)
        return results
